"""Quickstart: model a system with function variants, then optimize it.

Walks the full API surface in one sitting:

1. build an SPI model graph (the common part),
2. package two alternative implementations as clusters behind one
   interface,
3. derive each single-variant application by static binding,
4. abstract the interface to a configured process and simulate the
   run-time selection,
5. run variant-aware co-synthesis and compare it with superposition.

Run:  python examples/quickstart.py
"""

from repro.report.tables import render_dict_rows
from repro.sim import Simulator
from repro.spi import GraphBuilder, one_shot_source, register, sink, source
from repro.synth import (
    ArchitectureTemplate,
    ComponentLibrary,
    independent_flow,
    superposition_flow,
    to_table_row,
    variant_aware_flow,
)
from repro.variants import (
    Cluster,
    ClusterSelectionFunction,
    Interface,
    VariantGraph,
    VariantKind,
)


def build_cluster(name: str, stages: int, latency: float) -> Cluster:
    """A pipeline variant with ports 'i' and 'o'."""
    builder = GraphBuilder(name)
    builder.queue("i")
    builder.queue("o")
    for index in range(stages - 1):
        builder.queue(f"m{index}")
    for index in range(stages):
        inp = "i" if index == 0 else f"m{index - 1}"
        out = "o" if index == stages - 1 else f"m{index}"
        builder.simple(
            f"f{index}", latency=latency,
            consumes={inp: 1}, produces={out: 1},
        )
    return Cluster(
        name=name, inputs=("i",), outputs=("o",),
        graph=builder.build(validate=False),
    )


def main() -> None:
    # 1. The common part: source -> PREP -> [variants] -> POST -> sink.
    system = VariantGraph("quickstart")
    base = GraphBuilder("common")
    for channel in ("cin", "cpre", "cpost", "cout"):
        base.queue(channel)
    base.register("CV")  # the variant-selector channel
    base.process(source("camera", "cin", max_firings=8))
    base.simple("PREP", latency=1.0, consumes={"cin": 1}, produces={"cpre": 1})
    base.simple("POST", latency=1.0, consumes={"cpost": 1}, produces={"cout": 1})
    base.process(sink("display", "cout"))
    base.process(one_shot_source("user", "CV", tags="fast"))
    system.base = base.build(validate=False)

    # 2. Two exchangeable variants behind one interface.
    interface = Interface(
        name="filter",
        inputs=("i",),
        outputs=("o",),
        clusters={
            "fast": build_cluster("fast", stages=1, latency=2.0),
            "precise": build_cluster("precise", stages=2, latency=3.0),
        },
        selection=ClusterSelectionFunction.by_tag(
            "CV", {"fast": "fast", "precise": "precise"}
        ),
        config_latency={"fast": 5.0, "precise": 8.0},
        kind=VariantKind.RUNTIME,
    )
    system.add_interface(interface, {"i": "cpre", "o": "cpost"})
    print(f"variant combinations: {system.total_combinations()}")

    # 3. Static binding derives each application.
    for cluster in ("fast", "precise"):
        application = system.bind({"filter": cluster})
        print(f"bound '{cluster}': {sorted(application.processes)}")

    # 4. Abstraction + simulation of the run-time selection.
    abstracted = system.abstract()
    simulator = Simulator(abstracted)
    trace = simulator.run()
    selection = trace.reconfigurations_of("filter")[0]
    print(
        f"\nrun-time selection: configured {selection.to_configuration} "
        f"at t={selection.time} paying t_conf={selection.latency}"
    )
    print(f"display received {len(trace.produced_on('cout'))} tokens")

    # 5. Synthesis: variant-aware vs. superposition.
    library = ComponentLibrary()
    library.component("PREP", sw_utilization=0.25, hw_cost=20, effort=5)
    library.component("POST", sw_utilization=0.20, hw_cost=18, effort=5)
    library.component("filter.fast.f0", sw_utilization=0.5, hw_cost=12, effort=8)
    library.component("filter.precise.f0", sw_utilization=0.3, hw_cost=9, effort=8)
    library.component("filter.precise.f1", sw_utilization=0.3, hw_cost=9, effort=8)
    architecture = ArchitectureTemplate(
        max_processors=1, processor_cost=10, processor_capacity=1.0
    )
    apps = {
        name: system.bind({"filter": name}, name=name)
        for name in ("fast", "precise")
    }
    independent = independent_flow(apps, library, architecture)
    rows = [
        to_table_row(result.outcome) for result in independent.values()
    ]
    rows.append(
        to_table_row(superposition_flow(independent, library, architecture))
    )
    rows.append(
        to_table_row(variant_aware_flow(system, library, architecture))
    )
    print()
    print(render_dict_rows(rows, title="Synthesis comparison"))


if __name__ == "__main__":
    main()
