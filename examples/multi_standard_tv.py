"""The paper's motivating example: a multi-standard TV set.

Section 1 motivates function variants with "TV sets which can be
adapted to different standards" and notes that several variant sets in
one system "may be related or independent".  This example models a TV
front-end with two variant sets — the input decoder and the output
encoder — whose selections are *related* (both must implement the same
standard), plus an independent audio variant set, and synthesizes the
whole family jointly.

Run:  python examples/multi_standard_tv.py
"""

from repro.report.tables import render_dict_rows
from repro.spi import GraphBuilder, sink, source
from repro.synth import (
    ArchitectureTemplate,
    BranchBoundExplorer,
    ComponentLibrary,
    SynthesisProblem,
    to_table_row,
)
from repro.synth.methods import variant_units
from repro.variants import (
    Cluster,
    Interface,
    SelectionGroup,
    VariantGraph,
    VariantSpace,
)


def stage(name: str, latency: float) -> Cluster:
    builder = GraphBuilder(name)
    builder.queue("i")
    builder.queue("o")
    builder.simple(
        "proc", latency=latency, consumes={"i": 1}, produces={"o": 1}
    )
    return Cluster(
        name=name, inputs=("i",), outputs=("o",),
        graph=builder.build(validate=False),
    )


def main() -> None:
    tv = VariantGraph("tv")
    base = GraphBuilder("common")
    for channel in ("antenna", "decoded", "scaled", "screen",
                    "sound_in", "sound_out"):
        base.queue(channel)
    base.process(source("tuner", "antenna", max_firings=4))
    base.simple("scaler", latency=2.0,
                consumes={"decoded": 1}, produces={"scaled": 1})
    base.process(sink("panel", "screen"))
    base.process(source("mic", "sound_in", max_firings=4))
    base.process(sink("speaker", "sound_out"))
    tv.base = base.build(validate=False)

    tv.add_interface(
        Interface(
            name="decoder",
            inputs=("i",),
            outputs=("o",),
            clusters={
                "pal": stage("pal", 3.0),
                "ntsc": stage("ntsc", 2.5),
            },
        ),
        {"i": "antenna", "o": "decoded"},
    )
    tv.add_interface(
        Interface(
            name="encoder",
            inputs=("i",),
            outputs=("o",),
            clusters={
                "pal50": stage("pal50", 3.0),
                "ntsc60": stage("ntsc60", 2.5),
            },
        ),
        {"i": "scaled", "o": "screen"},
    )
    tv.add_interface(
        Interface(
            name="audio",
            inputs=("i",),
            outputs=("o",),
            clusters={
                "stereo": stage("stereo", 1.0),
                "mono": stage("mono", 0.5),
            },
        ),
        {"i": "sound_in", "o": "sound_out"},
    )

    # Related selections: decoder and encoder share the standard.
    standard = SelectionGroup(
        name="standard",
        choices=(
            {"decoder": "pal", "encoder": "pal50"},
            {"decoder": "ntsc", "encoder": "ntsc60"},
        ),
    )
    space = VariantSpace(tv, [standard])
    print(
        f"unconstrained combinations: {tv.total_combinations()}; "
        f"consistent products: {space.count()}"
    )
    for selection in space.selections():
        print(f"  product: {selection}")

    # Joint synthesis over the whole product family.
    library = ComponentLibrary()
    library.component("scaler", sw_utilization=0.3, hw_cost=25, effort=6)
    for unit, util, hw in (
        ("decoder.pal.proc", 0.45, 14),
        ("decoder.ntsc.proc", 0.40, 13),
        ("encoder.pal50.proc", 0.35, 12),
        ("encoder.ntsc60.proc", 0.30, 11),
        ("audio.stereo.proc", 0.20, 8),
        ("audio.mono.proc", 0.10, 5),
    ):
        library.component(unit, sw_utilization=util, hw_cost=hw, effort=4)
    architecture = ArchitectureTemplate(
        max_processors=1, processor_cost=12, processor_capacity=1.0
    )
    units, origins = variant_units(tv)
    problem = SynthesisProblem(
        name="tv",
        units=units,
        library=library,
        architecture=architecture,
        origins=origins,
    )
    result = BranchBoundExplorer().explore(problem).require_feasible()
    print(f"\njoint optimum: cost {result.evaluation.total_cost}")
    print(f"  software: {result.mapping.software_units()}")
    print(f"  hardware: {result.mapping.hardware_units()}")
    print(
        f"  processor load: {result.evaluation.utilizations[0]:.2f} "
        f"(per-interface maxima — only one standard runs at a time)"
    )


if __name__ == "__main__":
    main()
