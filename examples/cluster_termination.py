"""Cluster termination: what reconfiguration does to in-flight data.

Paper §4 warns that terminating a running cluster "results in the loss
of all data on the internal channels", and that some systems instead
require the cluster "to complete part of its functionality before it
may be terminated".  This example runs the *expanded* simulation of a
dynamically reconfigured interface (all clusters instantiated, router +
merger + selection register) under both policies and shows the
trade-off: lost frames vs. delayed switch.

Run:  python examples/cluster_termination.py
"""

from repro.report.tables import render_table
from repro.sim import simulate
from repro.spi import GraphBuilder, sink, source
from repro.variants import (
    Cluster,
    ClusterSelectionFunction,
    Interface,
    VariantKind,
    attach_expanded_interface,
)


def build_interface() -> Interface:
    """v0: fast head feeding a slow tail (data piles up inside)."""
    builder = GraphBuilder("v0")
    builder.queue("i")
    builder.queue("o")
    builder.queue("pipe")
    builder.simple("head", latency=2.0, consumes={"i": 1}, produces={"pipe": 1})
    builder.simple("tail", latency=7.0, consumes={"pipe": 1}, produces={"o": 1})
    v0 = Cluster(
        name="v0", inputs=("i",), outputs=("o",),
        graph=builder.build(validate=False),
    )

    builder = GraphBuilder("v1")
    builder.queue("i")
    builder.queue("o")
    builder.simple("flt", latency=3.0, consumes={"i": 1}, produces={"o": 1})
    v1 = Cluster(
        name="v1", inputs=("i",), outputs=("o",),
        graph=builder.build(validate=False),
    )

    return Interface(
        name="stage",
        inputs=("i",),
        outputs=("o",),
        clusters={"v0": v0, "v1": v1},
        selection=ClusterSelectionFunction.by_tag(
            "CReq", {"sel:v0": "v0", "sel:v1": "v1"}
        ),
        config_latency={"v0": 10.0, "v1": 20.0},
        initial_cluster="v0",
        kind=VariantKind.DYNAMIC,
    )


def run(graceful: bool):
    builder = GraphBuilder("host")
    builder.queue("CIn")
    builder.queue("COut")
    builder.queue("CReq")
    builder.queue("CCon")
    builder.process(
        source("cam", "CIn", tags="img", period=3.0, max_firings=8)
    )
    builder.process(sink("display", "COut"))
    builder.process(
        source(
            "controller", "CReq", tags="sel:v1",
            max_firings=1, release_time=10.0,
        )
    )
    expanded = attach_expanded_interface(
        builder,
        build_interface(),
        {"i": "CIn", "o": "COut"},
        request_channel="CReq",
        confirm_channel="CCon",
        graceful=graceful,
    )
    graph = builder.build(validate=False)
    trace = simulate(graph, flush_rules=expanded.flush_rules)
    switch = next(
        f for f in trace.firings_of("stage.route")
        if f.mode.startswith("switch")
    )
    return {
        "policy": "graceful" if graceful else "immediate",
        "lost": trace.tokens_lost(),
        "displayed": len(trace.produced_on("COut")),
        "switch_at": switch.start,
        "flush_events": [
            (record.channel, record.lost_tokens)
            for record in trace.flushes
        ],
    }


def main() -> None:
    print("8-frame stream (one every 3 ms); switch request at t=10 ms.")
    print("v0's slow tail (7 ms) means frames queue on its internal "
          "channel.\n")
    rows = []
    for graceful in (False, True):
        result = run(graceful)
        rows.append(
            [
                result["policy"],
                result["lost"],
                result["displayed"],
                result["switch_at"],
            ]
        )
        if result["flush_events"]:
            print(f"{result['policy']}: flushed {result['flush_events']}")
    print()
    print(
        render_table(
            ["policy", "frames lost", "frames displayed", "switch time"],
            rows,
            title="termination policy trade-off",
        )
    )
    print(
        "\nImmediate termination destroys the queued frames; the graceful "
        "policy waits for the pipeline to drain, losing nothing but "
        "switching later — the delay the paper says must be accounted "
        "for in the configuration latency."
    )


if __name__ == "__main__":
    main()
