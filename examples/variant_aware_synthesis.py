"""Table 1 walk-through: variant-aware synthesis beats superposition.

Reproduces the paper's Table 1 end to end on the rebuilt Figure 2
benchmark, then explains *why* each row comes out the way it does by
inspecting the discovered mappings and processor utilizations.

Run:  python examples/variant_aware_synthesis.py
"""

from repro.apps import figure2
from repro.report.tables import render_dict_rows
from repro.synth import (
    BranchBoundExplorer,
    SynthesisProblem,
    evaluate,
    problem_for_graph,
)
from repro.synth.baselines import incremental_flow, serialization_flow
from repro.synth.methods import variant_units


def main() -> None:
    vgraph = figure2.build_variant_graph()
    library = figure2.table1_library()
    architecture = figure2.table1_architecture()

    print("component library (calibrated, see repro/apps/figure2.py):")
    for name in library.names():
        entry = library.entry(name)
        print(
            f"  {name:<18} util={entry.software.utilization:<5} "
            f"hw={entry.hardware.cost:<4} effort={entry.effort}"
        )
    print(
        f"\narchitecture: {architecture.max_processors} processor(s) "
        f"@ cost {architecture.processor_cost}, ASICs as needed"
    )

    rows = figure2.table1_rows()
    print()
    print(render_dict_rows(rows, title="Table 1 (reproduced)"))

    print("\npaper values:")
    for key, values in figure2.PAPER_TABLE1.items():
        print(f"  {key:<14} total={values['total']:<4} "
              f"design_time={values['design_time']}")

    # Why the variant-aware row wins: the utilization argument.
    units, origins = variant_units(vgraph)
    problem = SynthesisProblem(
        name="explain",
        units=units,
        library=library,
        architecture=architecture,
        origins=origins,
    )
    result = BranchBoundExplorer().explore(problem).require_feasible()
    evaluation = evaluate(problem, result.mapping)
    print("\nwith-variants mapping discovered by the DSE:")
    print(f"  software: {result.mapping.software_units()}")
    print(f"  hardware: {result.mapping.hardware_units()}")
    print(
        f"  processor utilization: {evaluation.utilizations[0]:.2f} "
        f"(PB + max(gamma1, gamma2) — the clusters are mutually "
        f"exclusive at run time)"
    )

    # The baselines for contrast.
    serialized = serialization_flow(vgraph, library, architecture)
    print(
        f"\nserialization baseline [6]: total {serialized.total_cost} "
        f"(no mutual-exclusion credit)"
    )
    apps = list(figure2.applications(vgraph).items())
    incremental = incremental_flow(apps, library, architecture)
    print(
        f"incremental baseline [5] ({' > '.join(incremental.order)}): "
        f"total {incremental.outcome.total_cost}"
    )


if __name__ == "__main__":
    main()
