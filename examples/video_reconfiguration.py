"""Figure 4 walk-through: the industrial reconfigurable video system.

Simulates a 100-frame stream through the PIn -> P1 -> P2 -> POut chain
while the user requests two variant switches mid-stream.  Shows the
complete suspend / reconfigure / confirm / resume protocol and the
invalid-image guarantee of the valve processes — then repeats the run
with the valves removed to show why they exist.

Run:  python examples/video_reconfiguration.py
"""

from collections import Counter

from repro.apps import video
from repro.report.tables import render_table


def describe(trace, label: str) -> dict:
    report = video.video_report(trace)
    print(f"\n=== {label} ===")
    print(f"frames captured         : {report['frames_captured']}")
    print(f"frames displayed        : {report['frames_displayed']}")
    print(f"frames dropped at valve : {report['frames_dropped_at_valve']}")
    print(f"frames repeated by POut : {report['frames_repeated']}")
    print(f"fresh frames after resume: {report['frames_fresh_after_resume']}")
    print(f"INVALID frames displayed: {report['invalid_frames_displayed']}")
    print(f"total reconfig latency  : {report['reconfiguration_time']} ms")
    return report


def main() -> None:
    print("building the Figure 4 system:")
    print(f"  P1 variants: {dict(video.P1_VARIANTS)}")
    print(f"  P2 variants: {dict(video.P2_VARIANTS)}")
    print(f"  t_conf     : {dict(video.CONFIG_LATENCY)}")
    print(f"  requests   : {list(video.DEFAULT_REQUESTS)} "
          f"(at t=1200ms and t=2800ms)")

    trace, _ = video.run_video(n_frames=100)
    report = describe(trace, "with valves (paper protocol)")

    rows = [
        [r.process, r.from_configuration, r.to_configuration, r.time, r.latency]
        for r in trace.reconfigurations
    ]
    print()
    print(
        render_table(
            ["process", "from", "to", "time", "t_conf"],
            rows,
            title="reconfiguration timeline",
        )
    )

    print("\ncontroller activity:",
          dict(Counter(trace.modes_used("PControl"))))
    print("input valve activity:", dict(Counter(trace.modes_used("PIn"))))
    print("output valve activity:", dict(Counter(trace.modes_used("POut"))))

    trace2, _ = video.run_video(n_frames=100, with_valves=False)
    report2 = describe(trace2, "without valves (ablation)")

    assert report["invalid_frames_displayed"] == 0
    assert report2["invalid_frames_displayed"] > 0
    print(
        "\nConclusion: the valves convert would-be invalid frames into "
        "repeats of the last good image; removing them lets "
        f"{report2['invalid_frames_displayed']} invalid frame(s) reach "
        "the display."
    )


if __name__ == "__main__":
    main()
