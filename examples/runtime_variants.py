"""Figure 3 walk-through: selection of run-time variants.

Reproduces the paper's Figure 3 scenario: PUser writes a 'V1' or 'V2'
tagged token on the register CV once at start-up; the interface's
cluster selection rules configure the matching cluster (paying its
configuration latency exactly once) and the system then runs that
variant for its entire lifetime.

Run:  python examples/runtime_variants.py [V1|V2]
"""

import sys

from repro.apps import figure3
from repro.report.tables import render_table


def main(variant: str = "V1") -> None:
    print(f"user start-up choice: {variant!r}\n")

    vgraph = figure3.build_variant_graph(variant, stream_tokens=10)
    print("variant representation:")
    interface = vgraph.interface("theta1")
    for name in interface.cluster_names():
        cluster = interface.cluster(name)
        print(
            f"  cluster {name}: processes={list(cluster.process_names())}, "
            f"t_conf={interface.latency_of(name)}ms"
        )
    print("  selection rules:")
    for rule in interface.selection.rules:
        print(f"    {rule!r}")

    trace, graph = figure3.simulate_runtime_selection(
        variant, stream_tokens=10
    )
    report = figure3.selection_report(trace)
    print("\nsimulation:")
    print(f"  configuration steps : {report['configuration_steps']}")
    print(f"  selected            : {report['selected']}")
    print(f"  t_conf paid         : {report['t_conf_paid']} ms")
    print(f"  interface firings   : {report['interface_firings']}")
    print(f"  modes used          : {report['modes_used']}")
    print(f"  output tokens       : {report['output_tokens']}")

    rows = [
        [f.mode, f.start, f.end, f.reconfiguration_latency]
        for f in trace.firings_of("theta1")[:6]
    ]
    print()
    print(
        render_table(
            ["mode", "start", "end", "reconf latency"],
            rows,
            title="first firings of the abstracted interface",
        )
    )
    print(
        "\nNote: only the first firing pays the configuration latency — "
        "run-time variants stay fixed after start-up."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "V1")
