"""Docs gate: intra-repo markdown links resolve + CLI --help works.

Stdlib only; run from the repo root (CI's docs job)::

    PYTHONPATH=src python tools/check_docs.py

Two checks, both about surfaces that rot silently:

* **Markdown links.**  Every relative link/image target in the
  repo's markdown files (README, docs/, ROADMAP, ...) must exist on
  disk.  External URLs and pure ``#anchor`` links are skipped — the
  gate is about files moving out from under docs, not about the
  internet.
* **CLI help.**  ``python -m repro <subcommand> --help`` must exit 0
  for the bare program and for every registered subcommand.  The
  subcommand list is discovered from the argparse parser itself, so a
  new subcommand is gated the day it is added.

Exit status: 0 clean, 1 with a findings list on stderr.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files under these roots are checked (directories are
#: walked; files are taken as-is).
MARKDOWN_ROOTS = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "docs",
)

#: Inline links/images: [text](target) — target up to the first
#: closing paren (markdown targets here never contain parens).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def markdown_files() -> list:
    files = []
    for root in MARKDOWN_ROOTS:
        path = REPO_ROOT / root
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def check_links() -> list:
    """Every relative link target must exist; returns findings."""
    findings = []
    for md in markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith(
                ("mailto:", "#", "data:")
            ):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (md.parent / target_path).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                findings.append(
                    f"{md.relative_to(REPO_ROOT)}:{line}: broken link "
                    f"-> {target}"
                )
    return findings


def cli_subcommands() -> list:
    """The registered subcommands, read from the top-level --help.

    Parsing the usage line (``{table1,figure1,...}``) instead of
    importing the module keeps this script runnable without PYTHONPATH
    tricks and guarantees a new subcommand is gated the day argparse
    learns about it.
    """
    out = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=_env(),
    )
    if out.returncode != 0:
        return []
    match = re.search(r"\{([a-z0-9_,\-]+)\}", out.stdout)
    return match.group(1).split(",") if match else []


def _env() -> dict:
    import os

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def check_cli_help() -> list:
    """``--help`` must exit 0 for the program and every subcommand."""
    findings = []
    commands = cli_subcommands()
    if not commands:
        findings.append("cli: could not discover any subcommands")
    for args in [["--help"]] + [[cmd, "--help"] for cmd in commands]:
        out = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=_env(),
        )
        if out.returncode != 0:
            findings.append(
                f"cli: `python -m repro {' '.join(args)}` exited "
                f"{out.returncode}: {out.stderr.strip()[:200]}"
            )
    return findings


def main() -> int:
    findings = check_links() + check_cli_help()
    if findings:
        for finding in findings:
            print(finding, file=sys.stderr)
        print(
            f"check_docs: {len(findings)} finding(s)", file=sys.stderr
        )
        return 1
    files = len(markdown_files())
    commands = cli_subcommands()
    print(
        f"check_docs: ok ({files} markdown files, "
        f"{len(commands)} subcommands: {', '.join(commands)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
