"""Differential fuzzing CLI over the scenario zoo.

Run from the repo root::

    PYTHONPATH=src python tools/fuzz_stack.py sweep --seed 3
    PYTHONPATH=src python tools/fuzz_stack.py sweep --time-budget 90
    PYTHONPATH=src python tools/fuzz_stack.py cross --seed 0
    PYTHONPATH=src python tools/fuzz_stack.py replay tests/corpus
    PYTHONPATH=src python tools/fuzz_stack.py minimize tests/corpus/X.json

Subcommands:

* ``sweep`` — oracle-checked differential fuzzing of small scenarios
  across the explorer matrix (``--full-matrix`` for the whole cross
  product).  Failures are minimized (ddmin over the unit set) and
  written to ``--corpus-out`` as replayable JSON cases.
* ``cross`` — cost-only cross-agreement on medium scenarios (too big
  for the exhaustive oracle).
* ``replay`` — re-run every corpus case in a directory (or a single
  ``.json`` file) from scratch; exit 1 if any fails.
* ``minimize`` — re-minimize one case file in place.

Everything is seeded: the same command line reproduces the same
checks, which is what makes the CI fuzz job a gate rather than a
lottery.  Exit status: 0 clean, 1 with findings on stderr.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.zoo.fuzz import (  # noqa: E402  (path bootstrap above)
    CorpusCase,
    cross_sweep,
    minimize_case,
    replay_case,
    save_case,
    sweep,
)


def _cmd_sweep(args: argparse.Namespace) -> int:
    report = sweep(
        seed=args.seed,
        scenarios_per_family=args.scenarios_per_family,
        families=args.family or None,
        time_budget=args.time_budget,
        full_matrix=args.full_matrix,
        minimize=not args.no_minimize,
    )
    print(
        f"sweep: {report.checks} checks over {report.problems} problems "
        f"({report.scenarios} scenarios) in {report.elapsed:.1f}s"
    )
    for case in report.failures:
        path = save_case(case, pathlib.Path(args.corpus_out))
        print(f"FAIL {case.id}: {case.note}", file=sys.stderr)
        print(f"  -> saved {path}", file=sys.stderr)
    for message in report.messages:
        if message not in {case.note for case in report.failures}:
            print(f"note: {message}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_cross(args: argparse.Namespace) -> int:
    report = cross_sweep(
        seed=args.seed,
        families=args.family or None,
        size=args.size,
        node_budget=args.node_budget,
    )
    print(
        f"cross: {report.checks} runs over {report.problems} joint "
        f"problems in {report.elapsed:.1f}s"
    )
    for message in report.messages:
        print(f"FAIL {message}", file=sys.stderr)
    return 0 if report.ok else 1


def _case_paths(target: pathlib.Path):
    if target.is_dir():
        return sorted(target.glob("*.json"))
    return [target]


def _cmd_replay(args: argparse.Namespace) -> int:
    target = pathlib.Path(args.corpus)
    failures = 0
    count = 0
    for path in _case_paths(target):
        with open(path, "r", encoding="utf-8") as handle:
            case = CorpusCase.from_json(json.load(handle))
        problems = replay_case(case)
        count += 1
        if problems:
            failures += 1
            for message in problems:
                print(f"FAIL {case.id}: {message}", file=sys.stderr)
        elif args.verbose:
            print(f"ok {case.id}")
    print(f"replayed {count} corpus cases, {failures} failing")
    return 0 if failures == 0 else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    path = pathlib.Path(args.case)
    with open(path, "r", encoding="utf-8") as handle:
        case = CorpusCase.from_json(json.load(handle))
    minimized = minimize_case(case)
    save_case(minimized, path.parent)
    before = case.units
    after = minimized.units
    print(
        f"{case.id}: units "
        f"{'full' if before is None else len(before)} -> "
        f"{'full' if after is None else len(after)}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fuzz_stack",
        description="differential fuzzing of the explorer stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep_parser = sub.add_parser(
        "sweep", help="oracle-checked fuzz sweep on small scenarios"
    )
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--scenarios-per-family", type=int, default=2
    )
    sweep_parser.add_argument(
        "--family", action="append", help="restrict to a zoo family"
    )
    sweep_parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS"
    )
    sweep_parser.add_argument("--full-matrix", action="store_true")
    sweep_parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="record failures without ddmin minimization",
    )
    sweep_parser.add_argument(
        "--corpus-out",
        default=str(REPO_ROOT / "tests" / "corpus"),
        help="directory for newly found failure cases",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    cross_parser = sub.add_parser(
        "cross", help="cost-only cross-agreement on larger scenarios"
    )
    cross_parser.add_argument("--seed", type=int, default=0)
    cross_parser.add_argument(
        "--family", action="append", help="restrict to a zoo family"
    )
    cross_parser.add_argument("--size", default="medium")
    cross_parser.add_argument("--node-budget", type=int, default=50_000)
    cross_parser.set_defaults(func=_cmd_cross)

    replay_parser = sub.add_parser(
        "replay", help="re-run corpus cases from scratch"
    )
    replay_parser.add_argument(
        "corpus",
        nargs="?",
        default=str(REPO_ROOT / "tests" / "corpus"),
        help="corpus directory or single case file",
    )
    replay_parser.add_argument("--verbose", action="store_true")
    replay_parser.set_defaults(func=_cmd_replay)

    minimize_parser = sub.add_parser(
        "minimize", help="re-minimize one corpus case in place"
    )
    minimize_parser.add_argument("case", help="case .json path")
    minimize_parser.set_defaults(func=_cmd_minimize)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
