"""Serve-daemon load bench: sustained jobs/sec + cache-hit latency.

Boots the real HTTP daemon (ephemeral port, background event-loop
thread) and drives it the way production traffic would — many blocking
clients submitting a mix of fresh and repeated jobs over sockets:

* **cold vs hit latency** — one knapsack-hard job is searched cold,
  then resubmitted; the exact cache hit must return a byte-identical
  result body and be >=10x faster than the search (the acceptance
  contract of the content-addressed cache).
* **sustained jobs/sec** — N client threads each run a stream of jobs
  (distinct seeds mixed with repeats, so the cache sees realistic
  reuse); the sustained rate and the observed hit fraction land in
  the ``serve`` section of ``BENCH_explorer.json``, gated by
  ``check_regression.py`` (``serve_jobs_per_sec``,
  ``serve_cache_hit_speedup``).

Set ``BENCH_QUICK=1`` for the reduced CI workload.
"""

import asyncio
import statistics
import threading
import time

from repro.serve.client import ServeClient
from repro.serve.engine import ServeEngine
from repro.serve.http import ServeHTTP

from .conftest import merge_json_artifact, quick_mode

#: Knapsack-hard workload for the cold/hit contrast: zero processor
#: cost and a tight capacity force a real hardware-subset search (the
#: same regime as bench_explorer's jobs-sweep space).
HARD_JOB = {
    "space": {
        "kind": "generated",
        "seed": 3,
        "n_variants": 6,
        "cluster_size": 6,
        "common_processes": 6,
        "max_processors": 1,
        "processor_cost": 0.0,
        "processor_capacity": 0.5,
    }
}


def _light_job(seed: int) -> dict:
    """A small distinct job; the load mix cycles over a few seeds."""
    return {
        "space": {
            "kind": "generated",
            "seed": seed,
            "n_variants": 3,
            "cluster_size": 2,
        }
    }


class _Daemon:
    """The real server on an ephemeral port, in a loop thread."""

    def __init__(self, workers: int = 2) -> None:
        self.loop = asyncio.new_event_loop()
        self.engine = ServeEngine(workers=workers, max_queue=4096)
        self.server = ServeHTTP(self.engine, host="127.0.0.1", port=0)
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def __enter__(self) -> ServeClient:
        self.thread.start()

        async def boot():
            await self.server.start()
            return self.server.bound_port

        port = asyncio.run_coroutine_threadsafe(boot(), self.loop).result(
            30
        )
        return ServeClient(host="127.0.0.1", port=port, timeout=120.0)

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(15)
        self.loop.close()


def measure_cache_hit(client: ServeClient, samples: int = 20):
    """Cold-search vs exact-hit latency on the knapsack-hard job."""
    start = time.perf_counter()
    cold = client.run(HARD_JOB, timeout=600.0)
    cold_seconds = time.perf_counter() - start
    assert cold["state"] == "done", cold
    cold_text = client.result_text(cold["job_id"])

    hit_samples = []
    for _ in range(samples):
        start = time.perf_counter()
        hit = client.submit(HARD_JOB)
        hit_samples.append(time.perf_counter() - start)
        assert hit["state"] == "done" and hit["cache"] == "hit", hit
    hit_text = client.result_text(hit["job_id"])
    hit_seconds = statistics.median(hit_samples)
    return {
        "cold_seconds": round(cold_seconds, 6),
        "hit_seconds": round(hit_seconds, 6),
        "cache_hit_speedup": round(cold_seconds / hit_seconds, 2),
        "hit_byte_identical": hit_text == cold_text,
        "hit_samples": samples,
    }


def run_client_load(client: ServeClient, clients: int, jobs_each: int):
    """``clients`` threads each run ``jobs_each`` jobs; measure rate.

    Each thread cycles through a small pool of distinct seeds, so
    after the first lap most submissions are exact cache hits — the
    repeated-traffic regime the daemon exists for.
    """
    distinct = 4
    errors = []
    done = []
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        local = ServeClient(
            host=client.host, port=client.port, timeout=120.0
        )
        for i in range(jobs_each):
            payload = _light_job(seed=(worker_id + i) % distinct)
            try:
                view = local.run(payload, timeout=600.0)
                with lock:
                    done.append(view["cache"])
            except Exception as exc:  # pragma: no cover - diagnostics
                with lock:
                    errors.append(repr(exc))

    threads = [
        threading.Thread(target=worker, args=(w,)) for w in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]
    total = clients * jobs_each
    hits = sum(1 for cache in done if cache == "hit")
    return {
        "clients": clients,
        "jobs_total": total,
        "elapsed_seconds": round(elapsed, 4),
        "jobs_per_sec": round(total / elapsed, 3),
        "hit_fraction": round(hits / total, 4),
    }


def test_serve_load_recorded(benchmark):
    quick = quick_mode()
    clients = 4 if quick else 8
    jobs_each = 6 if quick else 12

    def run():
        with _Daemon(workers=2) as client:
            cache = measure_cache_hit(
                client, samples=10 if quick else 20
            )
            load = run_client_load(client, clients, jobs_each)
            stats = client.stats()
        return cache, load, stats

    cache, load, stats = benchmark.pedantic(run, rounds=1, iterations=1)

    # The acceptance contract: byte-identical replay, >=10x faster
    # than re-searching.
    assert cache["hit_byte_identical"]
    assert cache["cache_hit_speedup"] >= 10.0, cache
    # Sanity on the load phase: the cache absorbed the repeats.
    assert load["hit_fraction"] > 0.3, load
    assert stats["jobs_failed"] == 0

    section = {
        "quick_mode": quick,
        "cold_latency_seconds": cache["cold_seconds"],
        "hit_latency_seconds": cache["hit_seconds"],
        "cache_hit_speedup": cache["cache_hit_speedup"],
        "hit_byte_identical": cache["hit_byte_identical"],
        "load": load,
        "daemon_stats": {
            "jobs_completed": stats["jobs_completed"],
            "cache": stats["cache"],
        },
    }
    merge_json_artifact(
        "BENCH_explorer.json", {"serve": section}, also_repo_root=True
    )
