"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see the
experiment index in DESIGN.md), asserts the qualitative shape the paper
reports, and writes the rendered rows/series to ``benchmarks/out/`` so
EXPERIMENTS.md can be checked against fresh artifacts.
"""

from __future__ import annotations

import json
import os
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def quick_mode() -> bool:
    """Whether the benches should run their reduced CI workloads."""
    return bool(os.environ.get("BENCH_QUICK"))


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Persist one rendered table/series under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text + ("\n" if not text.endswith("\n") else ""))
    return path


def write_json_artifact(
    name: str, payload: dict, also_repo_root: bool = False
) -> pathlib.Path:
    """Persist one JSON artifact; optionally mirror it at the repo root.

    The repo-root mirror is for cross-PR trend tracking (CI uploads it
    as a build artifact, e.g. ``BENCH_explorer.json``).
    """
    OUT_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = OUT_DIR / name
    path.write_text(text)
    if also_repo_root:
        (REPO_ROOT / name).write_text(text)
    return path


def merge_json_artifact(
    name: str, extra: dict, also_repo_root: bool = False
) -> pathlib.Path:
    """Merge top-level keys into an existing JSON artifact.

    Lets several bench tests contribute sections to one artifact
    (e.g. the jobs-sweep section of ``BENCH_explorer.json``) without
    clobbering what an earlier test recorded; creates the artifact
    when the contributing test runs standalone.
    """
    path = OUT_DIR / name
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(extra)
    return write_json_artifact(name, payload, also_repo_root)
