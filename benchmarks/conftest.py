"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see the
experiment index in DESIGN.md), asserts the qualitative shape the paper
reports, and writes the rendered rows/series to ``benchmarks/out/`` so
EXPERIMENTS.md can be checked against fresh artifacts.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Persist one rendered table/series under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text + ("\n" if not text.endswith("\n") else ""))
    return path
