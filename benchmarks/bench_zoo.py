"""Zoo matrix bench: explorer configurations across generator families.

Runs the branch-and-bound configuration matrix (basic bound, static
ordering, adaptive+dynamic, best-first) on the joint problem of one
bench-size scenario per zoo family and records nodes-to-optimal per
cell — the cross-family generalization of the single-workload
``bound_tightness``/``branching_order`` sections.  All configurations
must agree on the optimal cost (the bench doubles as a coarse
differential check at a scale the exhaustive oracle can't reach), and
the adaptive nodes-to-optimal of the gated families feeds
``check_regression.py``.

Set ``BENCH_QUICK=1`` for the reduced CI workload (medium scenarios).
"""

from repro.synth.explorer import BranchBoundExplorer
from repro.zoo import generate

from .conftest import merge_json_artifact, quick_mode

#: Families in the matrix (>= 3 per the scenario-zoo acceptance bar);
#: all are sized to prove optimality in seconds on one core.
MATRIX_FAMILIES = (
    "deep_chain",
    "hetero_multiproc",
    "exclusion_pathology",
    "memory_ladder",
    "streaming_pipeline",
    "chained",
)

#: The configuration axes mirrored from ``bench_explorer``'s
#: bound/ordering sections, so rows read the same way.
CONFIGS = {
    "basic": dict(
        capacity_bound=False, ordering="static", dynamic_pool=False
    ),
    "static": dict(ordering="static"),
    "adaptive_dynamic": dict(),
    "best_first": dict(frontier="best-first"),
}

NODE_BUDGET = 3_000_000


def run_zoo_matrix(size: str) -> dict:
    section = {}
    for family in MATRIX_FAMILIES:
        scenario = generate(family, 0, size)
        problem = scenario.joint_problem()
        cells = {}
        for label, kwargs in CONFIGS.items():
            result = BranchBoundExplorer(
                node_budget=NODE_BUDGET, **kwargs
            ).explore(problem)
            cells[label] = {
                "cost": result.cost,
                "nodes": result.nodes_explored,
                "optimal": result.optimal,
            }
        section[family] = {
            "units": len(problem.units),
            "selections": scenario.space.count(),
            "configs": cells,
        }
    return section


def test_zoo_matrix_recorded(benchmark):
    size = "medium" if quick_mode() else "bench"
    section = benchmark.pedantic(
        lambda: run_zoo_matrix(size), rounds=1, iterations=1
    )

    for family, row in section.items():
        cells = row["configs"]
        # Every configuration proved its optimum at this scale...
        assert all(cell["optimal"] for cell in cells.values()), (
            family,
            cells,
        )
        # ...and they all agree on it (coarse differential check).
        costs = {cell["cost"] for cell in cells.values()}
        assert len(costs) == 1, (family, cells)
        # The capacity bound never expands more nodes than the basic
        # bound under identical (static, no-pool ≥ pool) ordering.
        assert (
            cells["static"]["nodes"] <= cells["basic"]["nodes"]
        ), (family, cells)

    merge_json_artifact(
        "BENCH_explorer.json",
        {"zoo": {"size": size, "families": section}},
        also_repo_root=True,
    )
