"""X6 — the precision benefit of process modes (paper §2 / ref [9]).

"Mostly, the parameters of a process are not independent from each
other but strongly correlated.  For a more accurate modeling, such
correlation information can be specified by means of sets of process
modes."  This bench quantifies the claim on Figure 1's ``p2`` and on
the Figure 2 cluster entry processes: how many corners of the
independent-interval parameter box are *spurious* — admitted by the
mode-less annotation but exhibited by no actual behavior.
"""

from repro.apps import figure1, figure2
from repro.report.tables import render_table
from repro.spi.correlation import analyze_correlation

from .conftest import write_artifact


def run_analysis():
    processes = {
        "figure1.p2": figure1.build_p2(),
        "gamma1.f1": figure2.build_gamma1().graph.process("f1"),
        "gamma2.g1": figure2.build_gamma2().graph.process("g1"),
    }
    rows = []
    for label, process in processes.items():
        report = analyze_correlation(process)
        rows.append(
            [
                label,
                len(process.modes),
                report.corner_points,
                report.feasible_corners,
                report.infeasible_corners,
                round(report.tightening_ratio, 3),
            ]
        )
    return rows


def test_mode_correlation_tightening(benchmark):
    rows = benchmark.pedantic(run_analysis, rounds=3, iterations=1)
    text = render_table(
        [
            "process",
            "modes",
            "hull corners",
            "feasible",
            "spurious",
            "tightening",
        ],
        rows,
        title="X6: precision gained by mode correlation",
    )
    write_artifact("correlation.txt", text)
    print("\n" + text)

    by_label = {row[0]: row for row in rows}
    # Figure 1's p2: 8-corner box, only the 2 mode points are real.
    assert by_label["figure1.p2"][2] == 8
    assert by_label["figure1.p2"][3] == 2
    assert by_label["figure1.p2"][5] == 0.75
    # Every multi-mode process shows a strict precision gain.
    for row in rows:
        if row[1] > 1:
            assert row[4] > 0
