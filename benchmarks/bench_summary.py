"""Print the basic/capacity/adaptive nodes comparison of one bench run.

CI runs this after the explorer bench so the branching-order and
bound-tightness wins are readable straight from the job log (next to
the uploaded ``BENCH_explorer.json`` artifact) without downloading
anything::

    python benchmarks/bench_summary.py [path/to/BENCH_explorer.json]

The table covers the whole pruning story on the knapsack-hard
workload: the capacity-blind *basic* bound, the PR 3 *capacity* bound
under the static order, each PR 4 branching-order mode up to the
default adaptive-order + dynamic-pool configuration, and the PR 5
search frontiers (best-first / LDS) on top of the adaptive order —
the ``frontier`` column of the story (the default DFS frontier is the
``adaptive order + dynamic pool`` row itself).
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_explorer.json"

#: (label, section, key) rows of the comparison, pruning-weakest first.
ROWS = (
    ("basic bound (capacity-blind)", "bound_tightness", "basic_bound"),
    ("capacity bound, static order", "branching_order", "static"),
    ("capacity bound, density order", "branching_order", "density"),
    ("capacity bound, adaptive order", "branching_order", "adaptive"),
    (
        "capacity bound + dynamic pool, static order",
        "branching_order",
        "static_dynamic_pool",
    ),
    (
        "adaptive order + dynamic pool (default)",
        "branching_order",
        "adaptive_dynamic",
    ),
    ("best-first frontier, adaptive order", "frontier", "best_first"),
    ("LDS frontier, adaptive order", "frontier", "lds"),
)


def batch_kernel_lines(payload: dict) -> List[str]:
    """The batch-kernel summary of one BENCH_explorer payload."""
    section = payload.get("batch_kernel")
    if not section:
        return []
    speedup = section.get("batch_probe_speedup")
    if speedup is None:
        return [
            "batch kernel: numpy not installed — scalar backend only "
            f"({section.get('scalar_probes_per_sec', '?')} probes/s)"
        ]
    lines = [
        f"batch kernel ({section.get('workload', '?')}, "
        f"{section.get('max_processors', '?')} processors): "
        f"{speedup}x batch-vs-scalar probe speedup "
        f"({section.get('scalar_probes_per_sec')} -> "
        f"{section.get('batch_probes_per_sec')} probes/s)"
    ]
    ratio = section.get("bnb_probe_cost_ratio")
    if ratio is not None:
        python_cost = (
            section.get("bnb", {})
            .get("python", {})
            .get("probe_cost_per_node_us")
        )
        numpy_cost = (
            section.get("bnb", {})
            .get("numpy", {})
            .get("probe_cost_per_node_us")
        )
        frontier = section.get("bnb_frontier", "dfs")
        lines.append(
            f"  bound-scoring cost per node ({frontier} frontier): "
            f"{python_cost}us scalar -> {numpy_cost}us batch "
            f"({ratio}x)"
        )
    return lines


def comparison_lines(payload: dict) -> List[str]:
    """The rendered comparison table of one BENCH_explorer payload."""
    entries = []
    for label, section_name, key in ROWS:
        stats = payload.get(section_name, {}).get(key)
        if stats is None:
            continue
        entries.append((label, stats))
    if not entries:
        return ["bench_summary: no nodes data in the payload"]
    reference: Optional[float] = None
    for label, stats in entries:
        if stats.get("optimal") and label.startswith("basic bound"):
            reference = stats["nodes"]
            break
    if reference is None and entries[0][1].get("optimal"):
        reference = entries[0][1]["nodes"]
    width = max(len(label) for label, _ in entries)
    lines = [
        "nodes to proven optimum on the knapsack-hard workload "
        f"({payload.get('workload', {}).get('problem', 'unknown')}):"
    ]
    for label, stats in entries:
        nodes = stats["nodes"]
        proved = "proved" if stats.get("optimal") else "TRUNCATED"
        shrink = (
            f"  ({reference / nodes:7.1f}x fewer than basic)"
            if reference
            and stats.get("optimal")
            and nodes != reference
            else ""
        )
        lines.append(f"  {label:<{width}}  {nodes:>8} {proved}{shrink}")
    return lines


def serve_lines(payload: dict) -> List[str]:
    """The serve-daemon summary of one BENCH_explorer payload."""
    section = payload.get("serve")
    if not section:
        return []
    load = section.get("load", {})
    lines = [
        "serve daemon under synthetic many-client load "
        f"({load.get('clients', '?')} clients):"
    ]
    lines.append(
        f"  sustained throughput: {load.get('jobs_per_sec', '?')} "
        f"jobs/s (hit fraction {load.get('hit_fraction', '?')})"
    )
    lines.append(
        f"  exact cache hit: {section.get('hit_latency_seconds', '?')}s "
        f"vs {section.get('cold_latency_seconds', '?')}s cold "
        f"({section.get('cache_hit_speedup', '?')}x, byte-identical="
        f"{section.get('hit_byte_identical', '?')})"
    )
    return lines


def zoo_lines(payload: dict) -> List[str]:
    """The zoo-matrix summary of one BENCH_explorer payload."""
    section = payload.get("zoo")
    if not section:
        return []
    families = section.get("families", {})
    if not families:
        return []
    lines = [
        f"zoo matrix ({section.get('size', '?')} scenarios, nodes to "
        "proven optimum per explorer config):"
    ]
    width = max(len(name) for name in families)
    for name, row in families.items():
        cells = row.get("configs", {})
        rendered = "  ".join(
            f"{label}={cell.get('nodes', '?')}"
            + ("" if cell.get("optimal") else "(TRUNCATED)")
            for label, cell in cells.items()
        )
        lines.append(
            f"  {name:<{width}}  units={row.get('units', '?'):>3} "
            f"sel={row.get('selections', '?'):>3}  {rendered}"
        )
    return lines


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    current = pathlib.Path(args[0]) if args else DEFAULT_CURRENT
    if not current.exists():
        print(
            f"bench_summary: {current} not found — run the explorer "
            f"bench first."
        )
        return 2
    payload = json.loads(current.read_text())
    for line in comparison_lines(payload):
        print(line)
    for line in batch_kernel_lines(payload):
        print(line)
    for line in serve_lines(payload):
        print(line)
    for line in zoo_lines(payload):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
