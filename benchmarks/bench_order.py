"""X2 — serialization-order dependence of the incremental baseline.

The paper motivates its joint representation by noting that both prior
approaches "report a dominant influence of the serialization order on
result quality" (§1, refs [5, 6]).  This bench runs the incremental
flow of [5] under every application order on generated systems and on a
crafted instance, and contrasts the cost spread with the order-invariant
variant-aware flow.
"""

import statistics

from repro.report.tables import render_table
from repro.synth.baselines import incremental_order_spread
from repro.synth.explorer import BranchBoundExplorer
from repro.synth.methods import variant_aware_flow

from .conftest import write_artifact
from tests.test_synth_baselines import order_sensitive_instance


def run_crafted_instance():
    apps, library, architecture = order_sensitive_instance()
    spread = incremental_order_spread(apps, library, architecture)
    return {
        order: result.outcome.total_cost
        for order, result in spread.items()
    }


def test_order_dependence_crafted(benchmark):
    costs = benchmark.pedantic(run_crafted_instance, rounds=2, iterations=1)
    rows = [
        [" > ".join(order), cost] for order, cost in sorted(costs.items())
    ]
    text = render_table(
        ["application order", "total cost"],
        rows,
        title="X2: incremental [5] cost by serialization order",
    )
    write_artifact("order_crafted.txt", text)
    print("\n" + text)
    values = list(costs.values())
    assert max(values) > min(values)
    # the spread is large ("dominant influence")
    assert max(values) / min(values) > 1.5


def run_generated_sweep(seeds=(11, 23)):
    from repro.apps.generators import generate_system

    explorer = BranchBoundExplorer()
    rows = []
    for seed in seeds:
        system = generate_system(seed=seed, n_variants=3)
        spread = incremental_order_spread(
            system.applications(), system.library, system.architecture,
            explorer,
        )
        costs = [r.outcome.total_cost for r in spread.values()]
        variant = variant_aware_flow(
            system.vgraph, system.library, system.architecture, explorer
        )
        rows.append(
            [
                seed,
                min(costs),
                max(costs),
                round(statistics.pstdev(costs), 3),
                variant.total_cost,
            ]
        )
    return rows


def test_order_spread_on_generated_systems(benchmark):
    rows = benchmark.pedantic(run_generated_sweep, rounds=1, iterations=1)
    text = render_table(
        [
            "seed",
            "incremental best",
            "incremental worst",
            "spread (stdev)",
            "with_variants (order-free)",
        ],
        rows,
        title="X2: order spread, incremental vs. variant-aware",
    )
    write_artifact("order_generated.txt", text)
    print("\n" + text)
    for row in rows:
        _, best, worst, _, variant = row
        # the variant-aware result is a single order-independent number
        # at least as good as the best incremental order.
        assert variant <= best + 1e-9
        assert worst >= best
