"""F3 — regenerate Figure 3: selection of run-time variants.

Reproduced series: for both user choices ('V1' / 'V2'), the selected
cluster, the single configuration step with its t_conf, and the
steady-state behavior of the configured variant.
"""

from repro.apps import figure3
from repro.report.tables import render_table

from .conftest import write_artifact

STREAM = 12


def run_both_variants():
    rows = []
    for variant in ("V1", "V2"):
        trace, _ = figure3.simulate_runtime_selection(
            variant, stream_tokens=STREAM
        )
        report = figure3.selection_report(trace)
        rows.append(
            [
                variant,
                report["selected"],
                report["configuration_steps"],
                report["t_conf_paid"],
                report["interface_firings"],
                report["output_tokens"],
            ]
        )
    return rows


def test_figure3_runtime_selection(benchmark):
    rows = benchmark.pedantic(run_both_variants, rounds=2, iterations=1)
    text = render_table(
        [
            "user tag",
            "selected",
            "config steps",
            "t_conf",
            "firings",
            "outputs",
        ],
        rows,
        title="Figure 3: run-time variant selection",
    )
    write_artifact("figure3_selection.txt", text)
    print("\n" + text)

    by_variant = {row[0]: row for row in rows}
    # the tag drives the selection rules
    assert by_variant["V1"][1] == "conf_cluster1"
    assert by_variant["V2"][1] == "conf_cluster2"
    # exactly one configuration step, paid once, with the right t_conf
    for variant, cluster in (("V1", "cluster1"), ("V2", "cluster2")):
        assert by_variant[variant][2] == 1
        assert by_variant[variant][3] == figure3.CONFIG_LATENCY[cluster]
    # steady state: cluster1 doubles the stream, cluster2 passes it
    assert by_variant["V1"][5] == 2 * STREAM
    assert by_variant["V2"][5] == STREAM


def test_figure3_selection_is_start_up_only(benchmark):
    def run():
        trace, _ = figure3.simulate_runtime_selection(
            "V1", stream_tokens=30
        )
        return trace

    trace = benchmark.pedantic(run, rounds=2, iterations=1)
    # Run-time variants: selected once, then fixed for the whole run.
    assert len(trace.reconfigurations_of("theta1")) == 1
    assert trace.reconfigurations_of("theta1")[0].time == 0.0
