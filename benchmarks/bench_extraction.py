"""X4 — abstraction-level ablation: expanded vs. abstracted interfaces.

Parameter extraction (§4) replaces an interface's clusters by process
modes.  This bench simulates the Figure 3 system both ways — expanded
(the chosen cluster spliced in) and abstracted (ConfiguredProcess) —
and checks the behaviors agree: same end-to-end token counts, and the
abstracted per-firing latency stays within the extracted interval.
Also compares the two extraction detail levels.
"""

from repro.apps import figure3
from repro.report.tables import render_table
from repro.sim.engine import simulate

from .conftest import write_artifact

STREAM = 10


def run_comparison():
    rows = []
    for variant, cluster in (("V1", "cluster1"), ("V2", "cluster2")):
        vgraph = figure3.build_variant_graph(variant, stream_tokens=STREAM)
        expanded_trace = simulate(vgraph.bind({"theta1": cluster}))
        for detail in ("per_entry", "single"):
            abstract_trace, graph = figure3.simulate_runtime_selection(
                variant, stream_tokens=STREAM, detail=detail
            )
            bounds = graph.process("theta1").latency_bounds()
            firings = abstract_trace.firings_of("theta1")
            latencies = [
                f.latency - f.reconfiguration_latency for f in firings
            ]
            rows.append(
                [
                    variant,
                    detail,
                    len(expanded_trace.produced_on("COut")),
                    len(abstract_trace.produced_on("COut")),
                    min(latencies) if latencies else 0.0,
                    max(latencies) if latencies else 0.0,
                    repr(bounds),
                ]
            )
    return rows


def test_extraction_behavioral_agreement(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=2, iterations=1)
    text = render_table(
        [
            "variant",
            "detail",
            "expanded out",
            "abstract out",
            "lat min",
            "lat max",
            "extracted bounds",
        ],
        rows,
        title="X4: expanded vs. abstracted interface simulation",
    )
    write_artifact("extraction_ablation.txt", text)
    print("\n" + text)

    for row in rows:
        variant, detail, expanded_out, abstract_out, lat_min, lat_max, _ = row
        # token behavior agrees at both detail levels
        assert expanded_out == abstract_out, row
    # per-firing latencies stay within the extracted interval
    for variant, cluster in (("V1", "cluster1"), ("V2", "cluster2")):
        trace, graph = figure3.simulate_runtime_selection(
            variant, stream_tokens=STREAM
        )
        bounds = graph.process("theta1").latency_bounds()
        for firing in trace.firings_of("theta1"):
            effective = firing.latency - firing.reconfiguration_latency
            assert bounds.lo - 1e-9 <= effective <= bounds.hi + 1e-9


def test_extraction_speed(benchmark):
    """Extraction itself is cheap enough to run inside a DSE loop."""
    from repro.variants.extraction import extract_interface

    vgraph = figure3.build_variant_graph("V1")
    interface = vgraph.interface("theta1")
    bindings = vgraph.port_bindings("theta1")
    process = benchmark(lambda: extract_interface(interface, bindings))
    assert len(process.modes) >= 2
