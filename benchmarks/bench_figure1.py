"""F1 — regenerate Figure 1: the SPI example and its semantics.

Reproduced series: the parameter intervals annotated in the figure, and
the token-flow behavior under the three tag regimes the paper
discusses — tag 'a' (determinate in m1), tag 'b' (determinate in m2),
and untagged tokens (p2 never activated).
"""

from repro.apps import figure1
from repro.report.tables import render_table
from repro.spi.semantics import StepSemantics

from .conftest import write_artifact

INPUT_TOKENS = 12


def run_tag_regimes():
    rows = []
    for tag in ("a", "b", None):
        graph = figure1.build_graph(p1_tag=tag, input_tokens=INPUT_TOKENS)
        semantics = StepSemantics(graph)
        semantics.run(max_steps=500)
        modes = sorted(
            {f.mode for f in semantics.history if f.process == "p2"}
        )
        rows.append(
            [
                tag or "(none)",
                semantics.firing_counts["p1"],
                semantics.firing_counts["p2"],
                ",".join(modes) or "-",
                semantics.occupancy()["c1"],
                semantics.firing_counts["p3"],
            ]
        )
    return rows


def test_figure1_token_flow(benchmark):
    rows = benchmark.pedantic(run_tag_regimes, rounds=3, iterations=1)
    text = render_table(
        ["p1 tag", "p1 fired", "p2 fired", "p2 modes", "c1 left", "p3 fired"],
        rows,
        title="Figure 1: token flow per tag regime",
    )
    write_artifact("figure1_flow.txt", text)
    print("\n" + text)

    by_tag = {row[0]: row for row in rows}
    # tag 'a': p2 consumes 1 at a time in m1 -> fires 2x per p1 firing.
    assert by_tag["a"][3] == "m1"
    assert by_tag["a"][2] == 2 * INPUT_TOKENS
    # tag 'b': m2 consumes 3 -> 24 tokens / 3.
    assert by_tag["b"][3] == "m2"
    assert by_tag["b"][2] == (2 * INPUT_TOKENS) // 3
    # untagged: "no activation rule is enabled" -> p2 never fires.
    assert by_tag["(none)"][2] == 0
    assert by_tag["(none)"][4] == 2 * INPUT_TOKENS


def test_figure1_interval_annotations(benchmark):
    def compute():
        graph = figure1.build_graph()
        return figure1.interval_summary(graph)

    summary = benchmark.pedantic(compute, rounds=3, iterations=1)
    expected = figure1.expected_intervals()
    rows = [
        [name, repr(summary[name]), repr(expected[name])]
        for name in sorted(expected)
    ]
    text = render_table(
        ["parameter", "measured", "paper"],
        rows,
        title="Figure 1: parameter intervals",
    )
    write_artifact("figure1_intervals.txt", text)
    print("\n" + text)
    assert summary == expected
