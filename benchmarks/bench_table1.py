"""T1 — regenerate the paper's Table 1 (system cost).

Paper values:

    Application 1   SW{PA,PB}=15  HW{γ1}=19      total 34   time  67
    Application 2   SW{PA,PB}=15  HW{γ2}=23      total 38   time  73
    Superposition   SW{PA,PB}=15  HW{γ1,γ2}=42   total 57   time 140
    With variants   SW{γ1,γ2,PB}=15  HW{PA}=26   total 41   time 118

The branch-and-bound DSE must *discover* these mappings on the rebuilt
benchmark (see repro.apps.figure2 for the calibration).
"""

from repro.apps import figure2
from repro.report.tables import render_dict_rows

from .conftest import write_artifact


def run_table1():
    return figure2.table1_rows()


def test_table1_rows(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=2, iterations=1)

    text = render_dict_rows(rows, title="Table 1: System Cost")
    write_artifact("table1.txt", text)
    print("\n" + text)

    paper = figure2.PAPER_TABLE1
    order = ["application1", "application2", "superposition", "with_variants"]
    for row, key in zip(rows, order):
        assert row["sw_cost"] == paper[key]["sw_cost"], (key, row)
        assert row["hw_cost"] == paper[key]["hw_cost"], (key, row)
        assert row["total"] == paper[key]["total"], (key, row)
        assert row["design_time"] == paper[key]["design_time"], (key, row)

    # Qualitative shape (holds independent of calibration):
    totals = {key: row["total"] for key, row in zip(order, rows)}
    assert totals["with_variants"] < totals["superposition"]
    assert totals["with_variants"] > totals["application1"]
    times = {key: row["design_time"] for key, row in zip(order, rows)}
    assert times["with_variants"] < times["superposition"]


def test_table1_design_time_identity(benchmark):
    """The design-time saving equals the shared (common) effort."""

    def compute():
        outcomes = figure2.table1_outcomes()
        return (
            outcomes["superposition"].design_time
            - outcomes["with_variants"].design_time
        )

    saving = benchmark.pedantic(compute, rounds=2, iterations=1)
    # PA (12) + PB (10) are considered once instead of twice.
    assert saving == 22.0
