"""F2 — regenerate Figure 2: the two-variant system representation.

Reproduced series: the element accounting of the single coherent
variant representation versus per-application enumeration, and the
derivation of each application by static binding ("each of those can be
simply derived by replacing the interface by either cluster 1 or
cluster 2", §5).
"""

from repro.apps import figure2
from repro.report.tables import render_table
from repro.spi.dot import variant_graph_to_dot

from .conftest import write_artifact


def run_accounting():
    vgraph = figure2.build_variant_graph()
    return vgraph.stats(), vgraph


def test_figure2_representation_accounting(benchmark):
    stats, vgraph = benchmark.pedantic(run_accounting, rounds=3, iterations=1)

    rows = [
        [
            "common part",
            stats["common"]["processes"],
            stats["common"]["channels"],
            stats["common"]["edges"],
        ],
    ]
    for name, iface in stats["interfaces"].items():
        for cluster, counts in iface["clusters"].items():
            rows.append(
                [
                    f"{name}/{cluster}",
                    counts["processes"],
                    counts["channels"],
                    counts["edges"],
                ]
            )
    rows.append(
        [
            "variant representation (total)",
            stats["variant_representation_size"]["processes"],
            stats["variant_representation_size"]["channels"],
            stats["variant_representation_size"]["edges"],
        ]
    )
    rows.append(
        [
            "per-application enumeration",
            stats["enumeration_size"]["processes"],
            stats["enumeration_size"]["channels"],
            stats["enumeration_size"]["edges"],
        ]
    )
    text = render_table(
        ["part", "processes", "channels", "edges"],
        rows,
        title="Figure 2: representation size accounting",
    )
    write_artifact("figure2_accounting.txt", text)
    print("\n" + text)

    # The single variant representation is strictly smaller than
    # enumerating all applications (the common part is shared).
    assert (
        stats["variant_representation_size"]["processes"]
        < stats["enumeration_size"]["processes"]
    )


def test_figure2_application_derivation(benchmark):
    def derive():
        vgraph = figure2.build_variant_graph()
        return figure2.applications(vgraph)

    apps = benchmark.pedantic(derive, rounds=3, iterations=1)
    app1, app2 = apps["application1"], apps["application2"]
    # Application 1 contains gamma1's processes only; application 2
    # gamma2's; the common part appears in both.
    assert app1.has_process("theta1.gamma1.f1")
    assert not app1.has_process("theta1.gamma2.g1")
    assert app2.has_process("theta1.gamma2.g1")
    for app in (app1, app2):
        assert app.has_process("PA")
        assert app.has_process("PB")


def test_figure2_dot_export(benchmark):
    def export():
        return variant_graph_to_dot(figure2.build_variant_graph())

    dot = benchmark.pedantic(export, rounds=3, iterations=1)
    write_artifact("figure2.dot", dot)
    assert "cluster_theta1" in dot
