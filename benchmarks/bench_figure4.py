"""F4 — regenerate Figure 4: the reconfigurable video system.

Reproduced series: the frame accounting of a 100-frame stream with two
mid-stream reconfiguration requests — with the valve processes (paper
protocol; zero invalid frames reach the display) and without them
(ablation; invalid frames leak through).
"""

from repro.apps import video
from repro.report.tables import render_table

from .conftest import write_artifact

FRAMES = 100


def run_both_configurations():
    reports = {}
    for with_valves in (True, False):
        trace, _ = video.run_video(n_frames=FRAMES, with_valves=with_valves)
        reports[with_valves] = video.video_report(trace)
    return reports


def test_figure4_protocol(benchmark):
    reports = benchmark.pedantic(
        run_both_configurations, rounds=1, iterations=1
    )
    rows = []
    for with_valves, report in reports.items():
        rows.append(
            [
                "with valves" if with_valves else "no valves (ablation)",
                report["frames_captured"],
                report["frames_displayed"],
                report["frames_repeated"],
                report["frames_fresh_after_resume"],
                report["invalid_frames_displayed"],
                len(report["reconfigurations"]),
                report["reconfiguration_time"],
            ]
        )
    text = render_table(
        [
            "configuration",
            "captured",
            "displayed",
            "repeated",
            "fresh",
            "invalid",
            "reconfigs",
            "t_conf total",
        ],
        rows,
        title="Figure 4: reconfigurable video system",
    )
    write_artifact("figure4_protocol.txt", text)
    print("\n" + text)

    valved = reports[True]
    unvalved = reports[False]
    # The paper's protocol claim: the valves "ensure that no invalid
    # images are produced".
    assert valved["invalid_frames_displayed"] == 0
    assert unvalved["invalid_frames_displayed"] > 0
    # Both user requests reconfigure both chain stages.
    assert len(valved["reconfigurations"]) == 4
    expected_latency = sum(video.CONFIG_LATENCY.values())
    assert valved["reconfiguration_time"] == expected_latency
    # POut replaces straddling frames instead of dropping them.
    assert valved["frames_repeated"] > 0
    assert valved["frames_fresh_after_resume"] == 2


def test_figure4_reconfiguration_timeline(benchmark):
    def run():
        trace, _ = video.run_video(n_frames=FRAMES)
        return trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [r.process, r.from_configuration, r.to_configuration, r.time, r.latency]
        for r in trace.reconfigurations
    ]
    text = render_table(
        ["process", "from", "to", "time", "t_conf"],
        rows,
        title="Figure 4: reconfiguration timeline",
    )
    write_artifact("figure4_timeline.txt", text)
    print("\n" + text)
    # Requests arrive at 1200 and 2800; reconfigurations follow promptly.
    times = sorted(r.time for r in trace.reconfigurations)
    assert times[0] >= 1200.0
    assert times[2] >= 2800.0
