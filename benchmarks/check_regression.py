"""CI gate: fail on >Nx throughput regressions vs committed baselines.

``bench_history/`` holds one small JSON baseline per recorded commit
(written by the CI bench job on pushes to main, or locally with
``--write``).  The gate compares the freshly produced
``BENCH_explorer.json`` against the most recent baseline *measured in
the same mode* (quick CI workload vs full local workload — their rates
are not comparable) and fails when any throughput metric drops below
``baseline / max_regression``.

The 2x default is deliberately loose: it tolerates runner-to-runner
variance while still catching the class of regressions that matter —
an accidentally quadratic hot path, a lost pruning rule, a serialized
pool.

Usage::

    python benchmarks/check_regression.py           # gate (CI)
    python benchmarks/check_regression.py --write   # record a baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time
from typing import Dict, Optional

REPO_ROOT = pathlib.Path(__file__).parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_explorer.json"
DEFAULT_HISTORY = REPO_ROOT / "bench_history"

#: Metrics under the gate, with the direction that counts as a
#: regression.  ``higher``: throughput, fails when the fresh value
#: drops below ``baseline / max_regression``.  ``lower``: work
#: counters (e.g. nodes expanded to prove optimality), fails when the
#: fresh value climbs above ``baseline * max_regression``.  Keys
#: absent from either side — or ``null`` (a bench may withhold a rate
#: measured from a statistically meaningless sample) — are skipped,
#: so old baselines stay comparable when new metrics are added.
GATED_METRICS = {
    "bnb_incremental_nodes_per_sec": "higher",
    "bnb_incremental_evals_per_sec": "higher",
    "annealing_incremental_evals_per_sec": "higher",
    "microbench_incremental_evals_per_sec": "higher",
    "parallel_jobs1_selections_per_sec": "higher",
    "parallel_jobs4_efficiency": "higher",
    "batch_probe_speedup": "higher",
    "serve_jobs_per_sec": "higher",
    "serve_cache_hit_speedup": "higher",
    "bnb_nodes_to_optimal": "lower",
    "bnb_adaptive_nodes_to_optimal": "lower",
    "bnb_bestfirst_nodes_to_optimal": "lower",
    "dispatch_index_bytes_per_lineage": "lower",
    # Bounded-memory degradation (PR 9): the capped hybrid search on
    # the scaled knapsack is deterministic, so its node count to
    # completion gates lower-is-better and its throughput higher.
    # Both absent from pre-PR-9 baselines — skipped there.
    "bnb_capped_hybrid_nodes_to_done": "lower",
    "bnb_capped_hybrid_nodes_per_sec": "higher",
    # Zoo matrix (PR 10): adaptive-ordering nodes-to-optimal on the
    # generator families — deterministic searches, so any climb is a
    # real pruning/ordering regression.  Absent from older baselines
    # — skipped there.
    "zoo_deep_chain_nodes_to_optimal": "lower",
    "zoo_chained_nodes_to_optimal": "lower",
    "zoo_hetero_multiproc_nodes_to_optimal": "lower",
}

#: Metrics that only compare between runs recorded on the same number
#: of CPUs: parallel efficiency on a 1-CPU container measures pool
#: overhead, not scaling, and efficiency at N workers is simply not
#: the same quantity on 1, 2 or 16 cores.  The gate skips these when
#: the baseline's recorded ``cpus`` differs from the current run's.
CPU_SENSITIVE_METRICS = frozenset({"parallel_jobs4_efficiency"})


def extract_metrics(payload: dict) -> Dict[str, float]:
    """The gated numbers of one BENCH_explorer.json.

    ``null`` rates (below the bench's minimum-sample threshold) are
    dropped here, so neither a fresh run nor a recorded baseline ever
    gates on noise.
    """
    metrics: Dict[str, float] = {}

    def put(name: str, value) -> None:
        if value is not None:
            metrics[name] = value

    explorers = payload.get("explorers", {})
    bnb = explorers.get("branch_and_bound_incremental", {})
    put("bnb_incremental_nodes_per_sec", bnb.get("nodes_per_sec"))
    put("bnb_incremental_evals_per_sec", bnb.get("evals_per_sec"))
    annealing = explorers.get("annealing_incremental", {})
    put(
        "annealing_incremental_evals_per_sec",
        annealing.get("evals_per_sec"),
    )
    microbench = payload.get("evaluation_microbench", {})
    put(
        "microbench_incremental_evals_per_sec",
        microbench.get("incremental_evals_per_sec"),
    )
    sweep_section = payload.get("parallel_jobs_sweep", {})
    for level in sweep_section.get("sweep", ()):
        if level.get("jobs") == 1:
            put(
                "parallel_jobs1_selections_per_sec",
                level.get("selections_per_sec"),
            )
        elif level.get("jobs") == 4 and sweep_section.get(
            "efficiency_meaningful"
        ):
            # Never extracted on a 1-CPU container (the bench marks
            # the whole column meaningless there).
            put(
                "parallel_jobs4_efficiency",
                level.get("parallel_efficiency"),
            )
    tightness = payload.get("bound_tightness", {})
    capacity = tightness.get("capacity_bound", {})
    if capacity.get("optimal"):
        put("bnb_nodes_to_optimal", capacity.get("nodes"))
    adaptive = payload.get("branching_order", {}).get(
        "adaptive_dynamic", {}
    )
    if adaptive.get("optimal"):
        put("bnb_adaptive_nodes_to_optimal", adaptive.get("nodes"))
    best_first = payload.get("frontier", {}).get("best_first", {})
    if best_first.get("optimal"):
        put("bnb_bestfirst_nodes_to_optimal", best_first.get("nodes"))
    bounded = payload.get("bounded_memory", {})
    capped = bounded.get("capped_hybrid", {})
    # Only meaningful when the capped run actually completed under
    # its budget (the bench asserts this; a baseline written by an
    # older bench simply lacks the section).
    if capped and capped.get("nodes", 0) < bounded.get(
        "node_budget", 0
    ):
        put("bnb_capped_hybrid_nodes_to_done", capped.get("nodes"))
        put(
            "bnb_capped_hybrid_nodes_per_sec",
            capped.get("nodes_per_sec"),
        )
    # None when numpy is absent (the bench cannot measure the batch
    # kernel at all) — skipped rather than gated on a missing backend.
    put(
        "batch_probe_speedup",
        payload.get("batch_kernel", {}).get("batch_probe_speedup"),
    )
    put(
        "dispatch_index_bytes_per_lineage",
        payload.get("dispatch_volume", {}).get(
            "index_protocol_bytes_per_lineage"
        ),
    )
    serve = payload.get("serve", {})
    put("serve_jobs_per_sec", serve.get("load", {}).get("jobs_per_sec"))
    put("serve_cache_hit_speedup", serve.get("cache_hit_speedup"))
    zoo = payload.get("zoo", {}).get("families", {})
    for family in ("deep_chain", "chained", "hetero_multiproc"):
        cell = (
            zoo.get(family, {})
            .get("configs", {})
            .get("adaptive_dynamic", {})
        )
        if cell.get("optimal"):
            put(f"zoo_{family}_nodes_to_optimal", cell.get("nodes"))
    return metrics


def recorded_cpus(payload: dict):
    """The CPU count a bench payload was produced on (None if absent)."""
    return payload.get("parallel_jobs_sweep", {}).get("cpus")


def _git(args, default: str) -> str:
    try:
        return (
            subprocess.run(
                ["git", *args],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or default
        )
    except (OSError, subprocess.CalledProcessError):
        return default


def baseline_name(sequence: int, commit: str, quick: bool) -> str:
    suffix = "-quick" if quick else ""
    return f"{sequence:06d}-{commit[:12]}{suffix}.json"


def write_baseline(
    current: pathlib.Path, history: pathlib.Path
) -> pathlib.Path:
    """Record the current bench results as a committed baseline."""
    payload = json.loads(current.read_text())
    quick = bool(payload.get("quick_mode"))
    commit = _git(["rev-parse", "HEAD"], "unknown")
    sequence = int(_git(["rev-list", "--count", "HEAD"], "0"))
    history.mkdir(exist_ok=True)
    baseline = {
        "commit": commit,
        "sequence": sequence,
        "quick_mode": quick,
        "cpus": recorded_cpus(payload),
        "recorded_unix": int(time.time()),
        "metrics": extract_metrics(payload),
    }
    path = history / baseline_name(sequence, commit, quick)
    path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    return path


def latest_baseline(
    history: pathlib.Path, quick: bool
) -> Optional[dict]:
    """The newest baseline recorded in the same mode (quick vs full).

    Recency is judged from the baseline *contents* — (sequence,
    recorded_unix) — not the filename: a shallow CI checkout reports
    ``rev-list --count`` as 1, so filenames alone could misorder.
    """
    if not history.is_dir():
        return None
    same_mode = []
    for path in sorted(history.glob("*.json")):
        baseline = json.loads(path.read_text())
        if bool(baseline.get("quick_mode")) == quick:
            baseline["_path"] = str(path)
            same_mode.append(baseline)
    if not same_mode:
        return None
    return max(
        same_mode,
        key=lambda b: (
            int(b.get("sequence", 0)),
            int(b.get("recorded_unix", 0)),
        ),
    )


def check(
    current: pathlib.Path,
    history: pathlib.Path,
    max_regression: float,
) -> int:
    payload = json.loads(current.read_text())
    quick = bool(payload.get("quick_mode"))
    baseline = latest_baseline(history, quick)
    if baseline is None:
        print(
            f"check_regression: no {'quick' if quick else 'full'}-mode "
            f"baseline in {history} — nothing to gate against (record "
            f"one with --write)."
        )
        return 0
    current_metrics = extract_metrics(payload)
    print(
        f"check_regression: comparing against "
        f"{baseline['_path']} (commit {baseline['commit'][:12]})"
    )
    current_cpus = recorded_cpus(payload)
    baseline_cpus = baseline.get("cpus")
    cpus_match = (
        current_cpus is not None and current_cpus == baseline_cpus
    )
    failures = []
    for name, direction in GATED_METRICS.items():
        old = baseline.get("metrics", {}).get(name)
        new = current_metrics.get(name)
        if old is None or new is None:
            continue
        if name in CPU_SENSITIVE_METRICS and not cpus_match:
            print(
                f"  {name:<42} skipped (baseline cpus="
                f"{baseline_cpus}, current cpus={current_cpus}: "
                f"efficiency is not comparable across CPU counts)"
            )
            continue
        ratio = new / old if old else float("inf")
        verdict = "ok"
        if direction == "higher":
            regressed = new * max_regression < old
        else:
            regressed = new > old * max_regression
        if regressed:
            verdict = f"REGRESSION (>{max_regression:g}x, {direction} is "
            verdict += "better)"
            failures.append(name)
        print(f"  {name:<42} {old:>12.1f} -> {new:>12.1f} "
              f"({ratio:.2f}x)  {verdict}")
    if failures:
        print(
            f"check_regression: FAILED — {len(failures)} metric(s) "
            f"regressed more than {max_regression:g}x: "
            f"{', '.join(failures)}"
        )
        return 1
    print("check_regression: ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=pathlib.Path,
        default=DEFAULT_CURRENT,
        help="freshly produced BENCH_explorer.json (default: repo root)",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=DEFAULT_HISTORY,
        help="committed baseline directory (default: bench_history/)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when a metric drops below baseline/N (default 2.0)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="record the current results as a new baseline and exit",
    )
    args = parser.parse_args(argv)
    if not args.current.exists():
        print(
            f"check_regression: {args.current} not found — run the "
            f"explorer bench first."
        )
        return 2
    if args.write:
        path = write_baseline(args.current, args.history)
        print(f"check_regression: baseline recorded at {path}")
        return 0
    return check(args.current, args.history, args.max_regression)


if __name__ == "__main__":
    sys.exit(main())
