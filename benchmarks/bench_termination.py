"""X5 — cluster termination: immediate vs. graceful switching.

Paper §4: terminating a running cluster "results in the loss of all
data on the internal channels"; some systems instead "require to
complete part of their functionality before they may be terminated",
at the price of a delayed switch whose termination delay "has to be
accounted for in the corresponding configuration latency".

This bench runs the expanded-interface simulation (all clusters
instantiated; router/merger; engine flush rules) under both policies
and reports the trade-off: data lost vs. switch delay.
"""

from repro.report.tables import render_table
from repro.sim.engine import simulate

from .conftest import write_artifact
from tests.test_expansion import build_host, slow_tail_interface


def run_policies():
    rows = []
    for graceful in (False, True):
        graph, expanded = build_host(
            slow_tail_interface(),
            input_tokens=8,
            request_tag="sel:v1",
            request_time=10.0,
            period=3.0,
            graceful=graceful,
        )
        trace = simulate(graph, flush_rules=expanded.flush_rules)
        switch = next(
            f
            for f in trace.firings_of("dyn.route")
            if f.mode.startswith("switch")
        )
        rows.append(
            [
                "graceful (complete first)" if graceful else "immediate",
                trace.tokens_lost(),
                len(trace.produced_on("COut")),
                switch.start,
                switch.start - 10.0,
            ]
        )
    return rows


def test_termination_policy_tradeoff(benchmark):
    rows = benchmark.pedantic(run_policies, rounds=2, iterations=1)
    text = render_table(
        [
            "policy",
            "tokens lost",
            "frames displayed",
            "switch time",
            "termination delay",
        ],
        rows,
        title="X5: cluster termination policy trade-off (8-frame stream, "
        "request at t=10)",
    )
    write_artifact("termination_policy.txt", text)
    print("\n" + text)

    immediate, graceful = rows
    # Immediate termination loses in-flight data; graceful loses none.
    assert immediate[1] > 0
    assert graceful[1] == 0
    # Graceful preserves every frame; immediate drops the lost ones.
    assert graceful[2] == 8
    assert immediate[2] < 8
    # The price of gracefulness: the switch happens later.
    assert graceful[4] > immediate[4]


def test_expanded_matches_abstracted_confirmations(benchmark):
    """The expanded form drives the same request/confirm protocol."""

    def run():
        graph, expanded = build_host(
            slow_tail_interface(),
            input_tokens=6,
            request_tag="sel:v1",
            request_time=10.0,
            period=3.0,
        )
        return simulate(graph, flush_rules=expanded.flush_rules)

    trace = benchmark.pedantic(run, rounds=2, iterations=1)
    confirmations = trace.produced_on("CCon")
    assert len(confirmations) == 1
    assert confirmations[0].has_tag("done:dyn")
    # The switch paid the configuration latency of the target cluster.
    switch = next(
        f for f in trace.firings_of("dyn.route")
        if f.mode.startswith("switch")
    )
    assert switch.latency == 20.0
