"""X3 — DSE ablation: the flows are optimizer-agnostic.

All three explorers must find the same optimum on the Table 1 decision
space; branch-and-bound should visit far fewer nodes than exhaustive
enumeration.  Also times the explorers on a larger generated space.
"""

from repro.apps import figure2
from repro.apps.generators import generate_system
from repro.report.tables import render_table
from repro.synth.explorer import (
    AnnealingExplorer,
    BranchBoundExplorer,
    ExhaustiveExplorer,
)
from repro.synth.mapping import SynthesisProblem
from repro.synth.methods import variant_units

from .conftest import write_artifact


def table1_problem() -> SynthesisProblem:
    vgraph = figure2.build_variant_graph()
    units, origins = variant_units(vgraph)
    return SynthesisProblem(
        name="table1",
        units=units,
        library=figure2.table1_library(),
        architecture=figure2.table1_architecture(),
        origins=origins,
    )


def run_all_explorers():
    problem = table1_problem()
    explorers = {
        "exhaustive": ExhaustiveExplorer(),
        "branch_and_bound": BranchBoundExplorer(),
        "annealing": AnnealingExplorer(seed=5, iterations=4000),
    }
    results = {}
    for name, explorer in explorers.items():
        result = explorer.explore(problem)
        results[name] = (result.cost, result.nodes_explored, result.optimal)
    return results


def test_explorers_agree_on_table1_optimum(benchmark):
    results = benchmark.pedantic(run_all_explorers, rounds=2, iterations=1)
    rows = [
        [name, cost, nodes, "yes" if optimal else "no"]
        for name, (cost, nodes, optimal) in results.items()
    ]
    text = render_table(
        ["explorer", "best cost", "nodes", "provably optimal"],
        rows,
        title="X3: explorer ablation on the Table 1 space",
    )
    write_artifact("explorer_ablation.txt", text)
    print("\n" + text)

    costs = {name: cost for name, (cost, _, _) in results.items()}
    assert costs["exhaustive"] == 41.0
    assert costs["branch_and_bound"] == 41.0
    assert costs["annealing"] == 41.0
    nodes = {name: n for name, (_, n, _) in results.items()}
    assert nodes["branch_and_bound"] < nodes["exhaustive"]


def test_branch_bound_timing(benchmark):
    problem = table1_problem()
    explorer = BranchBoundExplorer()
    result = benchmark(lambda: explorer.explore(problem))
    assert result.cost == 41.0


def test_annealing_on_larger_space(benchmark):
    system = generate_system(seed=3, n_variants=4, cluster_size=3)
    units, origins = variant_units(system.vgraph)
    problem = SynthesisProblem(
        name="large",
        units=units,
        library=system.library,
        architecture=system.architecture,
        origins=origins,
    )
    annealing = AnnealingExplorer(seed=1, iterations=3000)

    def run():
        return annealing.explore(problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = BranchBoundExplorer().explore(problem)
    assert result.feasible
    # heuristic stays within 25% of the optimum on this space
    assert result.cost <= reference.cost * 1.25 + 1e-9
