"""X3 — DSE ablation: the flows are optimizer-agnostic, and the
incremental evaluator's speedup is measured, not asserted by hand.

All explorers must find the same optimum on the Table 1 decision
space; branch-and-bound should visit far fewer nodes than exhaustive
enumeration.  Two throughput measurements land in
``BENCH_explorer.json`` (mirrored at the repo root for cross-PR trend
tracking):

* **search throughput** — branch-and-bound on the incremental
  :class:`SearchState` vs. the full-recompute reference path (the
  seed behavior) under an identical node budget.  This is the
  end-to-end number: it includes the infeasibility pruning the
  incremental state enables, so the trees differ — it measures the
  search stack, not the evaluator alone.
* **evaluation throughput** — a same-work microbench: one fixed
  random walk of complete-mapping reassignments, evaluated step by
  step by the delta-mode state (``reassign`` + ``leaf()``) and by
  the from-scratch oracle (``Mapping`` + ``evaluate()``).  Identical
  work on both sides; this isolates the per-evaluation speedup.

Set ``BENCH_QUICK=1`` for the reduced CI workload.
"""

import math
import os
import random
import threading
import time

from repro.apps import figure2
from repro.apps.generators import generate_system
from repro.report.tables import render_table
from repro.synth.architecture import ArchitectureTemplate
from repro.synth.backend import HAS_NUMPY
from repro.synth.explorer import (
    AnnealingExplorer,
    BranchBoundExplorer,
    ExhaustiveExplorer,
    PortfolioExplorer,
)
from repro.synth.cost import evaluate
from repro.synth.mapping import Mapping, SynthesisProblem, Target
from repro.synth.methods import ProblemFamily, explore_space, variant_units
from repro.synth.state import SearchState
from repro.variants.variant_space import VariantSpace

from .conftest import (
    merge_json_artifact,
    quick_mode,
    write_artifact,
    write_json_artifact,
)


def table1_problem() -> SynthesisProblem:
    vgraph = figure2.build_variant_graph()
    units, origins = variant_units(vgraph)
    return SynthesisProblem(
        name="table1",
        units=units,
        library=figure2.table1_library(),
        architecture=figure2.table1_architecture(),
        origins=origins,
    )


def run_all_explorers():
    problem = table1_problem()
    explorers = {
        "exhaustive": ExhaustiveExplorer(),
        "branch_and_bound": BranchBoundExplorer(),
        "annealing": AnnealingExplorer(seed=5, iterations=4000),
        "portfolio": PortfolioExplorer(seed=5, iterations=4000),
    }
    results = {}
    for name, explorer in explorers.items():
        result = explorer.explore(problem)
        results[name] = (result.cost, result.nodes_explored, result.optimal)
    return results


def test_explorers_agree_on_table1_optimum(benchmark):
    results = benchmark.pedantic(run_all_explorers, rounds=2, iterations=1)
    rows = [
        [name, cost, nodes, "yes" if optimal else "no"]
        for name, (cost, nodes, optimal) in results.items()
    ]
    text = render_table(
        ["explorer", "best cost", "nodes", "provably optimal"],
        rows,
        title="X3: explorer ablation on the Table 1 space",
    )
    write_artifact("explorer_ablation.txt", text)
    print("\n" + text)

    costs = {name: cost for name, (cost, _, _) in results.items()}
    assert costs["exhaustive"] == 41.0
    assert costs["branch_and_bound"] == 41.0
    assert costs["annealing"] == 41.0
    assert costs["portfolio"] == 41.0
    nodes = {name: n for name, (_, n, _) in results.items()}
    assert nodes["branch_and_bound"] < nodes["exhaustive"]


def test_branch_bound_timing(benchmark):
    problem = table1_problem()
    explorer = BranchBoundExplorer()
    result = benchmark(lambda: explorer.explore(problem))
    assert result.cost == 41.0


def test_annealing_on_larger_space(benchmark):
    system = generate_system(seed=3, n_variants=4, cluster_size=3)
    units, origins = variant_units(system.vgraph)
    problem = SynthesisProblem(
        name="large",
        units=units,
        library=system.library,
        architecture=system.architecture,
        origins=origins,
    )
    annealing = AnnealingExplorer(seed=1, iterations=3000)

    def run():
        return annealing.explore(problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = BranchBoundExplorer().explore(problem)
    assert result.feasible
    # heuristic stays within 25% of the optimum on this space
    assert result.cost <= reference.cost * 1.25 + 1e-9


# ----------------------------------------------------------------------
# Incremental vs. reference throughput (BENCH_explorer.json)
# ----------------------------------------------------------------------
def throughput_problem() -> SynthesisProblem:
    """A knapsack-hard workload where the bound stays loose for long.

    Zero processor cost and a tight capacity force the search to pick
    the cheapest hardware subset that makes the software partition
    fit — branch-and-bound must grind through many near-tie subtrees,
    which is exactly where per-node evaluation cost dominates.
    """
    system = generate_system(
        seed=3, n_variants=6, cluster_size=5, common_processes=5
    )
    units, origins = variant_units(system.vgraph)
    architecture = ArchitectureTemplate(
        name="throughput-bench",
        max_processors=1,
        processor_cost=0.0,
        processor_capacity=0.45,
    )
    return SynthesisProblem(
        name="throughput",
        units=units,
        library=system.library,
        architecture=architecture,
        origins=origins,
    )


#: Below this many samples a rate is statistical noise (a single
#: evaluation "measures" whatever the clock granularity says), so the
#: bench reports ``null`` and the regression gate skips it.
MIN_RATE_SAMPLES = 50


def _rate(samples: int, elapsed: float):
    if samples < MIN_RATE_SAMPLES:
        return None
    return round(samples / elapsed, 1)


def _ratio_or_none(numerator, denominator):
    """A speedup ratio, or None when either rate was withheld."""
    if numerator is None or denominator is None:
        return None
    return numerator / denominator


def _explore_in_fresh_stack(explorer, problem):
    """Run one exploration on a fresh thread and return the result.

    Deep-recursion timing is sensitive to the *base* call-stack depth:
    CPython ≥3.11 allocates frame stacks in fixed-size chunks, and a
    recursion that happens to oscillate across a chunk boundary pays a
    chunk-allocation round trip on every call at that depth.  Where
    the boundary lands depends on how many harness frames sit below
    the search (pytest adds ~30), so the same explorer can measure 2x
    slower purely from alignment.  A dedicated thread starts from
    depth ~1 and makes the measurement independent of the harness.
    """
    box = {}

    def run():
        box["result"] = explorer.explore(problem)

    thread = threading.Thread(target=run)
    thread.start()
    thread.join()
    return box["result"]


def _timed(explorer, problem, repeats: int = 1):
    """Time ``explorer.explore(problem)``, best of ``repeats`` runs.

    Explorers are stateless across ``explore`` calls, so every repeat
    searches the identical tree; the minimum elapsed time is the least
    noise-polluted sample (rate rows that feed bench_history baselines
    pass ``repeats=3`` so a single scheduler hiccup cannot fail the
    speedup assertions).  Each run gets a fresh thread stack — see
    :func:`_explore_in_fresh_stack`.
    """
    elapsed = None
    for _repeat in range(repeats):
        start = time.perf_counter()
        result = _explore_in_fresh_stack(explorer, problem)
        took = time.perf_counter() - start
        elapsed = took if elapsed is None or took < elapsed else elapsed
    return {
        "cost": result.cost if result.feasible else None,
        "optimal": result.optimal,
        "nodes": result.nodes_explored,
        "evaluations": result.evaluations,
        "seconds": round(elapsed, 6),
        "nodes_per_sec": _rate(result.nodes_explored, elapsed),
        "evals_per_sec": _rate(result.evaluations, elapsed),
    }


def _probe_timed(explorer, problem):
    """Like :func:`_timed`, plus time spent scoring bounds.

    Temporarily wraps ``score_candidates`` *and* ``lower_bound`` with
    one accumulating clock, so the returned probe seconds isolate the
    bound-scoring share of each search node from the mutation share.
    Both must be counted for the comparison to be fair: the scalar
    explorer computes each child's bound at node entry
    (``lower_bound``), the vectorized one batch-scores the whole
    sibling set at expansion (``score_candidates``) — same work,
    different route.  The depth guard keeps the scalar probe loop
    (whose ``score_candidates`` calls ``lower_bound`` per candidate)
    from being counted twice.
    """
    from repro.synth import state as state_module

    clock = {"seconds": 0.0, "calls": 0, "depth": 0}

    def _wrap(original):
        def timed_score(self, *args, **kwargs):
            if clock["depth"]:
                return original(self, *args, **kwargs)
            clock["depth"] = 1
            start = time.perf_counter()
            try:
                return original(self, *args, **kwargs)
            finally:
                clock["depth"] = 0
                clock["seconds"] += time.perf_counter() - start
                clock["calls"] += 1

        return timed_score

    originals = {}
    for attr in ("SearchState", "_NumpySearchState"):
        cls = getattr(state_module, attr, None)
        if cls is None:
            continue
        for method in ("score_candidates", "lower_bound"):
            if method in cls.__dict__:
                originals[(cls, method)] = cls.__dict__[method]
    try:
        for (cls, method), original in originals.items():
            setattr(cls, method, _wrap(original))
        result = _timed(explorer, problem)
    finally:
        for (cls, method), original in originals.items():
            setattr(cls, method, original)
    return result, clock


def run_evaluation_microbench(problem: SynthesisProblem, steps: int):
    """Per-evaluation speedup on identical work (same move sequence).

    ``capacity_bound=False``: this bench isolates the *evaluation*
    path (``reassign`` + ``leaf()``), which never reads the lower
    bound — knapsack-pool upkeep is exercised (and measured) by the
    branch-and-bound sections instead.  This is also how the real
    evaluation-heavy consumer (annealing) constructs its state.

    When NumPy is present the identical walk is replayed on *both*
    evaluation backends (``backend_evals_per_sec``), with the per-step
    results asserted byte-identical; the historical ``speedup`` column
    stays keyed to the scalar backend so it remains comparable with
    its bench_history baselines.  Single-move replay is the scalar
    backend's home turf — the batch win is measured separately by
    :func:`run_batch_kernel`.
    """
    rng = random.Random(42)
    units = list(problem.units)
    initial = {}
    for unit in units:
        entry = problem.entry(unit)
        initial[unit] = (
            Target.hw() if entry.hardware is not None else Target.sw(0)
        )
    moves = []
    for _ in range(steps):
        unit = rng.choice(units)
        entry = problem.entry(unit)
        options = []
        if entry.software is not None:
            options.append(Target.sw(rng.randrange(2)))
        if entry.hardware is not None:
            options.append(Target.hw())
        moves.append((unit, rng.choice(options)))

    def replay(state):
        for unit, target in initial.items():
            state.assign(unit, target)
        start = time.perf_counter()
        n_feasible = 0
        checksum = 0.0
        for unit, target in moves:
            state.reassign(unit, target)
            feasible, cost = state.leaf()
            if feasible:
                n_feasible += 1
                checksum += cost
        return time.perf_counter() - start, n_feasible, checksum

    backend_names = ("python", "numpy") if HAS_NUMPY else ("python",)
    backend_elapsed = {}
    backend_checks = {}
    for name in backend_names:
        backend_elapsed[name], n_feasible, checksum = replay(
            SearchState(problem, capacity_bound=False, backend=name)
        )
        backend_checks[name] = (n_feasible, checksum)
    incremental_elapsed = backend_elapsed["python"]
    incremental_feasible, incremental_checksum = backend_checks["python"]
    # Both integer-kernel backends replay the walk byte-identically.
    for name in backend_names:
        assert backend_checks[name] == (
            incremental_feasible,
            incremental_checksum,
        ), name

    assignment = dict(initial)
    start = time.perf_counter()
    reference_feasible = 0
    reference_checksum = 0.0
    for unit, target in moves:
        assignment[unit] = target
        result = evaluate(problem, Mapping(assignment))
        if result.feasible:
            reference_feasible += 1
            reference_checksum += result.total_cost
    reference_elapsed = time.perf_counter() - start

    # Both paths must agree on every step (costs up to summation-order
    # float noise; the grid-float property suite checks exactness).
    assert incremental_feasible == reference_feasible
    assert abs(incremental_checksum - reference_checksum) <= 1e-6 * max(
        1.0, abs(reference_checksum)
    )
    return {
        "steps": steps,
        "incremental_evals_per_sec": round(steps / incremental_elapsed, 1),
        "reference_evals_per_sec": round(steps / reference_elapsed, 1),
        "speedup": round(reference_elapsed / incremental_elapsed, 2),
        "backend_evals_per_sec": {
            name: round(steps / backend_elapsed[name], 1)
            for name in backend_names
        },
    }


def batch_problem() -> SynthesisProblem:
    """The knapsack-hard workload widened to a real processor fan-out.

    Same generated system as :func:`throughput_problem`, but with 32
    processors available and a per-processor capacity tight enough
    that good mappings *occupy* many of them: every flexible unit then
    has ~33 probe-able targets, and the search's symmetry-broken
    candidate lists (occupied processors + one fresh) grow wide too —
    the sibling width the batch kernel vectorizes over
    (``max_processors=1`` would hand it batches of two — no vector to
    speak of).
    """
    system = generate_system(
        seed=3, n_variants=6, cluster_size=5, common_processes=5
    )
    units, origins = variant_units(system.vgraph)
    architecture = ArchitectureTemplate(
        name="batch-bench",
        max_processors=32,
        processor_cost=0.5,
        processor_capacity=0.12,
    )
    return SynthesisProblem(
        name="batch",
        units=units,
        library=system.library,
        architecture=architecture,
        origins=origins,
    )


def run_batch_kernel(rounds: int, node_budget: int):
    """Batch vs scalar candidate scoring on identical probe work.

    Two measurements:

    * **probe microbench** — the same sequence of full-sibling-batch
      ``score_candidates`` calls on a half-built mapping, once per
      backend.  The scalar backend runs the definitional
      assign/bound/unassign loop; the NumPy backend one vectorized
      pass.  Identical work, results asserted byte-identical in-bench;
      ``batch_probe_speedup`` is the acceptance metric (gated
      higher-is-better in ``check_regression.py``).
    * **per-node probe cost** — LDS-frontier branch-and-bound (which
      probes the whole sibling batch at every expansion; that is the
      frontier's mechanism, not an ordering option) on the wide
      workload under an identical node budget, per backend, with the
      time spent scoring bounds accounted separately
      (see :func:`_probe_timed`).  Node counts must match exactly
      (the batch path may not change the tree);
      ``probe_cost_per_node_us`` is the scoring share of each node,
      and its scalar/batch ratio is the measured per-node drop.  This
      is the configuration ``auto`` resolves to the vectorized
      backend for; the DFS frontier stays scalar under auto because
      it is mutation-bound (it computes one bare ``lower_bound`` per
      entered node, which batching cannot beat at bench widths), and
      the end-to-end rates recorded here keep that decision honest.

    When NumPy is absent only the scalar side runs and the comparative
    fields are ``None`` (the regression gate skips them).
    """
    problem = batch_problem()
    rng = random.Random(11)
    units = list(problem.units)
    backend_names = ("python", "numpy") if HAS_NUMPY else ("python",)

    # A deterministic half-built mapping: probes then see populated
    # processor columns, shared-exclusion clusters, and a live pool.
    prefix = []
    for unit in units[: len(units) // 2]:
        entry = problem.entry(unit)
        if entry.software is not None:
            prefix.append((unit, Target.sw(rng.randrange(16))))
        else:
            prefix.append((unit, Target.hw()))
    probe_units = [
        unit
        for unit in units[len(units) // 2 :]
        if problem.entry(unit).software is not None
    ]
    max_processors = problem.architecture.max_processors

    # Candidate lists are built once, outside the timed loops: the
    # measurement isolates scoring cost, not Target construction.
    targets_of = {}
    for unit in probe_units:
        targets = [Target.sw(cpu) for cpu in range(max_processors)]
        if problem.entry(unit).hardware is not None:
            targets.append(Target.hw())
        targets_of[unit] = targets

    elapsed = {}
    scored = {}
    total_probes = 0
    for name in backend_names:
        state = SearchState(problem, backend=name)
        for unit, target in prefix:
            state.assign(unit, target)
        # Warm-up: first calls pay one-off costs (index-vector cache,
        # allocator warm-up) that steady-state search never sees.
        for index in range(min(rounds // 10 + 1, 50)):
            unit = probe_units[index % len(probe_units)]
            state.score_candidates(unit, targets_of[unit])
        # Best-of-3 repeats: the probe sequence is identical every
        # time, so the minimum is the least noise-polluted sample.
        best = None
        for _repeat in range(3):
            results = []
            probes = 0
            start = time.perf_counter()
            for index in range(rounds):
                unit = probe_units[index % len(probe_units)]
                batch = state.score_candidates(unit, targets_of[unit])
                probes += len(batch)
                results.append(batch)
            took = time.perf_counter() - start
            best = took if best is None or took < best else best
        elapsed[name] = best
        scored[name] = results
        total_probes = probes
    if HAS_NUMPY:
        # Byte-identity of every (bound, feasible) pair, in-bench.
        assert scored["numpy"] == scored["python"]

    scalar_rate = _rate(total_probes, elapsed["python"])
    batch_rate = (
        _rate(total_probes, elapsed["numpy"]) if HAS_NUMPY else None
    )
    speedup = _ratio_or_none(batch_rate, scalar_rate)

    bnb = {}
    for name in backend_names:
        result, probe_clock = _probe_timed(
            BranchBoundExplorer(
                node_budget=node_budget,
                frontier="lds",
                backend=name,
            ),
            problem,
        )
        bnb[name] = result
        nodes = result["nodes"]
        bnb[name]["probe_seconds"] = round(probe_clock["seconds"], 4)
        bnb[name]["probe_calls"] = probe_clock["calls"]
        bnb[name]["probe_cost_per_node_us"] = (
            round(probe_clock["seconds"] / nodes * 1e6, 2)
            if nodes
            else None
        )
    if HAS_NUMPY:
        # The batch path may not change the tree, only its cost.
        assert bnb["numpy"]["nodes"] == bnb["python"]["nodes"]
        assert bnb["numpy"]["cost"] == bnb["python"]["cost"]

    return {
        "workload": problem.name,
        "max_processors": max_processors,
        "rounds": rounds,
        "probes": total_probes,
        "scalar_probes_per_sec": scalar_rate,
        "batch_probes_per_sec": batch_rate,
        "batch_probe_speedup": (
            round(speedup, 2) if speedup is not None else None
        ),
        "bnb_node_budget": node_budget,
        "bnb_frontier": "lds",
        "bnb": bnb,
        # Scalar scoring seconds per node over batch scoring seconds
        # per node: > 1 is the measured drop in probe cost per node.
        "bnb_probe_cost_ratio": (
            round(
                bnb["python"]["probe_cost_per_node_us"]
                / bnb["numpy"]["probe_cost_per_node_us"],
                2,
            )
            if HAS_NUMPY
            and bnb["python"]["probe_cost_per_node_us"]
            and bnb["numpy"]["probe_cost_per_node_us"]
            else None
        ),
    }


def run_throughput_comparison(node_budget: int, iterations: int):
    # The branch-and-bound rows pin the PR 3 configuration (static
    # order, static pool, scalar backend): adaptive ordering proves
    # optimality in so few nodes that a rate would be statistical
    # noise, and these rows exist to track evaluator throughput
    # against their bench_history baselines on an unchanged workload.
    # The ordering win has its own section (``branching_order``); the
    # NumPy batch kernel has its own (``batch_kernel``).
    problem = throughput_problem()
    report = {
        "branch_and_bound_incremental": _timed(
            BranchBoundExplorer(
                node_budget=node_budget,
                ordering="static",
                dynamic_pool=False,
                backend="python",
            ),
            problem,
            repeats=3,
        ),
        "branch_and_bound_basic_bound": _timed(
            BranchBoundExplorer(
                node_budget=node_budget,
                capacity_bound=False,
                ordering="static",
                backend="python",
            ),
            problem,
            repeats=3,
        ),
        "branch_and_bound_reference": _timed(
            BranchBoundExplorer(
                node_budget=node_budget,
                incremental=False,
                ordering="static",
            ),
            problem,
            repeats=3,
        ),
        "annealing_incremental": _timed(
            AnnealingExplorer(seed=1, iterations=iterations),
            problem,
            repeats=3,
        ),
        "annealing_reference": _timed(
            AnnealingExplorer(
                seed=1, iterations=iterations, incremental=False
            ),
            problem,
            repeats=3,
        ),
    }
    return problem, report


def run_bound_tightness(completion_budget: int = 500_000):
    """Nodes to *prove optimality* with and without the capacity bound.

    Unlike the budget-truncated throughput rows, both searches run to
    completion, so the node counts measure bound tightness alone —
    both under the PR 3 static order, so this section stays comparable
    with its bench_history baselines (the ordering win is measured
    separately in :func:`run_branching_order`).
    """
    problem = throughput_problem()
    capacity = _timed(
        BranchBoundExplorer(
            node_budget=completion_budget,
            ordering="static",
            dynamic_pool=False,
        ),
        problem,
    )
    basic = _timed(
        BranchBoundExplorer(
            node_budget=completion_budget,
            capacity_bound=False,
            ordering="static",
        ),
        problem,
    )
    section = {
        "workload": problem.name,
        "completion_budget": completion_budget,
        "capacity_bound": capacity,
        "basic_bound": basic,
    }
    if capacity["optimal"] and basic["optimal"]:
        section["nodes_ratio"] = round(
            basic["nodes"] / capacity["nodes"], 2
        )
    return section


def run_branching_order(completion_budget: int = 500_000):
    """Nodes to prove optimality under each branching-order mode.

    Every run uses the capacity-aware bound and completes, so the node
    counts isolate the search-*order* win (PR 4) from the bound win
    (PR 3): ``static`` is the PR 3 baseline order, ``density`` adds
    the knapsack-density unit order, ``adaptive`` adds value ordering
    plus shallow strong branching, and ``adaptive_dynamic`` (the
    default configuration) adds the re-elected knapsack pool.
    """
    problem = throughput_problem()
    modes = {
        "static": dict(ordering="static", dynamic_pool=False),
        "density": dict(ordering="density", dynamic_pool=False),
        "adaptive": dict(ordering="adaptive", dynamic_pool=False),
        "static_dynamic_pool": dict(
            ordering="static", dynamic_pool=True
        ),
        "adaptive_dynamic": dict(),
    }
    section = {
        "workload": problem.name,
        "completion_budget": completion_budget,
    }
    for name, kwargs in modes.items():
        section[name] = _timed(
            BranchBoundExplorer(
                node_budget=completion_budget, **kwargs
            ),
            problem,
        )
    if section["static"]["optimal"]:
        reference = section["static"]["nodes"]
        section["nodes_ratio_vs_static"] = {
            name: round(reference / section[name]["nodes"], 2)
            for name in modes
            if name != "static" and section[name]["optimal"]
        }
    return section


def run_frontier_comparison(completion_budget: int = 500_000):
    """Nodes to prove optimality under each search frontier.

    All runs use the default adaptive ordering + dynamic pool, so the
    node counts isolate the *frontier* win (which open node expands
    next) from the ordering win (how a node's children are ranked).
    ``best_first`` is the headline: it expands only nodes whose bound
    beats the optimum, so its proven-optimal count is gated
    lower-is-better as ``bnb_bestfirst_nodes_to_optimal``.
    """
    problem = throughput_problem()
    section = {
        "workload": problem.name,
        "completion_budget": completion_budget,
    }
    for name, frontier in (
        ("dfs", "dfs"),
        ("best_first", "best-first"),
        ("lds", "lds"),
    ):
        section[name] = _timed(
            BranchBoundExplorer(
                node_budget=completion_budget, frontier=frontier
            ),
            problem,
        )
    if section["dfs"]["optimal"]:
        reference = section["dfs"]["nodes"]
        section["nodes_ratio_vs_dfs"] = {
            name: round(reference / section[name]["nodes"], 2)
            for name in ("best_first", "lds")
            if section[name]["optimal"]
        }
    return section


def scaled_knapsack_problem() -> SynthesisProblem:
    """The throughput regime scaled to a ~100x larger variant system.

    Same knapsack-hard shape as :func:`throughput_problem` (zero
    processor cost, tight capacity), but 9 variants x 6-process
    clusters instead of 6 x 5 — 59 units instead of 35.  Under the
    *basic* bound (no capacity term) and the static order the
    best-first frontier on this instance grows past fifteen thousand
    open entries before any budget a bench can afford, which is the
    memory regime ``max_open`` exists for.
    """
    system = generate_system(
        seed=3, n_variants=9, cluster_size=6, common_processes=5
    )
    units, origins = variant_units(system.vgraph)
    architecture = ArchitectureTemplate(
        name="bounded-memory-bench",
        max_processors=1,
        processor_cost=0.0,
        processor_capacity=0.45,
    )
    return SynthesisProblem(
        name="scaled_knapsack",
        units=units,
        library=system.library,
        architecture=architecture,
        origins=origins,
    )


def _bounded_timed(explorer, problem):
    """Like :func:`_timed` but also records the bounded-memory gauges."""
    start = time.perf_counter()
    result = _explore_in_fresh_stack(explorer, problem)
    elapsed = time.perf_counter() - start
    return {
        "cost": result.cost if result.feasible else None,
        "optimal": result.optimal,
        "nodes": result.nodes_explored,
        "seconds": round(elapsed, 6),
        "nodes_per_sec": _rate(result.nodes_explored, elapsed),
        "open_high_water": result.open_high_water,
        "evicted_subtrees": result.evicted_subtrees,
        "proof_floor": (
            round(result.proof_floor, 6)
            if math.isfinite(result.proof_floor)
            else None
        ),
        "provenance": result.provenance,
    }


def run_bounded_memory(node_budget: int = 20_000, max_open: int = 64):
    """Graceful degradation under a frontier cap vs frontier blow-up.

    All three runs share the loose-bound configuration (basic bound,
    static order) on the scaled knapsack instance.  The uncapped
    best-first search must exhaust the node budget with an open
    frontier far beyond ``max_open`` — the run a memory-bounded box
    would OOM on (:mod:`tests.test_memory_pressure` proves that with
    a real rlimit).  The capped best-first and hybrid runs must
    *complete* under the same budget with their high-water mark at or
    below the cap, a feasible answer, and a ``proof_floor`` that
    honestly brackets it from below despite the evicted subtrees.
    """
    problem = scaled_knapsack_problem()
    base = dict(
        capacity_bound=False, ordering="static", dynamic_pool=False
    )
    section = {
        "workload": problem.name,
        "units": len(problem.units),
        "node_budget": node_budget,
        "max_open": max_open,
        "uncapped_best_first": _bounded_timed(
            BranchBoundExplorer(
                frontier="best-first", node_budget=node_budget, **base
            ),
            problem,
        ),
        "capped_best_first": _bounded_timed(
            BranchBoundExplorer(
                frontier="best-first",
                node_budget=node_budget,
                max_open=max_open,
                **base,
            ),
            problem,
        ),
        "capped_hybrid": _bounded_timed(
            BranchBoundExplorer(
                frontier="hybrid",
                node_budget=node_budget,
                max_open=max_open,
                **base,
            ),
            problem,
        ),
    }
    uncapped = section["uncapped_best_first"]
    section["frontier_reduction"] = round(
        uncapped["open_high_water"]
        / max(1, section["capped_hybrid"]["open_high_water"]),
        1,
    )
    return section


def run_incumbent_sharing(lineage_size: int = 2, jobs: int = 2):
    """Fleet-wide incumbent sharing across a space's lineages.

    Runs the jobs-sweep space with and without ``share_incumbent``:
    the best selection and its proven-optimal cost must be identical;
    the total node count with sharing is recorded but *not* gated —
    under ``jobs > 1`` it depends on which worker publishes first.
    """
    family, space = jobs_sweep_space()
    baseline = explore_space(
        family, space, jobs=jobs, lineage_size=lineage_size
    )
    shared = explore_space(
        family,
        space,
        jobs=jobs,
        lineage_size=lineage_size,
        share_incumbent=True,
    )
    assert shared.best().cost == baseline.best().cost
    assert shared.best().exploration.optimal
    return {
        "workload": family.name,
        "selections": space.count(),
        "lineage_size": lineage_size,
        "jobs": jobs,
        "best_cost": baseline.best().cost,
        "best_cost_shared": shared.best().cost,
        "best_optimal_shared": shared.best().exploration.optimal,
        "total_nodes_baseline": baseline.total_nodes,
        "total_nodes_shared": shared.total_nodes,
        "note": (
            "total_nodes_shared is timing-dependent under jobs > 1 "
            "(fleet pruning depends on publish order) and is therefore "
            "not regression-gated"
        ),
    }


def run_dispatch_volume(lineage_size: int = 2):
    """Bytes crossing the process boundary per lineage, both protocols.

    The index protocol ships the family + space once per worker and a
    constant-size ``(start, count)`` shard per lineage; the legacy task
    protocol pickled every selection's unit/origin tuples.
    """
    import pickle

    from repro.synth.parallel import (
        shard_indices,
        shard_lineages,
        tasks_from_space,
    )

    family, space = jobs_sweep_space()
    tasks = tasks_from_space(family, space)
    legacy = shard_lineages(tasks, lineage_size)
    shards = shard_indices(len(tasks), lineage_size)
    task_bytes = sum(len(pickle.dumps(lin)) for lin in legacy)
    index_bytes = sum(len(pickle.dumps(shard)) for shard in shards)
    return {
        "workload": family.name,
        "selections": len(tasks),
        "lineage_size": lineage_size,
        "lineages": len(shards),
        "task_protocol_bytes_per_lineage": round(
            task_bytes / len(legacy), 1
        ),
        "index_protocol_bytes_per_lineage": round(
            index_bytes / len(shards), 1
        ),
        "shared_family_space_bytes_once_per_worker": len(
            pickle.dumps((family, space))
        ),
        "bytes_reduction_per_lineage": round(task_bytes / index_bytes, 1),
    }


def test_incremental_speedup_recorded(benchmark):
    node_budget = 10_000 if quick_mode() else 30_000
    iterations = 1_000 if quick_mode() else 3_000
    problem, report = benchmark.pedantic(
        lambda: run_throughput_comparison(node_budget, iterations),
        rounds=1,
        iterations=1,
    )

    bnb_inc = report["branch_and_bound_incremental"]
    bnb_ref = report["branch_and_bound_reference"]
    node_speedup = _ratio_or_none(
        bnb_inc["nodes_per_sec"], bnb_ref["nodes_per_sec"]
    )
    eval_ratio = _ratio_or_none(
        report["annealing_incremental"]["evals_per_sec"],
        report["annealing_reference"]["evals_per_sec"],
    )
    microbench = run_evaluation_microbench(
        problem, steps=2_000 if quick_mode() else 10_000
    )
    bound_tightness = run_bound_tightness(
        completion_budget=200_000 if quick_mode() else 500_000
    )
    branching_order = run_branching_order(
        completion_budget=200_000 if quick_mode() else 500_000
    )
    frontier = run_frontier_comparison(
        completion_budget=200_000 if quick_mode() else 500_000
    )
    bounded_memory = run_bounded_memory(
        node_budget=6_000 if quick_mode() else 20_000
    )
    incumbent_sharing = run_incumbent_sharing()
    dispatch_volume = run_dispatch_volume()
    batch_kernel = run_batch_kernel(
        rounds=200 if quick_mode() else 600,
        node_budget=2_000 if quick_mode() else 4_000,
    )
    payload = {
        "bench": "X3-throughput",
        "quick_mode": quick_mode(),
        "workload": {
            "problem": problem.name,
            "units": len(problem.units),
            "max_processors": problem.architecture.max_processors,
            "processor_capacity": problem.architecture.processor_capacity,
            "node_budget": node_budget,
            "annealing_iterations": iterations,
        },
        "explorers": report,
        # End-to-end search-stack throughput under the same node
        # budget; includes the infeasibility pruning the incremental
        # state enables, so the explored trees differ.  None when a
        # side's rate was withheld (below the sample threshold).
        "speedup_nodes_per_sec": (
            round(node_speedup, 2) if node_speedup is not None else None
        ),
        # The integer kernel replays annealing moves as O(1) deltas on
        # both sides of the comparison; this ratio isolates the
        # order-independent evaluation path.
        "annealing_evals_per_sec_ratio": (
            round(eval_ratio, 2) if eval_ratio is not None else None
        ),
        # Same-work microbench: identical move sequence through the
        # delta-mode state and the from-scratch oracle.
        "evaluation_microbench": microbench,
        # Nodes to prove optimality, capacity-aware vs basic bound.
        "bound_tightness": bound_tightness,
        # Nodes to prove optimality per branching-order mode.
        "branching_order": branching_order,
        # Nodes to prove optimality per search frontier (adaptive
        # ordering + dynamic pool throughout).
        "frontier": frontier,
        # Bounded-memory degradation: uncapped best-first frontier
        # blow-up vs capped completion on the scaled knapsack.
        "bounded_memory": bounded_memory,
        # Fleet-wide incumbent sharing across lineages (opt-in path).
        "incumbent_sharing": incumbent_sharing,
        # Bytes pickled per lineage, index vs task protocol.
        "dispatch_volume": dispatch_volume,
        # Vectorized batch candidate scoring vs the scalar probe loop
        # (identical work, results asserted byte-identical in-bench).
        "batch_kernel": batch_kernel,
    }
    write_json_artifact("BENCH_explorer.json", payload, also_repo_root=True)

    rows = [
        [name, *(str(stats[k]) for k in (
            "nodes", "evaluations", "seconds", "nodes_per_sec",
            "evals_per_sec",
        ))]
        for name, stats in report.items()
    ]
    speedup_label = (
        f"{node_speedup:.2f}x" if node_speedup is not None else "n/a"
    )
    text = render_table(
        ["explorer", "nodes", "evals", "seconds", "nodes/s", "evals/s"],
        rows,
        title=(
            "X3: incremental vs reference throughput "
            f"(node speedup {speedup_label})"
        ),
    )
    write_artifact("explorer_throughput.txt", text)
    print("\n" + text)

    order_rows = [
        [
            mode,
            str(branching_order[mode]["nodes"]),
            "yes" if branching_order[mode]["optimal"] else "no",
            str(
                branching_order.get("nodes_ratio_vs_static", {}).get(
                    mode, "1.0"
                )
            ),
        ]
        for mode in (
            "static",
            "density",
            "adaptive",
            "static_dynamic_pool",
            "adaptive_dynamic",
        )
    ]
    order_text = render_table(
        ["ordering", "nodes to optimal", "proved", "shrink vs static"],
        order_rows,
        title="X3: branching-order ablation (capacity-aware bound)",
    )
    write_artifact("explorer_branching_order.txt", order_text)
    print("\n" + order_text)

    frontier_rows = [
        [
            mode,
            str(frontier[mode]["nodes"]),
            "yes" if frontier[mode]["optimal"] else "no",
            str(
                frontier.get("nodes_ratio_vs_dfs", {}).get(mode, "1.0")
            ),
        ]
        for mode in ("dfs", "best_first", "lds")
    ]
    frontier_text = render_table(
        ["frontier", "nodes to optimal", "proved", "shrink vs dfs"],
        frontier_rows,
        title="X3: search-frontier ablation (adaptive ordering)",
    )
    write_artifact("explorer_frontier.txt", frontier_text)
    print("\n" + frontier_text)

    bounded_rows = [
        [
            mode,
            str(bounded_memory[mode]["nodes"]),
            str(bounded_memory[mode]["open_high_water"]),
            str(bounded_memory[mode]["evicted_subtrees"]),
            str(bounded_memory[mode]["cost"]),
            str(bounded_memory[mode]["proof_floor"]),
        ]
        for mode in (
            "uncapped_best_first",
            "capped_best_first",
            "capped_hybrid",
        )
    ]
    bounded_text = render_table(
        ["mode", "nodes", "open high-water", "evicted", "cost", "floor"],
        bounded_rows,
        title=(
            "X3: bounded-memory degradation "
            f"(max_open {bounded_memory['max_open']}, frontier shrink "
            f"{bounded_memory['frontier_reduction']}x)"
        ),
    )
    write_artifact("explorer_bounded_memory.txt", bounded_text)
    print("\n" + bounded_text)

    # Same budget, same machine.  The end-to-end search-stack ratio is
    # the acceptance metric; the microbench isolates the evaluator.
    # A None ratio means a side proved optimality in fewer nodes than
    # the rate threshold — nothing meaningful to assert on.
    if node_speedup is not None:
        assert node_speedup >= 2.0
    assert microbench["speedup"] >= 5.0
    # The integer kernel must beat the full-recompute reference on the
    # annealing move loop (the ROADMAP item this PR closes: the ratio
    # was ~0.96 when exact mode re-aggregated per move).  Annealing
    # always runs >= MIN_RATE_SAMPLES evaluations, so this ratio is
    # never withheld.
    assert eval_ratio is not None and eval_ratio > 1.0
    # Both annealing paths walk the same trajectory on this workload
    # (energies differ only by quantization, far below its move gaps).
    assert report["annealing_incremental"]["nodes"] == (
        report["annealing_reference"]["nodes"]
    )
    assert report["annealing_incremental"]["cost"] is not None
    assert report["annealing_reference"]["cost"] is not None
    assert abs(
        report["annealing_incremental"]["cost"]
        - report["annealing_reference"]["cost"]
    ) <= 1e-6 * max(1.0, abs(report["annealing_reference"]["cost"]))
    # The capacity-aware bound must shrink the knapsack-hard tree by
    # at least 2x (it measures ~36x here).
    assert bound_tightness["capacity_bound"]["optimal"]
    if bound_tightness["basic_bound"]["optimal"]:
        assert bound_tightness["nodes_ratio"] >= 2.0
    # Adaptive ordering + the dynamic pool must shrink the
    # proven-optimal tree by >= 1.5x vs the PR 3 static order (it
    # measures ~80x here), at the identical proven-optimal cost.
    assert branching_order["static"]["optimal"]
    assert branching_order["adaptive_dynamic"]["optimal"]
    assert branching_order["adaptive_dynamic"]["cost"] == (
        branching_order["static"]["cost"]
    )
    assert (
        branching_order["adaptive_dynamic"]["nodes"] * 1.5
        <= branching_order["static"]["nodes"]
    )
    # Every frontier must prove the identical optimum.  Best-first
    # expands only nodes whose bound beats the optimum, so on this
    # pinned workload it must stay within the DFS node count — an
    # empirical acceptance gate (the two frontiers shape their trees
    # differently, so this is a measured property of the workload,
    # not a theorem).
    assert frontier["dfs"]["optimal"]
    assert frontier["best_first"]["optimal"]
    assert frontier["lds"]["optimal"]
    assert frontier["best_first"]["cost"] == frontier["dfs"]["cost"]
    assert frontier["lds"]["cost"] == frontier["dfs"]["cost"]
    assert frontier["best_first"]["nodes"] <= frontier["dfs"]["nodes"]
    # The DFS frontier row must mirror the default branching-order row
    # (same explorer configuration, same workload).
    assert frontier["dfs"]["nodes"] == (
        branching_order["adaptive_dynamic"]["nodes"]
    )
    # Bounded memory: the uncapped frontier must actually blow past
    # the cap and the budget (that is the regime being defended),
    # while both capped runs complete under the identical budget with
    # the high-water mark at the cap and an honest floor below the
    # feasible answer they return.
    uncapped = bounded_memory["uncapped_best_first"]
    assert not uncapped["optimal"]
    assert uncapped["nodes"] >= bounded_memory["node_budget"]
    assert uncapped["open_high_water"] > 10 * bounded_memory["max_open"]
    for mode in ("capped_best_first", "capped_hybrid"):
        capped = bounded_memory[mode]
        assert capped["nodes"] < bounded_memory["node_budget"]
        assert capped["open_high_water"] <= bounded_memory["max_open"]
        assert capped["evicted_subtrees"] > 0
        assert capped["cost"] is not None
        assert capped["proof_floor"] is not None
        assert capped["proof_floor"] <= capped["cost"] + 1e-6
        assert "memory-truncated" in capped["provenance"]
    # Fleet pruning may never change the proven-optimal best cost.
    assert incumbent_sharing["best_cost_shared"] == (
        incumbent_sharing["best_cost"]
    )
    assert incumbent_sharing["best_optimal_shared"]
    # Index shards must undercut the per-task pickling volume.
    assert (
        dispatch_volume["index_protocol_bytes_per_lineage"]
        < dispatch_volume["task_protocol_bytes_per_lineage"]
    )
    # The vectorized batch kernel must beat the scalar probe loop on
    # identical sibling batches (byte-identity is asserted inside
    # run_batch_kernel).  The full workload measures ~5.5-7.5x; the
    # quick CI workload keeps a noise margin.
    if HAS_NUMPY:
        assert batch_kernel["batch_probe_speedup"] is not None
        assert batch_kernel["batch_probe_speedup"] >= (
            3.0 if quick_mode() else 5.0
        )
        # And the probe-heavy frontier must score cheaper per node
        # end-to-end (measured ~1.8-2.9x full; noise margin for CI).
        assert batch_kernel["bnb_probe_cost_ratio"] is not None
        assert batch_kernel["bnb_probe_cost_ratio"] >= (
            1.1 if quick_mode() else 1.3
        )


# ----------------------------------------------------------------------
# Process-parallel jobs sweep (BENCH_explorer.json, "parallel" section)
# ----------------------------------------------------------------------
def jobs_sweep_space():
    """A knapsack-hard variant space for the jobs sweep.

    Same regime as :func:`throughput_problem` — zero processor cost
    and a tight capacity force every selection into a hardware-subset
    knapsack — but as a *space* of eight bound selections so the
    warm-start lineages have real, parallelizable work.
    """
    if quick_mode():
        system = generate_system(
            seed=3, n_variants=8, cluster_size=8, common_processes=8
        )
        capacity = 0.45
    else:
        system = generate_system(
            seed=3, n_variants=8, cluster_size=10, common_processes=10
        )
        capacity = 0.5
    architecture = ArchitectureTemplate(
        name="jobs-sweep-bench",
        max_processors=1,
        processor_cost=0.0,
        processor_capacity=capacity,
    )
    family = ProblemFamily(
        name="jobs_sweep",
        library=system.library,
        architecture=architecture,
    )
    return family, VariantSpace(system.vgraph)


def run_jobs_sweep(lineage_size: int = 2, jobs_levels=(1, 2, 4)):
    """Wall-clock the identical lineage workload at several jobs levels."""
    family, space = jobs_sweep_space()
    sweep = []
    reference_costs = None
    base_seconds = None
    for jobs in jobs_levels:
        start = time.perf_counter()
        outcome = explore_space(
            family, space, jobs=jobs, lineage_size=lineage_size
        )
        elapsed = time.perf_counter() - start
        costs = [result.cost for result in outcome.results]
        if reference_costs is None:
            reference_costs = costs
            base_seconds = elapsed
        # jobs changes wall-clock only — results must be identical
        assert costs == reference_costs
        sweep.append(
            {
                "jobs": jobs,
                "seconds": round(elapsed, 6),
                "selections": len(outcome),
                "selections_per_sec": round(len(outcome) / elapsed, 2),
                "total_nodes": outcome.total_nodes,
                "speedup_vs_jobs1": round(base_seconds / elapsed, 2),
                "parallel_efficiency": round(
                    base_seconds / elapsed / jobs, 2
                ),
            }
        )
    return family, space, sweep


def test_parallel_jobs_sweep_recorded(benchmark):
    lineage_size = 2
    family, space, sweep = benchmark.pedantic(
        lambda: run_jobs_sweep(lineage_size=lineage_size),
        rounds=1,
        iterations=1,
    )
    cpus = os.cpu_count() or 1
    if cpus == 1:
        # On a single-CPU container every jobs>1 level just measures
        # pool overhead; annotate so readers (and the regression gate)
        # never treat the efficiency column as a parallelism signal.
        for level in sweep:
            if level["jobs"] > 1:
                level["note"] = (
                    "cpus == 1: parallel_efficiency reflects pool "
                    "overhead only, not parallel scaling"
                )
    section = {
        "parallel_jobs_sweep": {
            "workload": {
                "family": family.name,
                "selections": space.count(),
                "lineage_size": lineage_size,
                "quick_mode": quick_mode(),
            },
            "cpus": cpus,
            # The gate only reads the efficiency column when this is
            # true (and the baseline was recorded on as many CPUs).
            "efficiency_meaningful": cpus > 1,
            "sweep": sweep,
        }
    }
    merge_json_artifact(
        "BENCH_explorer.json", section, also_repo_root=True
    )

    rows = [
        [str(level["jobs"]), str(level["seconds"]),
         str(level["selections_per_sec"]),
         str(level["speedup_vs_jobs1"]),
         str(level["parallel_efficiency"])]
        for level in sweep
    ]
    text = render_table(
        ["jobs", "seconds", "selections/s", "speedup", "efficiency"],
        rows,
        title=f"X3: parallel jobs sweep ({cpus} cpus)",
    )
    write_artifact("explorer_jobs_sweep.txt", text)
    print("\n" + text)

    by_jobs = {level["jobs"]: level for level in sweep}
    # The speedup target needs real cores to exist; a 1-2 core box (or
    # the reduced CI workload) records the sweep without asserting it.
    if cpus >= 4 and not quick_mode():
        assert by_jobs[4]["speedup_vs_jobs1"] >= 1.5
