"""X1 — scaling of the variant-aware advantage (§5 extension).

The paper's quantitative evidence is one two-variant example; this
bench sweeps the number of variants and the common/variant overlap on
generated systems and reports cost and design time per flow.  The
paper's qualitative claims that must hold:

* variant-aware cost <= superposition cost, with the gap growing as
  variants are added (hardware duplication grows linearly while the
  shared-processor solution does not);
* design-time saving grows with the number of variants (common units
  are considered once instead of n times);
* the mutual-exclusion credit is *the* mechanism: switching it off
  (ablation) collapses the cost advantage.
"""

import time

from repro.apps.generators import generate_system
from repro.report.series import Series, render_series
from repro.synth.architecture import ArchitectureTemplate
from repro.synth.explorer import BranchBoundExplorer
from repro.synth.mapping import SynthesisProblem
from repro.synth.methods import (
    ProblemFamily,
    explore_space,
    independent_flow,
    superposition_flow,
    variant_aware_flow,
    variant_units,
)
from repro.variants.variant_space import VariantSpace

from .conftest import write_artifact


def sweep_variants(n_variants_range=(2, 3, 4, 5), seed=11):
    explorer = BranchBoundExplorer()
    superposition_cost = Series("superposition")
    variant_cost = Series("with_variants")
    no_exclusion_cost = Series("no_exclusion (ablation)")
    independent_time = Series("independent time")
    variant_time = Series("variant time")
    for n_variants in n_variants_range:
        system = generate_system(
            seed=seed, n_variants=n_variants, common_fraction=0.5
        )
        independent = independent_flow(
            system.applications(), system.library, system.architecture,
            explorer,
        )
        superposed = superposition_flow(
            independent, system.library, system.architecture
        )
        variant = variant_aware_flow(
            system.vgraph, system.library, system.architecture, explorer
        )
        ablated = variant_aware_flow(
            system.vgraph,
            system.library,
            system.architecture,
            explorer,
            use_exclusion=False,
        )
        superposition_cost.add(n_variants, superposed.total_cost)
        variant_cost.add(n_variants, variant.total_cost)
        no_exclusion_cost.add(n_variants, ablated.total_cost)
        independent_time.add(n_variants, superposed.design_time)
        variant_time.add(n_variants, variant.design_time)
    return (
        [superposition_cost, variant_cost, no_exclusion_cost],
        [independent_time, variant_time],
    )


def test_scaling_with_variant_count(benchmark):
    cost_series, time_series = benchmark.pedantic(
        sweep_variants, rounds=1, iterations=1
    )
    text = render_series(
        cost_series, x_label="variants", title="X1: total cost vs. variants"
    )
    text += "\n\n" + render_series(
        time_series,
        x_label="variants",
        title="X1: design time vs. variants",
    )
    write_artifact("scaling_variants.txt", text)
    print("\n" + text)

    superposed, variant, ablated = cost_series
    for (_, sup), (_, var) in zip(superposed.points, variant.points):
        assert var <= sup + 1e-9
    # gap grows with the number of variants
    gaps = [sup - var for (_, sup), (_, var) in
            zip(superposed.points, variant.points)]
    assert gaps[-1] >= gaps[0]
    # the exclusion credit is the mechanism
    for (_, var), (_, abl) in zip(variant.points, ablated.points):
        assert var <= abl + 1e-9
    # design-time saving grows
    independent_time, variant_time = time_series
    savings = [
        ind - var
        for (_, ind), (_, var) in zip(
            independent_time.points, variant_time.points
        )
    ]
    assert savings == sorted(savings)


def sweep_overlap(fractions=(0.2, 0.4, 0.6, 0.8), seed=23):
    explorer = BranchBoundExplorer()
    saving = Series("design time saving")
    for fraction in fractions:
        system = generate_system(
            seed=seed, n_variants=3, common_fraction=fraction,
            common_processes=3,
        )
        independent = independent_flow(
            system.applications(), system.library, system.architecture,
            explorer,
        )
        total_independent = sum(
            r.outcome.design_time for r in independent.values()
        )
        variant = variant_aware_flow(
            system.vgraph, system.library, system.architecture, explorer
        )
        saving.add(fraction, total_independent - variant.design_time)
    return saving


def test_design_time_saving_vs_overlap(benchmark):
    saving = benchmark.pedantic(sweep_overlap, rounds=1, iterations=1)
    text = render_series(
        [saving],
        x_label="common fraction",
        title="X1: design-time saving vs. overlap",
    )
    write_artifact("scaling_overlap.txt", text)
    print("\n" + text)
    # More overlap -> more shared effort -> larger saving.
    values = list(saving.ys)
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def _constrained_problem(n_variants, cluster_size=4, capacity=0.5):
    """A hardware-selection workload that forces a real search."""
    system = generate_system(
        seed=17, n_variants=n_variants, cluster_size=cluster_size,
        common_processes=4,
    )
    units, origins = variant_units(system.vgraph)
    architecture = ArchitectureTemplate(
        name="scaling-tight",
        max_processors=1,
        processor_cost=0.0,
        processor_capacity=capacity,
    )
    return SynthesisProblem(
        name=f"scaling-v{n_variants}",
        units=units,
        library=system.library,
        architecture=architecture,
        origins=origins,
    )


def sweep_incremental_throughput(
    n_variants_range=(2, 3, 4, 5), node_budget=8000
):
    """Evaluations/sec and nodes/sec, incremental vs. reference path."""
    inc_nodes = Series("incremental nodes/s")
    ref_nodes = Series("reference nodes/s")
    inc_evals = Series("incremental evals/s")
    ref_evals = Series("reference evals/s")
    costs = []
    for n_variants in n_variants_range:
        problem = _constrained_problem(n_variants)
        pair = {}
        for label, explorer in (
            ("inc", BranchBoundExplorer(node_budget=node_budget)),
            (
                "ref",
                BranchBoundExplorer(
                    node_budget=node_budget, incremental=False
                ),
            ),
        ):
            start = time.perf_counter()
            result = explorer.explore(problem)
            elapsed = time.perf_counter() - start
            pair[label] = result
            nodes_rate = result.nodes_explored / elapsed
            evals_rate = result.evaluations / elapsed
            if label == "inc":
                inc_nodes.add(n_variants, round(nodes_rate))
                inc_evals.add(n_variants, round(evals_rate))
            else:
                ref_nodes.add(n_variants, round(nodes_rate))
                ref_evals.add(n_variants, round(evals_rate))
        costs.append((pair["inc"], pair["ref"]))
    return [inc_nodes, ref_nodes, inc_evals, ref_evals], costs


def _constrained_space(n_variants=8, cluster_size=6, capacity=0.45):
    """A hardware-selection space where each selection forces a search."""
    system = generate_system(
        seed=17, n_variants=n_variants, cluster_size=cluster_size,
        common_processes=6,
    )
    architecture = ArchitectureTemplate(
        name="scaling-parallel",
        max_processors=1,
        processor_cost=0.0,
        processor_capacity=capacity,
    )
    family = ProblemFamily(
        name=f"scaling-space-v{n_variants}",
        library=system.library,
        architecture=architecture,
    )
    return family, VariantSpace(system.vgraph)


def sweep_parallel_jobs(jobs_levels=(1, 2, 4), lineage_size=2):
    """Selections/sec of the identical lineage workload per jobs level."""
    family, space = _constrained_space()
    throughput = Series("selections/s")
    costs_per_level = []
    for jobs in jobs_levels:
        start = time.perf_counter()
        outcome = explore_space(
            family, space, jobs=jobs, lineage_size=lineage_size
        )
        elapsed = time.perf_counter() - start
        throughput.add(jobs, round(len(outcome) / elapsed, 2))
        costs_per_level.append([r.cost for r in outcome.results])
    return throughput, costs_per_level


def test_parallel_jobs_scaling(benchmark):
    throughput, costs_per_level = benchmark.pedantic(
        sweep_parallel_jobs, rounds=1, iterations=1
    )
    text = render_series(
        [throughput],
        x_label="jobs",
        title="X1: batch exploration throughput vs worker processes",
    )
    write_artifact("scaling_parallel.txt", text)
    print("\n" + text)
    # Correctness invariant of the jobs knob: identical results at
    # every worker count (speed is asserted in bench_explorer, where
    # the sweep is recorded with the machine's cpu count).
    reference = costs_per_level[0]
    for costs in costs_per_level[1:]:
        assert costs == reference


def sweep_bound_tightness(
    n_variants_range=(2, 3, 4, 5), completion_budget=500_000
):
    """Nodes to prove optimality, capacity-aware vs basic bound."""
    capacity_nodes = Series("capacity-aware bound nodes")
    basic_nodes = Series("basic bound nodes")
    pairs = []
    for n_variants in n_variants_range:
        problem = _constrained_problem(n_variants)
        capacity = BranchBoundExplorer(
            node_budget=completion_budget
        ).explore(problem)
        basic = BranchBoundExplorer(
            node_budget=completion_budget, capacity_bound=False
        ).explore(problem)
        capacity_nodes.add(n_variants, capacity.nodes_explored)
        basic_nodes.add(n_variants, basic.nodes_explored)
        pairs.append((capacity, basic))
    return [capacity_nodes, basic_nodes], pairs


def test_capacity_bound_shrinks_knapsack_trees(benchmark):
    series, pairs = benchmark.pedantic(
        sweep_bound_tightness, rounds=1, iterations=1
    )
    text = render_series(
        series,
        x_label="variants",
        title="X1: BnB nodes to optimality, capacity-aware vs basic bound",
    )
    write_artifact("scaling_bound_tightness.txt", text)
    print("\n" + text)
    for capacity, basic in pairs:
        # Same optimum either way: the tighter bound stays admissible.
        assert capacity.optimal and basic.optimal
        assert capacity.cost == basic.cost
        # The whole point: the capacity-aware bound prunes the
        # knapsack-hard tree at least 2x earlier on every space.
        assert capacity.nodes_explored * 2 <= basic.nodes_explored


def test_incremental_vs_reference_throughput(benchmark):
    series, costs = benchmark.pedantic(
        sweep_incremental_throughput, rounds=1, iterations=1
    )
    text = render_series(
        series[:2],
        x_label="variants",
        title="X1: search-node throughput, incremental vs reference",
    )
    text += "\n\n" + render_series(
        series[2:],
        x_label="variants",
        title="X1: evaluation throughput, incremental vs reference",
    )
    write_artifact("scaling_incremental.txt", text)
    print("\n" + text)
    # Correctness: whenever both paths complete the search, they agree.
    for incremental, reference in costs:
        if incremental.optimal and reference.optimal:
            assert incremental.cost == reference.cost
        # A provably optimal incremental result is never beaten by the
        # (possibly truncated) reference search.
        if incremental.optimal and reference.feasible:
            assert incremental.cost <= reference.cost + 1e-9
