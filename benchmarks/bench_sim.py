"""Simulator throughput — engine performance on the paper's workloads.

Not a paper artifact, but the harness that regenerates the figures must
itself stay fast enough for interactive use; this bench tracks the
event-processing rate on three representative loads: a long determinate
pipeline, the Figure 4 protocol, and a reconfiguration-heavy stream.
"""

from repro.apps import video
from repro.sim.engine import simulate
from repro.spi.builder import GraphBuilder
from repro.spi.tokens import make_tokens


def deep_pipeline(stages: int, tokens: int):
    builder = GraphBuilder("deep")
    builder.queue("c0", initial_tokens=make_tokens(tokens))
    for index in range(stages):
        builder.queue(f"c{index + 1}")
    for index in range(stages):
        builder.simple(
            f"s{index}",
            latency=1.0,
            consumes={f"c{index}": 1},
            produces={f"c{index + 1}": 1},
        )
    return builder.build(validate=False)


def test_pipeline_throughput(benchmark):
    graph = deep_pipeline(stages=20, tokens=50)
    trace = benchmark(lambda: simulate(deep_pipeline(20, 50)))
    assert trace.firing_count() == 20 * 50


def test_video_protocol_throughput(benchmark):
    trace = benchmark.pedantic(
        lambda: video.run_video(n_frames=60)[0], rounds=3, iterations=1
    )
    assert trace.firing_count("VIn") == 60


def test_reconfiguration_heavy_stream(benchmark):
    """Requests every ~6 frames keep both stages flapping."""

    def run():
        requests = [("v1b", "v2b"), ("v1a", "v2a")] * 3
        trace, _ = video.run_video(
            n_frames=80,
            requests=requests,
            request_start=400.0,
            request_gap=400.0,
        )
        return trace

    trace = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(trace.reconfigurations) == 12
    # the protocol still guarantees validity under pressure
    report = video.video_report(trace)
    assert report["invalid_frames_displayed"] == 0
