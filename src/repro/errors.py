"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming out of the library with a single
``except`` clause while still being able to discriminate the failure
domain (model construction, activation semantics, simulation, variant
handling, synthesis).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """An SPI model element or graph is structurally invalid."""


class ValidationError(ModelError):
    """A whole-model validation pass found one or more violations.

    The individual findings are kept in :attr:`issues` so tooling can
    report all of them at once instead of failing on the first.
    """

    def __init__(self, issues):
        self.issues = list(issues)
        joined = "; ".join(str(issue) for issue in self.issues)
        super().__init__(f"model validation failed: {joined}")


class ActivationError(ReproError):
    """An activation function is ill-formed or evaluated ambiguously."""


class VariantError(ReproError):
    """A cluster, interface or selection construct is invalid."""


class ExtractionError(VariantError):
    """Parameter extraction from a cluster could not be performed."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SchedulingError(ReproError):
    """A schedule could not be constructed for the given binding."""


class SynthesisError(ReproError):
    """A synthesis flow failed (no feasible implementation, bad library)."""


class TimingViolation(ReproError):
    """A timing constraint was provably violated."""
