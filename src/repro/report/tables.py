"""Plain-text table rendering for the bench harness.

The benches print the same rows the paper's tables report; this module
keeps the formatting in one place (fixed-width ASCII, right-aligned
numbers) so outputs diff cleanly across runs.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    cells: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(
            value.ljust(widths[index]) for index, value in enumerate(row)
        )

    rule = "-+-".join("-" * width for width in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(rule)
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_dict_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows, inferring columns from the first row."""
    if not rows:
        return title or "(empty table)"
    cols = list(columns) if columns else list(rows[0].keys())
    body = [[row.get(col, "") for col in cols] for row in rows]
    return render_table(cols, body, title=title)
