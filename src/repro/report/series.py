"""Named (x, y) series for the scaling and ablation benches.

A :class:`Series` is the figure-shaped counterpart of the table rows:
benches that sweep a parameter report one series per flow, and the
harness renders them side by side for eyeball comparison against the
paper's qualitative claims (who wins, where the gap grows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .tables import render_table


@dataclass
class Series:
    """One named sequence of (x, y) points."""

    name: str
    points: List[Tuple[object, float]] = field(default_factory=list)

    def add(self, x: object, y: float) -> "Series":
        """Append one point."""
        self.points.append((x, y))
        return self

    @property
    def xs(self) -> Tuple[object, ...]:
        return tuple(x for x, _ in self.points)

    @property
    def ys(self) -> Tuple[float, ...]:
        return tuple(y for _, y in self.points)


def render_series(
    series: Sequence[Series], x_label: str = "x", title: str = ""
) -> str:
    """Render several series over a shared x axis as one table."""
    if not series:
        return title or "(no series)"
    xs: List[object] = []
    for s in series:
        for x in s.xs:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + [s.name for s in series]
    rows = []
    for x in xs:
        row: List[object] = [x]
        for s in series:
            lookup = dict(s.points)
            row.append(lookup.get(x, ""))
        rows.append(row)
    return render_table(headers, rows, title=title or None)
