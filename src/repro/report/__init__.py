"""Reporting helpers shared by benches, examples and tests."""

from .series import Series, render_series
from .tables import render_dict_rows, render_table

__all__ = ["Series", "render_dict_rows", "render_series", "render_table"]
