"""Scenario plumbing shared by every zoo generator family.

A :class:`ZooScenario` bundles what the rest of the stack needs to
treat a generated workload exactly like the hand-made paper examples:
a :class:`~repro.synth.methods.ProblemFamily` (library + architecture
+ exclusion semantics) and a
:class:`~repro.variants.variant_space.VariantSpace` over a generated
:class:`~repro.variants.vgraph.VariantGraph`.  Two problem views hang
off it:

* :meth:`ZooScenario.selection_problems` — one
  :class:`~repro.synth.mapping.SynthesisProblem` per consistent
  selection (the ``explore_space`` shape; exclusion is inert here
  because a bound application carries one cluster per interface);
* :meth:`ZooScenario.joint_problem` — the variant-aware joint problem
  over the whole graph (the paper's flow), where the exclusion and
  memory structure actually bites.

Every generator draws its numbers from a :class:`random.Random` seeded
at the call site and quantizes them onto the ``1/64`` binary grid via
:func:`grid64` — on that grid the integer cost kernel is bit-exact
against the reference evaluator (see PR 3), so the differential fuzz
harness can demand *exact* result equality instead of tolerances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from ..errors import SynthesisError
from ..spi.builder import GraphBuilder
from ..spi.virtuality import sink, source
from ..synth.mapping import SynthesisProblem
from ..synth.methods import ProblemFamily, variant_units
from ..variants.cluster import Cluster
from ..variants.selection import ClusterSelectionFunction
from ..variants.variant_space import VariantSpace

#: Scenario sizes, smallest first.  ``small`` keeps every selection
#: (and the joint problem) enumerable by the exhaustive oracle;
#: ``medium`` is bound-prunable but not oracle-tractable (the fuzz
#: harness switches to cost-only cross-agreement there); ``bench`` is
#: shaped to demonstrate ordering/bound node-count wins.
SIZES = ("small", "medium", "bench")


def check_size(size: str) -> str:
    """Validate a scenario size name."""
    if size not in SIZES:
        raise SynthesisError(
            f"unknown zoo size {size!r}; expected one of {SIZES}"
        )
    return size


def grid64(rng: random.Random, lo: int, hi: int) -> float:
    """A value on the exact binary grid: ``randint(lo, hi) / 64``.

    Everything the zoo feeds the cost model sits on this grid (or is
    an integer), so the fixed-point kernel reproduces the reference
    evaluator bit for bit and differential checks can use ``==``.
    """
    return rng.randint(lo, hi) / 64


@dataclass
class ZooScenario:
    """One generated workload: a problem family over a variant space."""

    family: str
    seed: int
    size: str
    problem_family: ProblemFamily
    space: VariantSpace
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Canonical scenario id: ``<family>-s<seed>-<size>``."""
        return f"{self.family}-s{self.seed}-{self.size}"

    # ------------------------------------------------------------------
    def selection_problems(
        self,
    ) -> Iterator[Tuple[Dict[str, str], SynthesisProblem]]:
        """Yield ``(selection, problem)`` per consistent selection."""
        for selection, graph in self.space.iter_applications(
            prefix=self.name
        ):
            yield selection, self.problem_family.problem_for(graph)

    def joint_problem(self) -> SynthesisProblem:
        """The variant-aware joint problem over the whole graph."""
        units, origins = variant_units(self.space.vgraph)
        return self.problem_family.problem_for_units(
            f"{self.name}.joint", units, origins=tuple(sorted(origins.items()))
        )

    def problems(
        self,
    ) -> Iterator[Tuple[str, SynthesisProblem]]:
        """Every problem view of the scenario, joint first.

        The label is what corpus cases record: ``"joint"`` or
        ``"sel<N>"`` with ``N`` the selection's enumeration index.
        """
        yield "joint", self.joint_problem()
        for index, (_selection, problem) in enumerate(
            self.selection_problems()
        ):
            yield f"sel{index}", problem

    def problem_by_label(self, label: str) -> SynthesisProblem:
        """Resolve one :meth:`problems` label (corpus replay path)."""
        if label == "joint":
            return self.joint_problem()
        if label.startswith("sel"):
            index = int(label[3:])
            selection = self.space.selection_at(index)
            graph = self.space.vgraph.bind(
                selection, name=f"{self.name}.app{index + 1}"
            )
            return self.problem_family.problem_for(graph)
        raise SynthesisError(f"unknown zoo problem label {label!r}")

    def stats(self) -> Dict[str, object]:
        """Size card of the scenario (logs, bench payloads)."""
        joint = self.joint_problem()
        return {
            "scenario": self.name,
            "selections": self.space.count(),
            "joint_units": len(joint.units),
            "interfaces": len(self.space.vgraph.interfaces),
            "params": dict(self.params),
        }


# ----------------------------------------------------------------------
# Shared construction helpers
# ----------------------------------------------------------------------
def linear_cluster(name: str, size: int) -> Cluster:
    """A linear pipeline cluster with ``size`` unit-rate processes.

    Latencies are structural placeholders (the zoo exercises the
    synthesis layer, not the simulator), so they stay constant and the
    scenario's randomness lives entirely in the component library.
    """
    if size < 1:
        raise SynthesisError("cluster size must be >= 1")
    builder = GraphBuilder(name)
    builder.queue("i")
    builder.queue("o")
    for stage in range(size - 1):
        builder.queue(f"x{stage}")
    for stage in range(size):
        inp = "i" if stage == 0 else f"x{stage - 1}"
        out = "o" if stage == size - 1 else f"x{stage}"
        builder.simple(
            f"s{stage}", latency=1.0, consumes={inp: 1}, produces={out: 1}
        )
    return Cluster(
        name=name,
        inputs=("i",),
        outputs=("o",),
        graph=builder.build(validate=False),
    )


def common_chain(
    name: str,
    n_processes: int,
    n_stages: int = 1,
) -> GraphBuilder:
    """A source→K…→S0 chain with stage channels ``S0 … S<n_stages>``.

    Returns the builder (not the built graph) so callers can embed
    interfaces on the stage channels: interface ``i`` reads ``S<i>``
    and writes ``S<i+1>`` (the reader/writer slots are left free for
    exactly that), and a sink drains the last stage channel.  The
    ``n_processes`` common processes form a chain between the source
    and ``S0`` — the variant-independent part of the system.
    """
    if n_stages < 1:
        raise SynthesisError("common chain needs >= 1 stage")
    builder = GraphBuilder(name)
    for index in range(n_stages + 1):
        builder.queue(f"S{index}")
    builder.process(sink("Snk", f"S{n_stages}"))
    if n_processes:
        builder.queue("Cin")
        builder.process(source("Src", "Cin", max_firings=4))
        for index in range(n_processes):
            inp = "Cin" if index == 0 else f"Ck{index - 1}"
            out = (
                "S0" if index == n_processes - 1 else f"Ck{index}"
            )
            if out != "S0":
                builder.queue(out)
            builder.simple(
                f"K{index}",
                latency=1.0,
                consumes={inp: 1},
                produces={out: 1},
            )
    else:
        builder.process(source("Src", "S0", max_firings=4))
    return builder


def runtime_selection(
    clusters, channel: str = "S0"
) -> ClusterSelectionFunction:
    """A tag-driven selection function over ``clusters``.

    Run-time variant sets require a cluster selection function (Def. 3);
    for synthesis workloads the rule content is immaterial — only the
    exclusion structure matters — so one ``HasTag`` rule per cluster,
    observing the interface's bound input ``channel``, is enough.
    """
    return ClusterSelectionFunction.by_tag(
        channel, {f"USE_{name}": name for name in sorted(clusters)}
    )


def component_for_cluster(
    library,
    interface: str,
    cluster: Cluster,
    rng: random.Random,
    util_lo: int,
    util_hi: int,
    hw_lo: int,
    hw_hi: int,
    sw_memory_hi: int = 0,
    hw_only_chance: float = 0.0,
    sw_only_chance: float = 0.0,
) -> None:
    """Register grid-valued library entries for a cluster's processes.

    Implementation options are drawn per process: both targets by
    default, with optional seeded chances of hardware-only or
    software-only units (never both chances firing for one unit — a
    unit always keeps at least one option).
    """
    for process_name in cluster.process_names():
        roll = rng.random()
        hw_only = roll < hw_only_chance
        sw_only = not hw_only and roll < hw_only_chance + sw_only_chance
        library.component(
            f"{interface}.{cluster.name}.{process_name}",
            sw_utilization=(
                None if hw_only else grid64(rng, util_lo, util_hi)
            ),
            hw_cost=None if sw_only else rng.randint(hw_lo, hw_hi),
            sw_memory=(
                grid64(rng, 0, sw_memory_hi) if sw_memory_hi else 0.0
            ),
        )
