"""Streaming/video pipeline workloads, built on the apps layer.

Wraps :func:`repro.apps.video.video_synthesis_system` (the Figure-4
chain as a synthesis workload: rate-derived utilizations, valves as
common units, one variant interface per chain stage) into the zoo's
scenario contract.  The family's distinguishing stress is *rate
coupling*: every stage's utilization comes from the same frame
period, so software feasibility is a chain-wide budget rather than a
per-unit lottery — the shape real streaming pipelines have.
"""

from __future__ import annotations

from ..apps.video import video_synthesis_system
from ..synth.methods import ProblemFamily
from ..variants.variant_space import VariantSpace
from .base import ZooScenario, check_size

#: (n_stages, variants_per_stage, max_processors) per size.
_SHAPES = {
    "small": (2, 2, 1),
    "medium": (3, 2, 2),
    "bench": (4, 3, 1),
}


def streaming_pipeline(seed: int, size: str = "small") -> ZooScenario:
    """A video-style chain of variant stages under one frame rate."""
    check_size(size)
    n_stages, variants_per_stage, max_processors = _SHAPES[size]
    system = video_synthesis_system(
        n_stages=n_stages,
        variants_per_stage=variants_per_stage,
        seed=seed,
        max_processors=max_processors,
    )
    family = ProblemFamily(
        name=f"zoo-streaming_pipeline-s{seed}",
        library=system.library,
        architecture=system.architecture,
    )
    return ZooScenario(
        family="streaming_pipeline",
        seed=seed,
        size=size,
        problem_family=family,
        space=VariantSpace(system.vgraph),
        params={
            "n_stages": n_stages,
            "variants_per_stage": variants_per_stage,
            "max_processors": max_processors,
        },
    )
