"""Deep variant hierarchies: chained interfaces with related selections.

The paper's §1 motivates *related* variant sets ("the variant
selection for these sets may be related or independent"); this family
stresses depth: a processing chain of ``depth`` variant interfaces,
each with ``width`` mutually exclusive clusters, where the first two
stages are tied by a :class:`~repro.variants.variant_space.SelectionGroup`
(aligned choices, the multi-standard-TV shape) and the remaining
stages vary freely.  The joint problem therefore carries
``depth × width`` clusters of exclusion structure, and the space
enumerates ``width^(depth-1)`` consistent selections.
"""

from __future__ import annotations

import random

from ..synth.architecture import ArchitectureTemplate
from ..synth.library import ComponentLibrary
from ..synth.methods import ProblemFamily
from ..variants.interface import Interface
from ..variants.types import VariantKind
from ..variants.variant_space import SelectionGroup, VariantSpace
from ..variants.vgraph import VariantGraph
from .base import (
    ZooScenario,
    check_size,
    common_chain,
    component_for_cluster,
    grid64,
    linear_cluster,
)

#: (depth, width, cluster_size, common_processes) per size.  The
#: bench shape is sized so every matrix configuration proves
#: optimality in seconds on one core (depth 6 × cluster 3 already
#: pushes best-first past 3 minutes — too slow for a CI bench row).
_SHAPES = {
    "small": (3, 2, 1, 2),
    "medium": (4, 2, 2, 3),
    "bench": (5, 2, 2, 3),
}


def deep_chain(seed: int, size: str = "small") -> ZooScenario:
    """A depth-``D`` chain of width-``k`` interfaces, stages 0/1 tied."""
    check_size(size)
    depth, width, cluster_size, common_processes = _SHAPES[size]
    rng = random.Random(seed)

    vgraph = VariantGraph(f"deep{seed}")
    builder = common_chain("common", common_processes, n_stages=depth)
    vgraph.base = builder.build(validate=False)

    library = ComponentLibrary()
    for index in range(common_processes):
        library.component(
            f"K{index}",
            sw_utilization=grid64(rng, 2, 10),
            hw_cost=rng.randint(4, 12),
        )

    for stage in range(depth):
        clusters = {
            f"v{variant}": linear_cluster(f"v{variant}", cluster_size)
            for variant in range(width)
        }
        interface = Interface(
            name=f"t{stage}",
            inputs=("i",),
            outputs=("o",),
            clusters=clusters,
            kind=VariantKind.PRODUCTION,
        )
        vgraph.add_interface(
            interface, {"i": f"S{stage}", "o": f"S{stage + 1}"}
        )
        for cluster in clusters.values():
            component_for_cluster(
                library,
                f"t{stage}",
                cluster,
                rng,
                util_lo=2,
                util_hi=14,
                hw_lo=3,
                hw_hi=15,
                hw_only_chance=0.15,
            )

    groups = ()
    if depth >= 2:
        # Stages 0 and 1 select together, aligned by variant index —
        # the "same standard at both ends" relation.
        groups = (
            SelectionGroup(
                name="aligned",
                choices=tuple(
                    {"t0": f"v{v}", "t1": f"v{v}"} for v in range(width)
                ),
            ),
        )
    space = VariantSpace(vgraph, groups)

    architecture = ArchitectureTemplate(
        name="deep-core",
        max_processors=1,
        processor_cost=rng.randint(3, 9),
        processor_capacity=1.0,
    )
    family = ProblemFamily(
        name=f"zoo-deep_chain-s{seed}",
        library=library,
        architecture=architecture,
    )
    return ZooScenario(
        family="deep_chain",
        seed=seed,
        size=size,
        problem_family=family,
        space=space,
        params={
            "depth": depth,
            "width": width,
            "cluster_size": cluster_size,
            "common_processes": common_processes,
        },
    )
