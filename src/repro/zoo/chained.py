"""Randomly chained systems in the Csynth style.

Csynth's synthesizer grows a program by repeatedly drawing functions
from a FunctionDB and chaining them (SNIPPETS.md, snippet 2, with
``MAX_CHAIN_NUM`` bounding the chain).  The zoo analogue draws from a
small template pool of *segment* kinds and splices a seeded random
chain of them onto one stream:

* ``common`` — a variant-independent processing block;
* ``interface`` — a variant set with 2–3 clusters;
* ``tied`` — two consecutive variant sets whose selections are
  related through a :class:`SelectionGroup` (aligned choices).

Every draw (segment kind, cluster counts, library numbers) comes from
one seeded :class:`random.Random`, so a scenario is fully replayable
from ``(seed, size)`` — the property the fuzz corpus leans on.
"""

from __future__ import annotations

import random

from ..synth.architecture import ArchitectureTemplate
from ..synth.library import ComponentLibrary
from ..synth.methods import ProblemFamily
from ..variants.interface import Interface
from ..variants.types import VariantKind
from ..variants.variant_space import SelectionGroup, VariantSpace
from ..variants.vgraph import VariantGraph
from .base import (
    ZooScenario,
    check_size,
    common_chain,
    component_for_cluster,
    grid64,
    linear_cluster,
)

#: (max_chain, max_selections, max_joint_units) per size — the chain
#: grows until a segment would blow one of the budgets.
_BUDGETS = {
    "small": (4, 6, 7),
    "medium": (8, 16, 18),
    "bench": (12, 32, 40),
}

_SEGMENT_KINDS = ("common", "interface", "interface", "tied")


def chained(seed: int, size: str = "small") -> ZooScenario:
    """A seeded random chain of segment templates on one stream."""
    check_size(size)
    max_chain, max_selections, max_units = _BUDGETS[size]
    rng = random.Random(seed)

    # Draw the chain plan first (a pure function of the seed), then
    # build the graph: segment draws must not interleave with library
    # draws or the plan would shift whenever a template changes.
    plan = []
    selections = 1
    units = 2  # the common chain built below
    for _ in range(max_chain):
        kind = rng.choice(_SEGMENT_KINDS)
        if kind == "common":
            cost = 1
            growth = 1
        elif kind == "interface":
            width = rng.randint(2, 3)
            cost = width
            growth = width
        else:
            width = rng.randint(2, 3)
            cost = width  # tied: one joint choice axis
            growth = 2 * width
        if selections * cost > max_selections or units + growth > max_units:
            continue
        selections *= cost
        units += growth
        plan.append(
            (kind, width if kind != "common" else 1)
        )
    if not any(kind != "common" for kind, _ in plan):
        # Guarantee at least one variant set, whatever the draws did.
        plan.append(("interface", 2))

    n_interfaces = sum(
        (2 if kind == "tied" else 1)
        for kind, _ in plan
        if kind != "common"
    )
    vgraph = VariantGraph(f"chain{seed}")
    builder = common_chain("common", 2, n_stages=max(1, n_interfaces))
    # Common segments ride as extra library-only units on the base
    # chain processes; structural commons stay two (K0, K1).
    vgraph.base = builder.build(validate=False)

    library = ComponentLibrary()
    for index in range(2):
        library.component(
            f"K{index}",
            sw_utilization=grid64(rng, 2, 8),
            hw_cost=rng.randint(4, 12),
        )

    groups = []
    stage = 0
    iface_index = 0

    def add_interface(width: int) -> str:
        nonlocal stage, iface_index
        name = f"t{iface_index}"
        clusters = {
            f"v{v}": linear_cluster(f"v{v}", 1) for v in range(width)
        }
        vgraph.add_interface(
            Interface(
                name=name,
                inputs=("i",),
                outputs=("o",),
                clusters=clusters,
                kind=VariantKind.PRODUCTION,
            ),
            {"i": f"S{stage}", "o": f"S{stage + 1}"},
        )
        for cluster in clusters.values():
            component_for_cluster(
                library,
                name,
                cluster,
                rng,
                util_lo=2,
                util_hi=16,
                hw_lo=3,
                hw_hi=14,
                hw_only_chance=0.1,
                sw_only_chance=0.1,
            )
        stage += 1
        iface_index += 1
        return name

    for kind, width in plan:
        if kind == "common":
            # An extra common unit: pure library weight, no structure.
            index = len(library.names())
            library.component(
                f"X{index}",
                sw_utilization=grid64(rng, 1, 6),
                hw_cost=rng.randint(3, 10),
            )
        elif kind == "interface":
            add_interface(width)
        else:
            first = add_interface(width)
            second = add_interface(width)
            groups.append(
                SelectionGroup(
                    name=f"g{first}",
                    choices=tuple(
                        {first: f"v{v}", second: f"v{v}"}
                        for v in range(width)
                    ),
                )
            )

    space = VariantSpace(vgraph, tuple(groups))
    architecture = ArchitectureTemplate(
        name="chain-core",
        max_processors=1,
        processor_cost=rng.randint(2, 8),
        processor_capacity=0.75,
    )
    family = ProblemFamily(
        name=f"zoo-chained-s{seed}",
        library=library,
        architecture=architecture,
    )
    return ZooScenario(
        family="chained",
        seed=seed,
        size=size,
        problem_family=family,
        space=space,
        params={
            "plan": [list(entry) for entry in plan],
            "interfaces": n_interfaces,
        },
    )
