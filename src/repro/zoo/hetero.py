"""Heterogeneous multi-processor workloads with a real memory axis.

The knapsack-hard bench family lives on a single processor with
utilization as the only shared resource.  This family stresses the
other half of the architecture envelope: several allocatable
processors (symmetry-broken by the explorers), a binding
``memory_capacity``, and a *heterogeneous* unit population —
controller-ish units (low utilization, fat memory footprint),
DSP-ish units (high utilization, slim memory), and accelerator units
that only exist in hardware.  Processor allocation, packing across
cores, and the two-resource feasibility frontier all engage at once.
"""

from __future__ import annotations

import random

from ..synth.architecture import ArchitectureTemplate
from ..synth.library import ComponentLibrary
from ..synth.methods import ProblemFamily
from ..variants.interface import Interface
from ..variants.types import VariantKind
from ..variants.variant_space import VariantSpace
from ..variants.vgraph import VariantGraph
from .base import (
    ZooScenario,
    check_size,
    common_chain,
    grid64,
    linear_cluster,
    runtime_selection,
)

#: (processors, variants, cluster_size, common_processes) per size.
_SHAPES = {
    "small": (2, 2, 1, 2),
    "medium": (3, 3, 2, 3),
    "bench": (2, 4, 4, 5),
}


def _profiled_entry(
    library: ComponentLibrary, name: str, rng: random.Random
) -> None:
    """One unit drawn from the heterogeneous profile population."""
    profile = rng.choice(("controller", "dsp", "accelerator"))
    if profile == "controller":
        # Cheap cycles, fat code: memory is what binds.
        library.component(
            name,
            sw_utilization=grid64(rng, 1, 6),
            sw_memory=grid64(rng, 16, 40),
            hw_cost=rng.randint(8, 20),
        )
    elif profile == "dsp":
        # Hot loops, slim code: utilization is what binds.
        library.component(
            name,
            sw_utilization=grid64(rng, 16, 44),
            sw_memory=grid64(rng, 1, 6),
            hw_cost=rng.randint(6, 16),
        )
    else:
        # Fixed-function block: hardware is the only home.
        library.component(name, hw_cost=rng.randint(2, 10))


def hetero_multiproc(seed: int, size: str = "small") -> ZooScenario:
    """Multi-core + memory-capacity workload over one variant set."""
    check_size(size)
    processors, variants, cluster_size, common_processes = _SHAPES[size]
    rng = random.Random(seed)

    vgraph = VariantGraph(f"hetero{seed}")
    builder = common_chain("common", common_processes, n_stages=1)
    vgraph.base = builder.build(validate=False)

    library = ComponentLibrary()
    for index in range(common_processes):
        _profiled_entry(library, f"K{index}", rng)

    clusters = {
        f"v{variant}": linear_cluster(f"v{variant}", cluster_size)
        for variant in range(variants)
    }
    vgraph.add_interface(
        Interface(
            name="t0",
            inputs=("i",),
            outputs=("o",),
            clusters=clusters,
            selection=runtime_selection(clusters),
            kind=VariantKind.RUNTIME,
        ),
        {"i": "S0", "o": "S1"},
    )
    for cluster in clusters.values():
        for process_name in cluster.process_names():
            _profiled_entry(
                library, f"t0.{cluster.name}.{process_name}", rng
            )

    architecture = ArchitectureTemplate(
        name="hetero-cores",
        max_processors=processors,
        processor_cost=rng.randint(4, 10),
        processor_capacity=0.75,
        memory_capacity=0.75,
    )
    family = ProblemFamily(
        name=f"zoo-hetero_multiproc-s{seed}",
        library=library,
        architecture=architecture,
    )
    return ZooScenario(
        family="hetero_multiproc",
        seed=seed,
        size=size,
        problem_family=family,
        space=VariantSpace(vgraph),
        params={
            "processors": processors,
            "variants": variants,
            "cluster_size": cluster_size,
            "common_processes": common_processes,
        },
    )
