"""Scenario zoo: seeded generator families for differential testing.

Every family is a function ``(seed, size) -> ZooScenario`` where
``size`` is one of :data:`repro.zoo.base.SIZES` (``small`` instances
are oracle-checkable by exhaustive enumeration, ``medium`` stretches
the explorers, ``bench`` feeds the benchmark matrix).  Scenarios are
pure functions of ``(family, seed, size)`` — regenerating with the
same arguments reproduces the identical problem, which is what lets
the fuzz corpus store only coordinates instead of whole systems.

All numeric workload values live on the 1/64 binary grid with integer
hardware costs, so the integer fixed-point kernel is bit-exact against
the reference evaluator and differential checks can use ``==``.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import SIZES, ZooScenario, check_size
from .chained import chained
from .hetero import hetero_multiproc
from .hierarchy import deep_chain
from .pathological import exclusion_pathology, memory_ladder
from .streaming import streaming_pipeline

#: Family name -> generator.  Keep insertion order stable: sweeps and
#: benches iterate this dict and their output order is part of the
#: committed artifacts.
FAMILIES: Dict[str, Callable[..., ZooScenario]] = {
    "deep_chain": deep_chain,
    "hetero_multiproc": hetero_multiproc,
    "exclusion_pathology": exclusion_pathology,
    "memory_ladder": memory_ladder,
    "streaming_pipeline": streaming_pipeline,
    "chained": chained,
}


def generate(family: str, seed: int, size: str = "small") -> ZooScenario:
    """Build the scenario at coordinates ``(family, seed, size)``."""
    try:
        make = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ValueError(
            f"unknown zoo family {family!r} (known: {known})"
        ) from None
    return make(seed, size)


__all__ = [
    "FAMILIES",
    "SIZES",
    "ZooScenario",
    "check_size",
    "chained",
    "deep_chain",
    "exclusion_pathology",
    "generate",
    "hetero_multiproc",
    "memory_ladder",
    "streaming_pipeline",
]
