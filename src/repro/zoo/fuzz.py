"""Differential fuzzing of the explorer stack against the oracle.

The harness runs every explorer configuration — frontier × ordering ×
pool × bound × backend × ``max_open``, plus the exhaustive, annealing
and portfolio explorers — on zoo scenarios and checks each result
against :class:`~repro.synth.explorer.ExhaustiveExplorer` ground
truth.  Because every zoo workload lives on the 1/64 binary grid (see
:mod:`repro.zoo.base`), the checks are *exact*:

* a run claiming ``optimal=True`` must match the oracle's cost
  exactly and carry ``proof_floor == cost`` (a full certificate);
* every run, optimal or not, must respect soundness: ``cost >=
  oracle.cost`` (nobody beats the optimum) and ``proof_floor <=
  oracle.cost`` (no certificate excludes the true optimum);
* a returned mapping must re-evaluate feasible at exactly the
  reported cost under the reference evaluator.

On scenarios too large for the oracle the harness falls back to
*cross-agreement*: all optimal-claiming configurations must agree on
cost among themselves (:func:`cross_check`).

Failures are captured as :class:`CorpusCase` coordinates — family,
seed, size, problem label, explorer config — which regenerate the
exact failing run from scratch.  :func:`minimize_case` shrinks the
unit set ddmin-style while the failure reproduces, and the committed
corpus under ``tests/corpus/`` replays every recorded case in CI so a
fuzz-found bug can never silently return.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..synth.backend import HAS_NUMPY
from ..synth.cost import evaluate
from ..synth.explorer import (
    AnnealingExplorer,
    BranchBoundExplorer,
    ExhaustiveExplorer,
    ExplorationResult,
    Explorer,
    PortfolioExplorer,
)
from ..synth.mapping import SynthesisProblem
from ..synth.ordering import FRONTIERS, ORDERINGS

#: Corpus file format version; bump on incompatible schema changes.
CASE_VERSION = 1

_INF = float("inf")


# ----------------------------------------------------------------------
# Explorer configuration matrix
# ----------------------------------------------------------------------
def _backends() -> Tuple[str, ...]:
    return ("python", "numpy") if HAS_NUMPY else ("python",)


def config_matrix(full: bool = False) -> Iterator[Dict[str, object]]:
    """Yield explorer configurations, curated or exhaustive.

    The curated set (default) covers every frontier, every ordering,
    both pool/bound settings, both backends and a tight ``max_open``
    at least once each — enough for a sweep iteration to touch every
    code path cheaply.  ``full=True`` yields the whole cross product
    (every frontier × ordering × pool × bound × backend × max_open),
    which the per-family property tests run once per family.
    """
    yield {"kind": "exhaustive"}
    yield {"kind": "annealing", "seed": 0}
    yield {"kind": "annealing", "seed": 7}
    yield {"kind": "portfolio"}
    if full:
        for frontier, ordering, pool, bound, backend, open_cap in (
            itertools.product(
                FRONTIERS,
                ORDERINGS,
                (True, False),
                (True, False),
                _backends(),
                (None, 4),
            )
        ):
            yield {
                "kind": "bnb",
                "frontier": frontier,
                "ordering": ordering,
                "dynamic_pool": pool,
                "capacity_bound": bound,
                "backend": backend,
                "max_open": open_cap,
            }
        return
    # Curated: sweep one axis at a time off a center configuration.
    center = {
        "kind": "bnb",
        "frontier": "dfs",
        "ordering": "adaptive",
        "dynamic_pool": True,
        "capacity_bound": True,
        "backend": "python",
        "max_open": None,
    }
    seen = set()
    variations: List[Dict[str, object]] = [center]
    variations += [{**center, "frontier": f} for f in FRONTIERS]
    variations += [{**center, "ordering": o} for o in ORDERINGS]
    variations += [
        {**center, "dynamic_pool": False},
        {**center, "capacity_bound": False},
        {**center, "dynamic_pool": False, "capacity_bound": False},
        {**center, "max_open": 4},
        {**center, "frontier": "best-first", "max_open": 4},
        {**center, "frontier": "beam", "max_open": 4},
    ]
    if HAS_NUMPY:
        variations += [
            {**center, "backend": "numpy"},
            {**center, "frontier": "best-first", "backend": "numpy"},
        ]
    for config in variations:
        key = describe(config)
        if key not in seen:
            seen.add(key)
            yield config


def describe(config: Dict[str, object]) -> str:
    """Stable short id of a configuration (corpus files, labels)."""
    kind = config["kind"]
    if kind == "bnb":
        parts = [
            str(config.get("frontier", "dfs")),
            str(config.get("ordering", "adaptive")),
            "pool" if config.get("dynamic_pool", True) else "nopool",
            "cap" if config.get("capacity_bound", True) else "basic",
            str(config.get("backend", "python")),
        ]
        open_cap = config.get("max_open")
        parts.append("openinf" if open_cap is None else f"open{open_cap}")
        return "bnb:" + "-".join(parts)
    if kind == "annealing":
        return f"annealing:s{config.get('seed', 0)}"
    return str(kind)


def build_explorer(config: Dict[str, object]) -> Explorer:
    """Instantiate the explorer a configuration describes."""
    kind = config["kind"]
    if kind == "exhaustive":
        return ExhaustiveExplorer()
    if kind == "annealing":
        return AnnealingExplorer(
            seed=int(config.get("seed", 0)), iterations=1500
        )
    if kind == "portfolio":
        return PortfolioExplorer(node_budget=50_000, iterations=800)
    if kind == "bnb":
        return BranchBoundExplorer(
            frontier=str(config.get("frontier", "dfs")),
            ordering=str(config.get("ordering", "adaptive")),
            dynamic_pool=bool(config.get("dynamic_pool", True)),
            capacity_bound=bool(config.get("capacity_bound", True)),
            backend=str(config.get("backend", "python")),
            max_open=config.get("max_open"),
        )
    raise ValueError(f"unknown explorer config kind {kind!r}")


def config_requires_numpy(config: Dict[str, object]) -> bool:
    """True if the configuration needs the NumPy backend."""
    return config.get("backend") == "numpy"


# ----------------------------------------------------------------------
# Differential checks
# ----------------------------------------------------------------------
def check_against_oracle(
    problem: SynthesisProblem,
    result: ExplorationResult,
    oracle: ExplorationResult,
    config: Dict[str, object],
) -> List[str]:
    """All exact-agreement violations of one run vs ground truth."""
    failures = _check_self_consistency(problem, result, config)
    label = describe(config)
    if result.cost < oracle.cost:
        failures.append(
            f"{label}: cost {result.cost} beats oracle {oracle.cost}"
        )
    if result.proof_floor > oracle.cost:
        failures.append(
            f"{label}: proof floor {result.proof_floor} excludes the "
            f"oracle optimum {oracle.cost}"
        )
    if result.optimal and result.cost != oracle.cost:
        failures.append(
            f"{label}: claims optimal at {result.cost}, oracle says "
            f"{oracle.cost}"
        )
    if config["kind"] in ("exhaustive", "bnb") and not result.optimal:
        # Exact explorers may only give up under an explicit budget;
        # none is set here, so non-optimal means a pruning bug.
        if config.get("max_open") is None:
            failures.append(
                f"{label}: exact run without budget reports "
                f"optimal=False"
            )
    return failures


def _check_self_consistency(
    problem: SynthesisProblem,
    result: ExplorationResult,
    config: Dict[str, object],
) -> List[str]:
    """Oracle-free invariants every result must satisfy."""
    failures: List[str] = []
    label = describe(config)
    if result.optimal and result.proof_floor != result.cost:
        failures.append(
            f"{label}: optimal=True but proof floor "
            f"{result.proof_floor} != cost {result.cost}"
        )
    if result.proof_floor > result.cost:
        failures.append(
            f"{label}: proof floor {result.proof_floor} above own "
            f"cost {result.cost}"
        )
    if config["kind"] == "annealing" and result.optimal:
        failures.append(f"{label}: annealing may not claim optimality")
    if result.mapping is not None and result.cost != _INF:
        check = evaluate(problem, result.mapping)
        if not check.feasible:
            failures.append(
                f"{label}: returned mapping re-evaluates infeasible"
            )
        elif check.total_cost != result.cost:
            failures.append(
                f"{label}: reported cost {result.cost} but mapping "
                f"re-evaluates to {check.total_cost}"
            )
    elif result.cost != _INF:
        failures.append(f"{label}: finite cost without a mapping")
    return failures


def cross_check(
    results: Sequence[Tuple[Dict[str, object], ExplorationResult]],
) -> List[str]:
    """Cost-only agreement among optimal-claiming runs (no oracle).

    For scenarios too large to enumerate, any two configurations that
    both claim a proven optimum must agree exactly; heuristic runs
    must not beat the proven optimum.
    """
    failures: List[str] = []
    proven = [
        (config, result)
        for config, result in results
        if result.optimal
    ]
    if not proven:
        return failures
    ref_config, ref = min(proven, key=lambda item: item[1].cost)
    for config, result in proven:
        if result.cost != ref.cost:
            failures.append(
                f"{describe(config)}: proven cost {result.cost} "
                f"disagrees with {describe(ref_config)} at {ref.cost}"
            )
    for config, result in results:
        if not result.optimal and result.cost < ref.cost:
            failures.append(
                f"{describe(config)}: cost {result.cost} beats the "
                f"proven optimum {ref.cost} of {describe(ref_config)}"
            )
    return failures


# ----------------------------------------------------------------------
# Corpus cases
# ----------------------------------------------------------------------
@dataclass
class CorpusCase:
    """Coordinates that regenerate one differential check exactly."""

    id: str
    family: str
    seed: int
    size: str
    problem: str  # "joint" or "sel<N>"
    config: Dict[str, object]
    note: str = ""
    #: Optional minimized unit subset (ddmin output); None replays the
    #: full problem.
    units: Optional[List[str]] = None
    version: int = CASE_VERSION

    def to_json(self) -> Dict[str, object]:
        payload = {
            "version": self.version,
            "id": self.id,
            "family": self.family,
            "seed": self.seed,
            "size": self.size,
            "problem": self.problem,
            "config": dict(self.config),
            "note": self.note,
        }
        if self.units is not None:
            payload["units"] = list(self.units)
        return payload

    @staticmethod
    def from_json(payload: Dict[str, object]) -> "CorpusCase":
        version = int(payload.get("version", 0))
        if version != CASE_VERSION:
            raise ValueError(
                f"corpus case version {version} unsupported "
                f"(expected {CASE_VERSION})"
            )
        return CorpusCase(
            id=str(payload["id"]),
            family=str(payload["family"]),
            seed=int(payload["seed"]),
            size=str(payload["size"]),
            problem=str(payload["problem"]),
            config=dict(payload["config"]),
            note=str(payload.get("note", "")),
            units=(
                list(payload["units"])
                if payload.get("units") is not None
                else None
            ),
        )


def restrict_problem(
    problem: SynthesisProblem, units: Sequence[str]
) -> SynthesisProblem:
    """The sub-problem over ``units`` (minimized-case replay)."""
    keep = tuple(unit for unit in problem.units if unit in set(units))
    return replace(
        problem,
        name=f"{problem.name}.min{len(keep)}",
        units=keep,
        origins={
            unit: origin
            for unit, origin in problem.origins.items()
            if unit in keep
        },
        fixed={
            unit: target
            for unit, target in problem.fixed.items()
            if unit in keep
        },
    )


def case_problem(case: CorpusCase) -> SynthesisProblem:
    """Rebuild the (possibly restricted) problem a case points at."""
    from . import generate

    scenario = generate(case.family, case.seed, case.size)
    problem = scenario.problem_by_label(case.problem)
    if case.units is not None:
        problem = restrict_problem(problem, case.units)
    return problem


def replay_case(case: CorpusCase) -> List[str]:
    """Re-run one corpus case from scratch; [] means it passes."""
    problem = case_problem(case)
    oracle = ExhaustiveExplorer().explore(problem)
    result = build_explorer(case.config).explore(problem)
    return check_against_oracle(problem, result, oracle, case.config)


def load_corpus(directory: Path) -> List[CorpusCase]:
    """All corpus cases under ``directory``, sorted by file name."""
    cases = []
    for path in sorted(Path(directory).glob("*.json")):
        with open(path, "r", encoding="utf-8") as handle:
            cases.append(CorpusCase.from_json(json.load(handle)))
    return cases


def save_case(case: CorpusCase, directory: Path) -> Path:
    """Write one case as ``<id>.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.id}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
def minimize_case(case: CorpusCase) -> CorpusCase:
    """Shrink the case's unit set while the failure still reproduces.

    Classic ddmin over the problem's unit list: try dropping chunks
    (halves, then quarters, …) and keep any reduction that still
    fails the differential check.  The result replays the identical
    failure on the smallest unit subset found.
    """
    base = case_problem(replace(case, units=None))
    units = list(case.units if case.units is not None else base.units)

    def still_fails(subset: Sequence[str]) -> bool:
        if not subset:
            return False
        try:
            problem = restrict_problem(base, subset)
        except Exception:
            return False
        oracle = ExhaustiveExplorer().explore(problem)
        result = build_explorer(case.config).explore(problem)
        return bool(
            check_against_oracle(problem, result, oracle, case.config)
        )

    if not still_fails(units):
        # Not reproducible (e.g. already fixed) — nothing to shrink.
        return case

    chunks = 2
    while len(units) >= 2:
        chunk_size = max(1, len(units) // chunks)
        reduced = False
        for start in range(0, len(units), chunk_size):
            candidate = units[:start] + units[start + chunk_size:]
            if candidate and still_fails(candidate):
                units = candidate
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if chunk_size == 1:
                break
            chunks = min(len(units), chunks * 2)
    minimized = replace(case, units=list(units))
    if len(units) == len(base.units):
        minimized = replace(case, units=None)
    return minimized


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """Outcome of one fuzz sweep."""

    checks: int = 0
    problems: int = 0
    scenarios: int = 0
    elapsed: float = 0.0
    failures: List[CorpusCase] = field(default_factory=list)
    messages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def sweep(
    seed: int = 0,
    scenarios_per_family: int = 2,
    families: Optional[Sequence[str]] = None,
    time_budget: Optional[float] = None,
    full_matrix: bool = False,
    minimize: bool = True,
) -> SweepReport:
    """Differential-fuzz small scenarios across the explorer matrix.

    Deterministic for a given ``seed``: scenario seeds are drawn as
    ``seed * 1000 + i``.  ``time_budget`` (seconds) is a soft cap —
    the sweep finishes the current problem and stops, so a time-boxed
    CI job still ends on a complete, reproducible boundary.
    """
    from . import FAMILIES

    chosen = list(families if families is not None else FAMILIES)
    report = SweepReport()
    started = time.monotonic()
    configs = list(config_matrix(full=full_matrix))

    for family in chosen:
        for index in range(scenarios_per_family):
            if (
                time_budget is not None
                and time.monotonic() - started > time_budget
            ):
                report.messages.append(
                    f"time budget hit after {report.scenarios} "
                    f"scenarios ({report.checks} checks)"
                )
                report.elapsed = time.monotonic() - started
                return report
            scenario_seed = seed * 1000 + index
            from . import generate

            scenario = generate(family, scenario_seed, "small")
            report.scenarios += 1
            for label, problem in scenario.problems():
                report.problems += 1
                oracle = ExhaustiveExplorer().explore(problem)
                for config in configs:
                    result = build_explorer(config).explore(problem)
                    report.checks += 1
                    problems_found = check_against_oracle(
                        problem, result, oracle, config
                    )
                    if problems_found:
                        case = CorpusCase(
                            id=(
                                f"{family}-s{scenario_seed}-{label}-"
                                f"{describe(config).replace(':', '_')}"
                            ),
                            family=family,
                            seed=scenario_seed,
                            size="small",
                            problem=label,
                            config=dict(config),
                            note="; ".join(problems_found),
                        )
                        if minimize:
                            case = minimize_case(case)
                        report.failures.append(case)
                        report.messages.extend(problems_found)
    report.elapsed = time.monotonic() - started
    return report


def cross_sweep(
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    size: str = "medium",
    node_budget: int = 50_000,
) -> SweepReport:
    """Cost-only cross-agreement on scenarios beyond the oracle.

    Runs the curated matrix (each exact config under ``node_budget``)
    on the joint problem of one ``size`` scenario per family and
    applies :func:`cross_check` — no exhaustive enumeration anywhere.
    """
    from . import FAMILIES, generate

    chosen = list(families if families is not None else FAMILIES)
    report = SweepReport()
    started = time.monotonic()
    for family in chosen:
        scenario = generate(family, seed, size)
        problem = scenario.joint_problem()
        report.scenarios += 1
        report.problems += 1
        results = []
        disagreements = []
        for config in config_matrix():
            if config["kind"] == "exhaustive":
                continue  # no oracle at this size — that's the point
            explorer = build_explorer(config)
            if isinstance(explorer, BranchBoundExplorer):
                explorer.node_budget = node_budget
            results.append((config, explorer.explore(problem)))
            report.checks += 1
            disagreements.extend(
                f"{family}: {message}"
                for message in _check_self_consistency(
                    problem, results[-1][1], config
                )
            )
        disagreements.extend(
            f"{family}: {message}"
            for message in cross_check(results)
        )
        report.messages.extend(disagreements)
        if disagreements:
            report.failures.append(
                CorpusCase(
                    id=f"{family}-s{seed}-{size}-cross",
                    family=family,
                    seed=seed,
                    size=size,
                    problem="joint",
                    config={"kind": "exhaustive"},
                    note="; ".join(disagreements),
                )
            )
    report.elapsed = time.monotonic() - started
    return report
