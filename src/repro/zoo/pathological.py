"""Pathological exclusion and memory structures.

Two families designed to make the exclusion-aware cost terms — not
plain knapsack packing — the deciding factor:

* :func:`exclusion_pathology` — one interface with many heavy
  clusters, each close to a full processor on its own.  Under the
  run-time exclusion rule the software load of an interface is the
  *maximum* over its clusters, so the joint problem is feasible in
  software exactly because the clusters are mutually exclusive; with
  ``use_exclusion=False`` (the scenario's twin, selectable via the
  ``use_exclusion`` param) the same mappings blow the capacity and
  the optimizer is pushed into hardware.  Any explorer that
  mis-accounts the exclusion group of a unit shows up against the
  oracle immediately.
* :func:`memory_ladder` — a tight ``memory_capacity`` over units
  whose footprints form a ladder of near-complementary sizes: the
  software subset choice is a two-resource (utilization + memory)
  knapsack where most utilization-feasible subsets are
  memory-infeasible.  Stresses the memory side of the feasibility
  check and of the incremental kernel's accumulators.
"""

from __future__ import annotations

import random

from ..synth.architecture import ArchitectureTemplate
from ..synth.library import ComponentLibrary
from ..synth.methods import ProblemFamily
from ..variants.interface import Interface
from ..variants.types import VariantKind
from ..variants.variant_space import VariantSpace
from ..variants.vgraph import VariantGraph
from .base import (
    ZooScenario,
    check_size,
    common_chain,
    grid64,
    linear_cluster,
    runtime_selection,
)

#: (clusters, cluster_size, common_processes) per size.
_EXCLUSION_SHAPES = {
    "small": (3, 1, 1),
    "medium": (5, 2, 2),
    "bench": (8, 3, 3),
}

#: (rungs, variants, common_processes) per size.
_MEMORY_SHAPES = {
    "small": (3, 2, 1),
    "medium": (6, 2, 2),
    "bench": (10, 2, 4),
}


def exclusion_pathology(
    seed: int, size: str = "small", use_exclusion: bool = True
) -> ZooScenario:
    """One interface, many near-capacity clusters, exclusion decisive."""
    check_size(size)
    n_clusters, cluster_size, common_processes = _EXCLUSION_SHAPES[size]
    rng = random.Random(seed)

    vgraph = VariantGraph(f"excl{seed}")
    builder = common_chain("common", common_processes, n_stages=1)
    vgraph.base = builder.build(validate=False)

    library = ComponentLibrary()
    for index in range(common_processes):
        # A slim common part: the capacity head-room belongs to the
        # exclusive clusters.
        library.component(
            f"K{index}",
            sw_utilization=grid64(rng, 1, 4),
            hw_cost=rng.randint(6, 14),
        )

    clusters = {
        f"v{variant}": linear_cluster(f"v{variant}", cluster_size)
        for variant in range(n_clusters)
    }
    vgraph.add_interface(
        Interface(
            name="t0",
            inputs=("i",),
            outputs=("o",),
            clusters=clusters,
            selection=runtime_selection(clusters),
            kind=VariantKind.RUNTIME,
        ),
        {"i": "S0", "o": "S1"},
    )
    for cluster in clusters.values():
        # Each cluster alone nearly fills the processor: 44..56 of 64
        # split over its processes.  Concurrently they are hopeless —
        # only the exclusion rule (max over clusters, not sum) makes
        # an all-software mapping feasible.
        budget = rng.randint(44, 56)
        for index, process_name in enumerate(cluster.process_names()):
            share = budget // cluster_size + (
                1 if index < budget % cluster_size else 0
            )
            library.component(
                f"t0.{cluster.name}.{process_name}",
                sw_utilization=share / 64,
                hw_cost=rng.randint(10, 24),
            )

    architecture = ArchitectureTemplate(
        name="excl-core",
        max_processors=1,
        processor_cost=rng.randint(2, 8),
        processor_capacity=1.0,
    )
    family = ProblemFamily(
        name=f"zoo-exclusion_pathology-s{seed}",
        library=library,
        architecture=architecture,
        use_exclusion=use_exclusion,
    )
    return ZooScenario(
        family="exclusion_pathology",
        seed=seed,
        size=size,
        problem_family=family,
        space=VariantSpace(vgraph),
        params={
            "clusters": n_clusters,
            "cluster_size": cluster_size,
            "common_processes": common_processes,
            "use_exclusion": use_exclusion,
        },
    )


def memory_ladder(seed: int, size: str = "small") -> ZooScenario:
    """Tight memory capacity over ladder-shaped footprints."""
    check_size(size)
    rungs, variants, common_processes = _MEMORY_SHAPES[size]
    rng = random.Random(seed)

    vgraph = VariantGraph(f"mem{seed}")
    builder = common_chain("common", common_processes + rungs, n_stages=1)
    vgraph.base = builder.build(validate=False)

    library = ComponentLibrary()
    # Ladder rungs: utilization stays cheap, memory footprints are
    # near-complementary halves/quarters of the capacity so subset
    # feasibility flips on single swaps.
    total = common_processes + rungs
    for index in range(total):
        if index < common_processes:
            library.component(
                f"K{index}",
                sw_utilization=grid64(rng, 1, 4),
                sw_memory=grid64(rng, 2, 6),
                hw_cost=rng.randint(8, 16),
            )
        else:
            rung = index - common_processes
            footprint = 32 >> (rung % 4)  # 32, 16, 8, 4, 32, ...
            library.component(
                f"K{index}",
                sw_utilization=grid64(rng, 1, 6),
                sw_memory=(footprint + rng.randint(0, 3)) / 64,
                hw_cost=rng.randint(5, 18),
            )

    clusters = {
        f"v{variant}": linear_cluster(f"v{variant}", 1)
        for variant in range(variants)
    }
    vgraph.add_interface(
        Interface(
            name="t0",
            inputs=("i",),
            outputs=("o",),
            clusters=clusters,
            selection=runtime_selection(clusters),
            kind=VariantKind.RUNTIME,
        ),
        {"i": "S0", "o": "S1"},
    )
    for cluster in clusters.values():
        for process_name in cluster.process_names():
            library.component(
                f"t0.{cluster.name}.{process_name}",
                sw_utilization=grid64(rng, 2, 8),
                sw_memory=grid64(rng, 8, 24),
                hw_cost=rng.randint(6, 16),
            )

    architecture = ArchitectureTemplate(
        name="mem-core",
        max_processors=1,
        processor_cost=rng.randint(2, 6),
        processor_capacity=1.0,
        memory_capacity=48 / 64,
    )
    family = ProblemFamily(
        name=f"zoo-memory_ladder-s{seed}",
        library=library,
        architecture=architecture,
    )
    return ZooScenario(
        family="memory_ladder",
        seed=seed,
        size=size,
        problem_family=family,
        space=VariantSpace(vgraph),
        params={
            "rungs": rungs,
            "variants": variants,
            "common_processes": common_processes,
        },
    )
