"""Function variant representation — the paper's contribution.

Clusters (Def. 1) package exchangeable subgraphs behind ports;
interfaces (Def. 2) group the clusters of one variant set; cluster
selection functions (Def. 3) model run-time and dynamic selection;
configurations (Def. 4) carry the variant structure onto abstracted
processes.  :class:`VariantGraph` holds a whole system with its variant
sets; extraction and binding map between the variant representation and
plain SPI graphs.
"""

from .cluster import Cluster
from .configuration import Configuration, ConfigurationSet, ConfiguredProcess
from .expansion import ExpandedInterface, attach_expanded_interface
from .extraction import (
    DynamicExtraction,
    ExtractionOptions,
    extract_cluster_modes,
    extract_dynamic_interface,
    extract_interface,
)
from .flatten import abstract_interfaces, bind_variants, derive_applications
from .interface import Interface
from .ports import Port, PortDirection, PortSignature
from .selection import ClusterSelectionFunction, SelectionRule
from .types import VariantKind
from .variant_space import SelectionGroup, VariantSpace
from .vgraph import VariantGraph

__all__ = [
    "Cluster",
    "ClusterSelectionFunction",
    "Configuration",
    "ConfigurationSet",
    "ConfiguredProcess",
    "DynamicExtraction",
    "ExpandedInterface",
    "ExtractionOptions",
    "Interface",
    "Port",
    "PortDirection",
    "PortSignature",
    "SelectionGroup",
    "SelectionRule",
    "VariantGraph",
    "VariantKind",
    "VariantSpace",
    "abstract_interfaces",
    "attach_expanded_interface",
    "bind_variants",
    "derive_applications",
    "extract_cluster_modes",
    "extract_dynamic_interface",
    "extract_interface",
]
