"""Configurations — Definition 4 of the paper.

When an interface with dynamically exchangeable clusters is abstracted
to a single SPI process, each cluster maps to a **configuration**: a set
of process modes extracted from that cluster.  Associated with each
configuration is a (re)configuration latency ``t_conf``; the process
carries a ``conf_cur`` parameter denoting its current configuration.

The runtime rule (paper §4): when a newly activated mode does *not*
belong to the current configuration, a reconfiguration step is inserted
before the execution — the old configuration is destroyed including all
internal buffers, ``conf_cur`` is updated, and "from the higher level
point of view, the reconfiguration latency is simply added to the
process execution latency for this execution".  The simulator
(:mod:`repro.sim.engine`) implements exactly that rule for
:class:`ConfiguredProcess` instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import VariantError
from ..spi.process import Process


@dataclass(frozen=True)
class Configuration:
    """One configuration: modes extracted from one cluster.

    Parameters
    ----------
    name:
        Configuration name (``conf1``, ``conf2``, … in the paper).
    modes:
        Names of the process modes belonging to this configuration.
    latency:
        (Re)configuration latency ``t_conf`` for entering this
        configuration.
    source_cluster:
        The cluster the modes were extracted from, for traceability to
        the structural representation (optional).
    """

    name: str
    modes: Tuple[str, ...]
    latency: float = 0.0
    source_cluster: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise VariantError("configuration name must be non-empty")
        object.__setattr__(self, "modes", tuple(self.modes))
        if not self.modes:
            raise VariantError(
                f"configuration {self.name!r} needs at least one mode"
            )
        if len(set(self.modes)) != len(self.modes):
            raise VariantError(
                f"configuration {self.name!r} lists duplicate modes"
            )
        if self.latency < 0:
            raise VariantError(
                f"configuration {self.name!r}: latency must be non-negative"
            )

    def __contains__(self, mode: str) -> bool:
        return mode in self.modes


@dataclass(frozen=True)
class ConfigurationSet:
    """All configurations of one process, with the mode partition.

    Per Def. 4, all modes within one configuration are extracted from
    the same cluster; consequently a mode belongs to *exactly one*
    configuration, which is what makes the "newly activated mode is not
    in ``conf_cur``" test well-defined.
    """

    configurations: Tuple[Configuration, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "configurations", tuple(self.configurations)
        )
        if not self.configurations:
            raise VariantError(
                "a configuration set needs at least one configuration"
            )
        names = [conf.name for conf in self.configurations]
        if len(set(names)) != len(names):
            raise VariantError("configuration names must be unique")
        seen: Dict[str, str] = {}
        for conf in self.configurations:
            for mode in conf.modes:
                if mode in seen:
                    raise VariantError(
                        f"mode {mode!r} appears in configurations "
                        f"{seen[mode]!r} and {conf.name!r}; the mode "
                        f"partition must be disjoint (Def. 4)"
                    )
                seen[mode] = conf.name

    # ------------------------------------------------------------------
    def configuration(self, name: str) -> Configuration:
        """Look up a configuration by name."""
        for conf in self.configurations:
            if conf.name == name:
                return conf
        raise VariantError(f"no configuration named {name!r}")

    def configuration_of_mode(self, mode: str) -> Configuration:
        """The unique configuration containing ``mode``."""
        for conf in self.configurations:
            if mode in conf.modes:
                return conf
        raise VariantError(f"mode {mode!r} belongs to no configuration")

    def names(self) -> Tuple[str, ...]:
        """All configuration names, in declaration order."""
        return tuple(conf.name for conf in self.configurations)

    def all_modes(self) -> Tuple[str, ...]:
        """All partitioned mode names, in declaration order."""
        result = []
        for conf in self.configurations:
            result.extend(conf.modes)
        return tuple(result)

    def __iter__(self):
        return iter(self.configurations)

    def __len__(self) -> int:
        return len(self.configurations)


@dataclass(frozen=True, eq=False)
class ConfiguredProcess(Process):
    """A process carrying a configuration set (Def. 4).

    This is what interface abstraction produces: an ordinary SPI
    process — modes, activation function — plus the partition of its
    modes into configurations and the initial value of ``conf_cur``.

    All its modes must be covered by the partition; otherwise the
    reconfiguration test would be undefined for the uncovered modes.
    """

    configurations: Optional[ConfigurationSet] = None
    initial_configuration: Optional[str] = None
    source_interface: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.configurations is None:
            raise VariantError(
                f"configured process {self.name!r} needs a configuration set"
            )
        covered = set(self.configurations.all_modes())
        declared = set(self.modes)
        if covered != declared:
            missing = sorted(declared - covered)
            extra = sorted(covered - declared)
            raise VariantError(
                f"configured process {self.name!r}: configuration partition "
                f"mismatch (uncovered modes {missing}, unknown modes {extra})"
            )
        if self.initial_configuration is not None:
            self.configurations.configuration(self.initial_configuration)

    def configuration_of_mode(self, mode: str) -> Configuration:
        """The configuration owning ``mode`` (never None)."""
        return self.configurations.configuration_of_mode(mode)

    def reconfiguration_latency(self, target: str) -> float:
        """``t_conf`` for entering configuration ``target``."""
        return self.configurations.configuration(target).latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConfiguredProcess({self.name!r}, "
            f"configurations={list(self.configurations.names())})"
        )
