"""Variant graphs: SPI model graphs with embedded interfaces.

A system with function variants is represented in three parts (paper
§3): a **common part** containing all variant-independent elements, and
per variant set an **interface** whose associated **clusters** are the
mutually exclusive variants.  :class:`VariantGraph` holds the common
part as an ordinary :class:`~repro.spi.graph.ModelGraph` plus the
interfaces with their port→channel bindings.

Two transformations take a variant graph back into plain SPI:

* :meth:`VariantGraph.bind` — **static binding**: pick one cluster per
  interface and splice its elements in (production and run-time
  variants after the selection is known).  Namespacing is
  ``<interface>.<cluster>.<element>`` so synthesis results remain
  traceable to the variant structure.
* :meth:`VariantGraph.abstract` — **interface abstraction**: replace
  each interface by a single :class:`ConfiguredProcess` whose
  configurations were extracted from the clusters (dynamic variants;
  paper §4).  The heavy lifting lives in
  :mod:`repro.variants.extraction`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..errors import VariantError
from ..spi.channels import Channel
from ..spi.graph import ModelGraph
from ..spi.process import Process
from .cluster import Cluster
from .interface import Interface
from .ports import PortDirection


class VariantGraph:
    """The complete design representation with all function variants."""

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self.base = ModelGraph(f"{name}.common")
        self._interfaces: Dict[str, Interface] = {}
        self._bindings: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def interfaces(self) -> Dict[str, Interface]:
        """Read-only view of the embedded interfaces by name."""
        return dict(self._interfaces)

    def add_interface(
        self, interface: Interface, bindings: Mapping[str, str]
    ) -> Interface:
        """Embed an interface, binding every port to a base channel.

        ``bindings`` maps each port name of the interface signature to a
        channel of the common part.  Input ports claim the channel's
        reader slot, output ports its writer slot; conflicts with
        processes or other interfaces are rejected — channels stay
        point-to-point exactly as for processes.
        """
        if interface.name in self._interfaces:
            raise VariantError(
                f"interface {interface.name!r} already embedded"
            )
        if self.base.has_process(interface.name) or self.base.has_channel(
            interface.name
        ):
            raise VariantError(
                f"interface name {interface.name!r} collides with a base "
                f"graph element"
            )
        expected = set(interface.ports)
        given = set(bindings)
        if expected != given:
            raise VariantError(
                f"interface {interface.name!r}: bindings must cover exactly "
                f"the ports {sorted(expected)}, got {sorted(given)}"
            )
        for port, channel in bindings.items():
            if not self.base.has_channel(channel):
                raise VariantError(
                    f"interface {interface.name!r}: port {port!r} bound to "
                    f"unknown channel {channel!r}"
                )
            direction = interface.signature.direction_of(port)
            if direction is PortDirection.INPUT:
                occupant = self.base.reader_of(channel) or self._port_user(
                    channel, PortDirection.INPUT
                )
                if occupant is not None:
                    raise VariantError(
                        f"channel {channel!r} already has reader {occupant!r}"
                    )
            else:
                occupant = self.base.writer_of(channel) or self._port_user(
                    channel, PortDirection.OUTPUT
                )
                if occupant is not None:
                    raise VariantError(
                        f"channel {channel!r} already has writer {occupant!r}"
                    )
        # Selection channels must exist in the common part: the
        # selection mechanism is observable at the interface border.
        if interface.selection is not None:
            for channel in interface.selection.channels():
                if not self.base.has_channel(channel):
                    raise VariantError(
                        f"interface {interface.name!r}: selection observes "
                        f"unknown channel {channel!r}"
                    )
        self._interfaces[interface.name] = interface
        self._bindings[interface.name] = dict(bindings)
        return interface

    def _port_user(
        self, channel: str, direction: PortDirection
    ) -> Optional[str]:
        """Which embedded interface already uses ``channel`` in ``direction``."""
        for iface_name, bindings in self._bindings.items():
            interface = self._interfaces[iface_name]
            for port, bound in bindings.items():
                if bound != channel:
                    continue
                if interface.signature.direction_of(port) is direction:
                    return iface_name
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def interface(self, name: str) -> Interface:
        """Look up an embedded interface by name."""
        try:
            return self._interfaces[name]
        except KeyError:
            raise VariantError(f"no interface named {name!r}") from None

    def port_bindings(self, interface: str) -> Dict[str, str]:
        """Port→channel bindings of an embedded interface."""
        self.interface(interface)
        return dict(self._bindings[interface])

    def is_input_port(self, interface: str, port: str) -> bool:
        """True if ``port`` of ``interface`` is an input port."""
        signature = self.interface(interface).signature
        return signature.direction_of(port) is PortDirection.INPUT

    def variant_counts(self) -> Dict[str, int]:
        """Number of variants per interface."""
        return {
            name: interface.variant_count
            for name, interface in self._interfaces.items()
        }

    def total_combinations(self) -> int:
        """Size of the full (independent) variant cross product."""
        total = 1
        for interface in self._interfaces.values():
            total *= interface.variant_count
        return total

    # ------------------------------------------------------------------
    # Static binding (production / run-time variants)
    # ------------------------------------------------------------------
    def bind(
        self,
        selection: Mapping[str, str],
        name: Optional[str] = None,
        validate: bool = False,
    ) -> ModelGraph:
        """Derive the single-variant SPI graph for ``selection``.

        ``selection`` maps interface name to the chosen cluster name;
        interfaces missing from the mapping fall back to their
        ``initial_cluster``, or to their only cluster.  Nested
        interfaces (inside clusters) are resolved through the same
        mapping, so interface names must be globally unique.
        """
        result = self.base.copy(name or f"{self.name}.bound")
        for iface_name in sorted(self._interfaces):
            interface = self._interfaces[iface_name]
            cluster = self._chosen_cluster(interface, selection)
            _splice_cluster(
                result,
                iface_name,
                cluster,
                self._bindings[iface_name],
                selection,
            )
        if validate:
            result.validate()
        return result

    def _chosen_cluster(
        self, interface: Interface, selection: Mapping[str, str]
    ) -> Cluster:
        chosen = selection.get(interface.name)
        if chosen is None:
            chosen = interface.initial_cluster
        if chosen is None and interface.variant_count == 1:
            chosen = next(iter(interface.clusters))
        if chosen is None:
            raise VariantError(
                f"no cluster selected for interface {interface.name!r} "
                f"(candidates: {list(interface.cluster_names())})"
            )
        return interface.cluster(chosen)

    # ------------------------------------------------------------------
    # Interface abstraction (dynamic variants)
    # ------------------------------------------------------------------
    def abstract(
        self,
        name: Optional[str] = None,
        detail: str = "per_entry",
        validate: bool = False,
    ) -> ModelGraph:
        """Replace every interface by an extracted configured process.

        See :func:`repro.variants.extraction.extract_interface` for the
        parameter extraction itself.
        """
        from .extraction import ExtractionOptions, extract_interface

        options = ExtractionOptions(detail=detail)
        result = self.base.copy(name or f"{self.name}.abstract")
        for iface_name in sorted(self._interfaces):
            interface = self._interfaces[iface_name]
            process = extract_interface(
                interface, self._bindings[iface_name], options=options
            )
            result.add_process(process)
            for channel in process.input_channels():
                result.connect(channel, process.name)
            for channel in process.output_channels():
                result.connect(process.name, channel)
            for channel in process.activation.channels():
                if result.reader_of(channel) != process.name:
                    result.connect(channel, process.name)
        if validate:
            result.validate()
        return result

    # ------------------------------------------------------------------
    # Whole-model validation
    # ------------------------------------------------------------------
    def issues(self) -> List[str]:
        """Collect variant-level modeling problems without raising.

        Checks beyond what :meth:`add_interface` enforces eagerly:
        dynamic interfaces without an initial cluster (the architecture
        must boot configured), run-time/dynamic selection functions
        whose rules do not cover every cluster (an unreachable
        variant), structural issues inside every cluster graph, and
        single-variant "sets" that need no interface at all.
        """
        found: List[str] = []
        for iface_name in sorted(self._interfaces):
            interface = self._interfaces[iface_name]
            if (
                interface.kind.reconfigurable
                and interface.initial_cluster is None
            ):
                found.append(
                    f"interface {iface_name!r} is dynamic but has no "
                    f"initial cluster"
                )
            if interface.selection is not None:
                covered = set(interface.selection.clusters_named())
                unreachable = sorted(set(interface.clusters) - covered)
                if unreachable:
                    found.append(
                        f"interface {iface_name!r}: clusters "
                        f"{unreachable} are selected by no rule"
                    )
            if interface.variant_count == 1:
                found.append(
                    f"interface {iface_name!r} offers a single variant; "
                    f"plain clustering would suffice"
                )
            for cluster_name in interface.cluster_names():
                cluster = interface.cluster(cluster_name)
                for issue in cluster.graph.issues():
                    ports = set(cluster.ports)
                    if any(f"{port!r}" in issue for port in ports):
                        continue  # boundary channels are open by design
                    found.append(
                        f"interface {iface_name!r} cluster "
                        f"{cluster_name!r}: {issue}"
                    )
        return found

    def validate(self) -> "VariantGraph":
        """Raise :class:`~repro.errors.ValidationError` on any issue."""
        from ..errors import ValidationError

        found = self.issues()
        if found:
            raise ValidationError(found)
        return self

    # ------------------------------------------------------------------
    # Accounting (Figure 2 bench)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Element counts: common part, per cluster, and totals.

        ``variant_representation_size`` counts every element once (the
        paper's single coherent model); ``enumeration_size`` is the sum
        over all fully bound single-variant graphs — what a tool without
        variant support would have to carry.
        """
        common = self.base.stats()
        per_interface = {
            name: interface.stats()
            for name, interface in sorted(self._interfaces.items())
        }
        variant_size = dict(common)
        for stats in per_interface.values():
            for cluster_stats in stats["clusters"].values():
                for key in ("processes", "channels", "edges"):
                    variant_size[key] += cluster_stats[key]
        enumeration = {"processes": 0, "channels": 0, "edges": 0}
        for selection in self.enumerate_selections():
            bound = self.bind(selection)
            for key in enumeration:
                enumeration[key] += bound.stats()[key]
        return {
            "common": common,
            "interfaces": per_interface,
            "variant_representation_size": variant_size,
            "enumeration_size": enumeration,
        }

    def enumerate_selections(self) -> List[Dict[str, str]]:
        """All variant combinations (independent cross product).

        Related selections are handled by
        :class:`repro.variants.variant_space.VariantSpace`; this is the
        unconstrained product.
        """
        names = sorted(self._interfaces)
        selections: List[Dict[str, str]] = [{}]
        for iface_name in names:
            interface = self._interfaces[iface_name]
            extended: List[Dict[str, str]] = []
            for partial in selections:
                for cluster_name in interface.cluster_names():
                    combo = dict(partial)
                    combo[iface_name] = cluster_name
                    extended.append(combo)
            selections = extended
        return selections

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VariantGraph({self.name!r}, interfaces="
            f"{sorted(self._interfaces)}, base={self.base!r})"
        )


def _splice_cluster(
    target: ModelGraph,
    iface_name: str,
    cluster: Cluster,
    bindings: Mapping[str, str],
    selection: Mapping[str, str],
) -> None:
    """Instantiate ``cluster`` into ``target`` under namespacing.

    Port boundary channels are merged with the externally bound
    channels; everything else is prefixed ``<iface>.<cluster>.``.
    Nested interfaces are resolved recursively through ``selection``.
    """
    prefix = f"{iface_name}.{cluster.name}."
    ports = set(cluster.ports)

    renaming: Dict[str, str] = {}
    for port in cluster.ports:
        renaming[port] = bindings[port]
    for channel_name in cluster.graph.channels:
        if channel_name not in ports:
            renaming[channel_name] = prefix + channel_name

    for channel_name, channel in cluster.graph.channels.items():
        if channel_name in ports:
            continue
        target.add_channel(
            Channel(
                name=renaming[channel_name],
                kind=channel.kind,
                capacity=channel.capacity,
                initial_tokens=channel.initial_tokens,
                virtual=channel.virtual,
            )
        )

    for process_name, process in cluster.graph.processes.items():
        new_name = prefix + process_name
        renamed_modes = {
            mode.name: mode.with_channels_renamed(renaming)
            for mode in process.modes.values()
        }
        renamed_activation = _rename_activation(
            process.activation, renaming
        )
        target.add_process(
            Process(
                name=new_name,
                modes=renamed_modes,
                activation=renamed_activation,
                virtual=process.virtual,
                period=process.period,
                max_firings=process.max_firings,
            )
        )
        for channel in cluster.graph.input_channels(process_name):
            target.connect(renaming[channel], new_name)
        for channel in cluster.graph.output_channels(process_name):
            target.connect(new_name, renaming[channel])

    for nested_name, nested in cluster.interfaces.items():
        nested_bindings = cluster.interface_bindings.get(nested_name)
        if nested_bindings is None:
            raise VariantError(
                f"cluster {cluster.name!r}: embedded interface "
                f"{nested_name!r} has no port bindings"
            )
        nested_iface: Interface = nested  # type: ignore[assignment]
        chosen_name = selection.get(nested_iface.name)
        if chosen_name is None:
            chosen_name = nested_iface.initial_cluster
        if chosen_name is None and nested_iface.variant_count == 1:
            chosen_name = next(iter(nested_iface.clusters))
        if chosen_name is None:
            raise VariantError(
                f"no cluster selected for nested interface "
                f"{nested_iface.name!r}"
            )
        resolved_bindings = {
            port: renaming.get(channel, channel)
            for port, channel in nested_bindings.items()
        }
        _splice_cluster(
            target,
            f"{iface_name}.{cluster.name}.{nested_iface.name}",
            nested_iface.cluster(chosen_name),
            resolved_bindings,
            selection,
        )


def _rename_activation(activation, renaming: Mapping[str, str]):
    """Rewrite channel references inside an activation function."""
    from ..spi.activation import ActivationFunction, ActivationRule

    return ActivationFunction(
        tuple(
            ActivationRule(
                name=rule.name,
                predicate=_rename_predicate(rule.predicate, renaming),
                mode=rule.mode,
            )
            for rule in activation.rules
        )
    )


def _rename_predicate(predicate, renaming: Mapping[str, str]):
    """Structurally rewrite channel names inside a predicate tree."""
    from ..spi.predicates import (
        And,
        HasAnyTag,
        HasTag,
        Not,
        NumAvailable,
        Or,
        TruePredicate,
    )

    if isinstance(predicate, TruePredicate):
        return predicate
    if isinstance(predicate, NumAvailable):
        return NumAvailable(
            renaming.get(predicate.channel, predicate.channel),
            predicate.minimum,
        )
    if isinstance(predicate, HasTag):
        return HasTag(
            renaming.get(predicate.channel, predicate.channel), predicate.tag
        )
    if isinstance(predicate, HasAnyTag):
        return HasAnyTag(
            renaming.get(predicate.channel, predicate.channel),
            predicate.tags,
        )
    if isinstance(predicate, And):
        return And(
            tuple(_rename_predicate(op, renaming) for op in predicate.operands)
        )
    if isinstance(predicate, Or):
        return Or(
            tuple(_rename_predicate(op, renaming) for op in predicate.operands)
        )
    if isinstance(predicate, Not):
        return Not(_rename_predicate(predicate.operand, renaming))
    raise VariantError(
        f"cannot rename channels in predicate type "
        f"{type(predicate).__name__}"
    )
