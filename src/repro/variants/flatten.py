"""Convenience transformations between variant graphs and plain SPI.

Thin wrappers over :class:`~repro.variants.vgraph.VariantGraph` methods
plus the application-derivation helper used throughout the benches.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..spi.graph import ModelGraph
from .vgraph import VariantGraph


def bind_variants(
    vgraph: VariantGraph,
    selection: Mapping[str, str],
    name: Optional[str] = None,
) -> ModelGraph:
    """Statically bind one cluster per interface (production variants)."""
    return vgraph.bind(selection, name=name)


def abstract_interfaces(
    vgraph: VariantGraph,
    detail: str = "per_entry",
    name: Optional[str] = None,
) -> ModelGraph:
    """Replace all interfaces by extracted configured processes."""
    return vgraph.abstract(name=name, detail=detail)


def derive_applications(
    vgraph: VariantGraph,
) -> List[Tuple[Dict[str, str], ModelGraph]]:
    """Bind every combination of the variant cross product.

    Returns ``(selection, bound graph)`` pairs, one per application, in
    deterministic order.  For related selections use
    :class:`repro.variants.variant_space.VariantSpace` instead.
    """
    result = []
    for index, selection in enumerate(
        vgraph.enumerate_selections(), start=1
    ):
        graph = vgraph.bind(selection, name=f"{vgraph.name}.app{index}")
        result.append((selection, graph))
    return result
