"""Variant combination spaces with related and independent selections.

"There may be several of those variant sets in one embedded system,
e.g. for different input and output standards of a multi-media device.
The variant selection for these sets may be related or independent."
(paper §1.)

A :class:`SelectionGroup` ties several interfaces together: only the
listed combinations are valid (e.g. a TV set where the input decoder
variant and the output encoder variant must implement the *same*
standard).  Interfaces outside any group vary independently; the
:class:`VariantSpace` enumerates exactly the consistent selections.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import VariantError
from .vgraph import VariantGraph


@dataclass(frozen=True)
class SelectionGroup:
    """A set of interfaces whose variants are selected together.

    ``choices`` lists the valid joint selections; each entry maps every
    interface of the group to a cluster name.
    """

    name: str
    choices: Tuple[Mapping[str, str], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise VariantError("selection group name must be non-empty")
        object.__setattr__(
            self, "choices", tuple(dict(choice) for choice in self.choices)
        )
        if not self.choices:
            raise VariantError(
                f"selection group {self.name!r} needs at least one choice"
            )
        keys = {frozenset(choice) for choice in self.choices}
        if len(keys) != 1:
            raise VariantError(
                f"selection group {self.name!r}: all choices must cover the "
                f"same interfaces"
            )

    @property
    def interfaces(self) -> Tuple[str, ...]:
        """The interfaces governed by this group (sorted)."""
        return tuple(sorted(self.choices[0]))


class VariantSpace:
    """Enumerable space of consistent variant selections."""

    def __init__(
        self,
        vgraph: VariantGraph,
        groups: Sequence[SelectionGroup] = (),
    ) -> None:
        self.vgraph = vgraph
        self.groups = tuple(groups)
        governed: Dict[str, str] = {}
        for group in self.groups:
            for iface in group.interfaces:
                if iface not in vgraph.interfaces:
                    raise VariantError(
                        f"selection group {group.name!r} references unknown "
                        f"interface {iface!r}"
                    )
                if iface in governed:
                    raise VariantError(
                        f"interface {iface!r} appears in groups "
                        f"{governed[iface]!r} and {group.name!r}"
                    )
                governed[iface] = group.name
            for choice in group.choices:
                for iface, cluster in choice.items():
                    vgraph.interface(iface).cluster(cluster)
        self._governed = governed
        self._free = tuple(
            sorted(set(vgraph.interfaces) - set(governed))
        )

    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of consistent selections."""
        total = 1
        for group in self.groups:
            total *= len(group.choices)
        for iface in self._free:
            total *= self.vgraph.interface(iface).variant_count
        return total

    def _axes(self) -> List[List[Mapping[str, str]]]:
        """The enumeration axes, outermost first (last varies fastest)."""
        axes: List[List[Mapping[str, str]]] = [
            list(group.choices) for group in self.groups
        ]
        axes.extend(
            [
                {iface: cluster}
                for cluster in self.vgraph.interface(iface).cluster_names()
            ]
            for iface in self._free
        )
        return axes

    def selections(self) -> Iterator[Dict[str, str]]:
        """Yield every consistent selection as one flat mapping."""
        for combo in itertools.product(*self._axes()):
            selection: Dict[str, str] = {}
            for choice in combo:
                selection.update(choice)
            yield selection

    def selection_at(self, index: int) -> Dict[str, str]:
        """The ``index``-th consistent selection, in O(axes) time.

        Mixed-radix decoding of the :meth:`selections` enumeration
        order (the last axis varies fastest) — what lets a parallel
        worker materialize its ``(start, count)`` shard directly
        instead of skip-enumerating the whole space.
        """
        if index < 0:
            raise VariantError("selection index must be >= 0")
        axes = self._axes()
        digits: List[int] = []
        remainder = index
        for axis in reversed(axes):
            remainder, digit = divmod(remainder, len(axis))
            digits.append(digit)
        if remainder:
            raise VariantError(
                f"selection index {index} out of range for a space of "
                f"{self.count()} selections"
            )
        selection: Dict[str, str] = {}
        for axis, digit in zip(axes, reversed(digits)):
            selection.update(axis[digit])
        return selection

    def iter_applications(
        self, prefix: Optional[str] = None
    ) -> Iterator[Tuple[Dict[str, str], object]]:
        """Lazily bind every consistent selection to its application.

        Yields ``(selection, graph)`` pairs one at a time, so batch
        explorers can stream a large space without materializing every
        bound graph.  Consecutive selections differ in as few
        interfaces as possible (the last enumeration axis varies
        fastest), which makes them good warm-start neighbors.
        """
        base = prefix if prefix is not None else self.vgraph.name
        for index, selection in enumerate(self.selections(), start=1):
            graph = self.vgraph.bind(selection, name=f"{base}.app{index}")
            yield selection, graph

    def applications(self) -> List[Tuple[Dict[str, str], object]]:
        """Bind every consistent selection; returns (selection, graph) pairs.

        This is the §5 derivation: "each of those can be simply derived
        by replacing the interface by either cluster 1 or cluster 2."
        """
        return list(self.iter_applications())

    @staticmethod
    def selection_key(selection: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
        """Canonical hashable key of one selection (sorted item pairs)."""
        return tuple(sorted(selection.items()))

    def __len__(self) -> int:
        return self.count()
