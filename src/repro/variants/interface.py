"""Interfaces — Definition 2 of the paper.

An interface is a tuple ``(I, O, Γ)``: input ports, output ports, and
the set of clusters associated with it, every one of which matches the
interface's port signature.  A system part with function variants is
represented by one interface with one cluster per variant.

Definition 3 attaches the selection machinery: an optional
:class:`~repro.variants.selection.ClusterSelectionFunction`, a
configuration latency ``t_conf`` per cluster, and the ``cur`` parameter
(the currently selected cluster) whose *initial* value lives here while
its evolution over time lives in the simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from .._frozen import proxy_pickle_methods
from ..errors import VariantError
from .cluster import Cluster
from .ports import PortSignature
from .selection import ClusterSelectionFunction
from .types import VariantKind


@dataclass(frozen=True, eq=False)
class Interface:
    """A variant set: port signature plus exchangeable clusters.

    Parameters
    ----------
    name:
        Interface name, unique within its variant graph.
    inputs / outputs:
        The port signature every associated cluster must match.
    clusters:
        The variants, keyed by cluster name.
    selection:
        Cluster selection function (required for run-time and dynamic
        variants, meaningless for production variants).
    config_latency:
        ``t_conf`` per cluster name — the time needed to configure the
        interface with that cluster (Def. 3).  Missing entries default
        to 0.
    initial_cluster:
        Initial value of the ``cur`` parameter, or None when the system
        starts unconfigured (Figure 3: the first selection configures).
    kind:
        Production / run-time / dynamic (see
        :class:`~repro.variants.types.VariantKind`).
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    clusters: Mapping[str, Cluster]
    selection: Optional[ClusterSelectionFunction] = None
    config_latency: Mapping[str, float] = field(default_factory=dict)
    initial_cluster: Optional[str] = None
    kind: VariantKind = VariantKind.PRODUCTION

    __getstate__, __setstate__ = proxy_pickle_methods(
        "clusters", "config_latency"
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise VariantError("interface name must be non-empty")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))

        clusters = self.clusters
        if isinstance(clusters, (list, tuple)):
            clusters = {cluster.name: cluster for cluster in clusters}
        if not clusters:
            raise VariantError(
                f"interface {self.name!r} needs at least one cluster"
            )
        for key, cluster in clusters.items():
            if key != cluster.name:
                raise VariantError(
                    f"interface {self.name!r}: cluster dict key {key!r} "
                    f"does not match cluster name {cluster.name!r}"
                )
        object.__setattr__(self, "clusters", MappingProxyType(dict(clusters)))

        signature = self.signature
        for cluster in self.clusters.values():
            if not cluster.signature.matches(signature):
                raise VariantError(
                    f"interface {self.name!r}: cluster {cluster.name!r} "
                    f"signature {cluster.signature!r} does not match "
                    f"interface signature {signature!r}"
                )

        object.__setattr__(
            self,
            "config_latency",
            MappingProxyType(dict(self.config_latency)),
        )
        unknown = set(self.config_latency) - set(self.clusters)
        if unknown:
            raise VariantError(
                f"interface {self.name!r}: configuration latencies for "
                f"unknown clusters {sorted(unknown)}"
            )
        for cluster, latency in self.config_latency.items():
            if latency < 0:
                raise VariantError(
                    f"interface {self.name!r}: configuration latency for "
                    f"{cluster!r} must be non-negative"
                )

        if self.selection is not None:
            dangling = set(self.selection.clusters_named()) - set(
                self.clusters
            )
            if dangling:
                raise VariantError(
                    f"interface {self.name!r}: selection rules reference "
                    f"unknown clusters {sorted(dangling)}"
                )
        if self.kind.needs_selection_function and self.selection is None:
            raise VariantError(
                f"interface {self.name!r} is a {self.kind.value} variant "
                f"set and therefore needs a cluster selection function"
            )

        if (
            self.initial_cluster is not None
            and self.initial_cluster not in self.clusters
        ):
            raise VariantError(
                f"interface {self.name!r}: initial cluster "
                f"{self.initial_cluster!r} is not one of its clusters"
            )

    # ------------------------------------------------------------------
    @property
    def signature(self) -> PortSignature:
        """The interface's port signature."""
        return PortSignature(self.inputs, self.outputs)

    @property
    def ports(self) -> Tuple[str, ...]:
        """All port names, inputs first."""
        return self.inputs + self.outputs

    def cluster(self, name: str) -> Cluster:
        """Look up an associated cluster by name."""
        try:
            return self.clusters[name]
        except KeyError:
            raise VariantError(
                f"interface {self.name!r} has no cluster {name!r}"
            ) from None

    def latency_of(self, cluster: str) -> float:
        """``t_conf`` for configuring this interface with ``cluster``."""
        self.cluster(cluster)
        return float(self.config_latency.get(cluster, 0.0))

    def cluster_names(self) -> Tuple[str, ...]:
        """All cluster names, sorted."""
        return tuple(sorted(self.clusters))

    @property
    def variant_count(self) -> int:
        """How many variants this interface offers."""
        return len(self.clusters)

    def stats(self) -> Dict[str, object]:
        """Per-cluster element accounting (Figure 2 bench)."""
        return {
            "name": self.name,
            "variants": self.variant_count,
            "clusters": {
                name: cluster.stats()
                for name, cluster in sorted(self.clusters.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Interface({self.name!r}, clusters={list(self.cluster_names())},"
            f" kind={self.kind.value})"
        )
