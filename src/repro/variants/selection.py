"""Cluster selection functions — Definition 3 of the paper.

Associated with an interface there may be a **cluster selection
function**, a finite set of rules, each mapping an input token predicate
to one dedicated cluster.  The predicate is a function on the tag sets
of the first available token on some input channels — structurally the
same machinery as process activation, which is precisely the similarity
the paper exploits when abstracting interfaces to processes.

Figure 3's rules read, in this library::

    v1 = SelectionRule('r1', HasTag('CV', 'V1'), 'cluster1')
    v2 = SelectionRule('r2', HasTag('CV', 'V2'), 'cluster2')
    fn = ClusterSelectionFunction((v1, v2))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import VariantError
from ..spi.predicates import ChannelView, Predicate


@dataclass(frozen=True)
class SelectionRule:
    """One rule: ``predicate -> cluster``."""

    name: str
    predicate: Predicate
    cluster: str

    def __post_init__(self) -> None:
        if not self.name:
            raise VariantError("selection rule name must be non-empty")
        if not self.cluster:
            raise VariantError(
                f"selection rule {self.name!r} must name a cluster"
            )

    def enabled(self, view: ChannelView) -> bool:
        """True if the rule's predicate holds on the observed state."""
        return self.predicate.evaluate(view)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.predicate!r} -> {self.cluster}"


@dataclass(frozen=True)
class ClusterSelectionFunction:
    """An ordered rule set selecting a cluster from channel observations."""

    rules: Tuple[SelectionRule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        if not self.rules:
            raise VariantError(
                "a cluster selection function needs at least one rule"
            )
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise VariantError("selection rule names must be unique")

    @staticmethod
    def by_tag(channel: str, mapping: dict) -> "ClusterSelectionFunction":
        """Common case: one tag on one channel per cluster.

        ``by_tag('CV', {'V1': 'cluster1', 'V2': 'cluster2'})`` builds
        exactly the Figure 3 rule set.
        """
        from ..spi.predicates import HasTag, NumAvailable

        rules = tuple(
            SelectionRule(
                name=f"sel_{tag}",
                predicate=NumAvailable(channel, 1) & HasTag(channel, tag),
                cluster=cluster,
            )
            for tag, cluster in mapping.items()
        )
        return ClusterSelectionFunction(rules)

    # ------------------------------------------------------------------
    def select(self, view: ChannelView) -> Optional[SelectionRule]:
        """First enabled rule in declaration order, or None."""
        for rule in self.rules:
            if rule.enabled(view):
                return rule
        return None

    def clusters_named(self) -> Tuple[str, ...]:
        """All clusters reachable through this selection function."""
        seen: List[str] = []
        for rule in self.rules:
            if rule.cluster not in seen:
                seen.append(rule.cluster)
        return tuple(seen)

    def channels(self) -> Tuple[str, ...]:
        """All channels observed by any rule (sorted, unique)."""
        merged = set()
        for rule in self.rules:
            merged.update(rule.predicate.channels())
        return tuple(sorted(merged))

    def rule_for(self, cluster: str) -> Optional[SelectionRule]:
        """The first rule selecting ``cluster``, or None."""
        for rule in self.rules:
            if rule.cluster == cluster:
                return rule
        return None

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)
