"""Expanded simulation of dynamically reconfigured interfaces.

Interface abstraction (:mod:`repro.variants.extraction`) replaces a
variant set by one process — the right representation for optimization.
For *validation*, however, one sometimes wants to watch the clusters
themselves run: which tokens sit on which internal channel, and what is
destroyed when a cluster is terminated mid-flight.  Paper §4:

    "Since parts of the cluster to be replaced may be in execution,
    this may include terminating the running cluster and then
    instantiating the new cluster.  Evidently, the termination of a
    running cluster results in the loss of all data on the internal
    channels.  Although this might be acceptable in certain situations,
    it may not be desired in others [...]  Hence, clusters may
    sometimes require to complete part of their functionality before
    they may be terminated."

:func:`attach_expanded_interface` instantiates *all* clusters of a
dynamic interface into a host graph, adds a **router** (feeding the
currently selected cluster), a **merger** (collecting its output) and a
selection register; switching is driven by request tokens exactly as in
the abstracted form, and terminates the outgoing cluster by flushing
its internal channels (the engine's flush rules, recorded in the
trace).  ``graceful=True`` instead delays the switch until the pipeline
has drained, preserving all data at the price of a longer switch
latency — the design trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..errors import VariantError
from ..spi.activation import ActivationFunction, ActivationRule
from ..spi.builder import GraphBuilder
from ..spi.intervals import Interval
from ..spi.modes import ProcessMode
from ..spi.predicates import And, HasTag, Not, NumAvailable, Predicate
from ..spi.tags import TagSet
from ..spi.process import Process
from ..spi.tokens import Token
from .interface import Interface
from .vgraph import _splice_cluster


@dataclass(frozen=True)
class ExpandedInterface:
    """Handles produced by :func:`attach_expanded_interface`.

    ``flush_rules`` must be passed to the simulator; ``internal_channels``
    maps each cluster to its (namespaced) internal channels for
    occupancy inspection.
    """

    interface: str
    router: str
    merger: str
    selection_channel: str
    flush_rules: Mapping[Tuple[str, str], Tuple[str, ...]]
    internal_channels: Mapping[str, Tuple[str, ...]]


def attach_expanded_interface(
    builder: GraphBuilder,
    interface: Interface,
    bindings: Mapping[str, str],
    request_channel: str,
    confirm_channel: str,
    graceful: bool = False,
    request_tag_prefix: str = "sel:",
) -> ExpandedInterface:
    """Instantiate a dynamic interface with all clusters expanded.

    The host ``builder`` must already declare the externally bound
    channels plus ``request_channel`` and ``confirm_channel``.  Only
    single-input/single-output interfaces are supported (the router and
    merger are per-stream processes); this covers the paper's examples.
    """
    if interface.initial_cluster is None:
        raise VariantError(
            f"interface {interface.name!r}: expanded simulation needs an "
            f"initial cluster"
        )
    if len(interface.inputs) != 1 or len(interface.outputs) != 1:
        raise VariantError(
            f"interface {interface.name!r}: expanded simulation supports "
            f"exactly one input and one output port"
        )
    in_channel = bindings[interface.inputs[0]]
    out_channel = bindings[interface.outputs[0]]
    name = interface.name
    selection_channel = f"{name}__sel"

    # Per-cluster entry/exit channels feeding the spliced clusters.
    entry_channel = {
        cluster: f"{name}.{cluster}.__entry"
        for cluster in interface.cluster_names()
    }
    exit_channel = {
        cluster: f"{name}.{cluster}.__exit"
        for cluster in interface.cluster_names()
    }
    builder.register(
        selection_channel,
        initial_tokens=[
            Token(tags=TagSet.of(f"cur:{interface.initial_cluster}"))
        ],
    )
    for cluster in interface.cluster_names():
        builder.queue(entry_channel[cluster])
        builder.queue(exit_channel[cluster])

    # Splice every cluster, bound to its private entry/exit channels.
    internal_channels: Dict[str, Tuple[str, ...]] = {}
    for cluster_name in interface.cluster_names():
        cluster = interface.cluster(cluster_name)
        _splice_cluster(
            builder.graph,
            name,
            cluster,
            {
                interface.inputs[0]: entry_channel[cluster_name],
                interface.outputs[0]: exit_channel[cluster_name],
            },
            selection={},
        )
        internal_channels[cluster_name] = tuple(
            f"{name}.{cluster_name}.{channel}"
            for channel in cluster.internal_channels()
        )

    # Merger: forward whichever cluster produced output.
    merger_name = f"{name}.merge"
    merger_modes: Dict[str, ProcessMode] = {}
    merger_rules: List[ActivationRule] = []
    for cluster_name in interface.cluster_names():
        mode_name = f"from_{cluster_name}"
        merger_modes[mode_name] = ProcessMode(
            name=mode_name,
            latency=Interval.zero(),
            consumes={exit_channel[cluster_name]: 1},
            produces={out_channel: 1},
            pass_tags=(out_channel,),
        )
        merger_rules.append(
            ActivationRule(
                name=f"r_{mode_name}",
                predicate=NumAvailable(exit_channel[cluster_name], 1),
                mode=mode_name,
            )
        )
    builder.process(
        Process(
            name=merger_name,
            modes=merger_modes,
            activation=ActivationFunction(tuple(merger_rules)),
        )
    )

    # Router: route data to the selected cluster; switch on requests.
    router_name = f"{name}.route"
    router_modes: Dict[str, ProcessMode] = {}
    switch_rules: List[ActivationRule] = []
    route_rules: List[ActivationRule] = []
    flush_rules: Dict[Tuple[str, str], Tuple[str, ...]] = {}
    all_internal: List[str] = []
    for channels in internal_channels.values():
        all_internal.extend(channels)

    for cluster_name in interface.cluster_names():
        switch_mode = f"switch_{cluster_name}"
        router_modes[switch_mode] = ProcessMode(
            name=switch_mode,
            latency=Interval.point(interface.latency_of(cluster_name)),
            consumes={request_channel: 1},
            produces={selection_channel: 1, confirm_channel: 1},
            out_tags={
                selection_channel: TagSet.of(f"cur:{cluster_name}"),
                confirm_channel: TagSet.of(f"done:{name}"),
            },
        )
        guards: List[Predicate] = [
            NumAvailable(request_channel, 1),
            HasTag(request_channel, f"{request_tag_prefix}{cluster_name}"),
        ]
        if graceful:
            # Completion before termination: wait until every internal
            # channel (and every pending exit) has drained.
            for channel in all_internal:
                guards.append(Not(NumAvailable(channel, 1)))
            for channel in exit_channel.values():
                guards.append(Not(NumAvailable(channel, 1)))
        else:
            # Immediate termination destroys in-flight cluster data.
            flush_rules[(router_name, switch_mode)] = tuple(
                all_internal + list(exit_channel.values())
            )
        switch_rules.append(
            ActivationRule(
                name=f"r_{switch_mode}",
                predicate=_conjoin(guards),
                mode=switch_mode,
            )
        )

        route_mode = f"to_{cluster_name}"
        router_modes[route_mode] = ProcessMode(
            name=route_mode,
            latency=Interval.zero(),
            consumes={in_channel: 1},
            produces={entry_channel[cluster_name]: 1},
            pass_tags=(entry_channel[cluster_name],),
        )
        route_rules.append(
            ActivationRule(
                name=f"r_{route_mode}",
                predicate=(
                    NumAvailable(in_channel, 1)
                    & HasTag(selection_channel, f"cur:{cluster_name}")
                ),
                mode=route_mode,
            )
        )

    builder.process(
        Process(
            name=router_name,
            modes=router_modes,
            activation=ActivationFunction(
                tuple(switch_rules + route_rules)
            ),
        )
    )

    return ExpandedInterface(
        interface=name,
        router=router_name,
        merger=merger_name,
        selection_channel=selection_channel,
        flush_rules=flush_rules,
        internal_channels=internal_channels,
    )


def _conjoin(guards: List[Predicate]) -> Predicate:
    if len(guards) == 1:
        return guards[0]
    return And(tuple(guards))
