"""Clusters — Definition 1 of the paper.

A cluster is a tuple ``(I, O, P, C, E, F)``: input ports, output ports,
embedded processes, embedded channels, embedded edges, and embedded
interfaces (allowing variant sets to nest).  "Clustering does not add
functionality to the model and is only a structuring concept"; the one
restriction is that a cluster, like a process, can only be connected to
channels, and that the out-degree of input ports and the in-degree of
output ports is at most one.

Representation choice: the embedded elements are held in an ordinary
:class:`~repro.spi.graph.ModelGraph`, and the ports are *boundary
channels* of that graph — channels named like the port, with no
internal writer (input ports) or no internal reader (output ports).
When the cluster is instantiated (static binding or simulation), each
boundary channel is merged with the external channel bound to that
port, which implements "connected to channels only" directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from .._frozen import proxy_pickle_methods
from ..errors import VariantError
from ..spi.graph import ModelGraph
from ..spi.intervals import Interval
from .ports import PortSignature


@dataclass(frozen=True, eq=False)
class Cluster:
    """One function variant: a subgraph exchangeable at an interface.

    Parameters
    ----------
    name:
        Cluster name, unique within its interface.
    inputs / outputs:
        Port names.  Each must exist in ``graph`` as a boundary channel
        (see module docstring).
    graph:
        The embedded processes, channels and edges.
    interfaces:
        Embedded interfaces (the ``F`` component of Def. 1) for nested
        variant sets, mapped to their port→channel bindings inside this
        cluster.  Stored loosely to avoid import cycles; the
        :class:`~repro.variants.vgraph.VariantGraph` machinery resolves
        them during binding.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    graph: ModelGraph
    interfaces: Mapping[str, object] = field(default_factory=dict)
    interface_bindings: Mapping[str, Mapping[str, str]] = field(
        default_factory=dict
    )

    __getstate__, __setstate__ = proxy_pickle_methods(
        "interfaces", "interface_bindings"
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise VariantError("cluster name must be non-empty")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        object.__setattr__(
            self, "interfaces", MappingProxyType(dict(self.interfaces))
        )
        object.__setattr__(
            self,
            "interface_bindings",
            MappingProxyType(
                {k: dict(v) for k, v in dict(self.interface_bindings).items()}
            ),
        )
        # Signature sanity (uniqueness across inputs/outputs).
        PortSignature(self.inputs, self.outputs)
        self._check_ports()
        missing = set(self.interface_bindings) - set(self.interfaces)
        if missing:
            raise VariantError(
                f"cluster {self.name!r}: bindings for unknown embedded "
                f"interfaces {sorted(missing)}"
            )

    def _check_ports(self) -> None:
        for port in self.inputs:
            if not self.graph.has_channel(port):
                raise VariantError(
                    f"cluster {self.name!r}: input port {port!r} has no "
                    f"boundary channel in the embedded graph"
                )
            if self.graph.writer_of(port) is not None:
                raise VariantError(
                    f"cluster {self.name!r}: input port {port!r} must not "
                    f"have an internal writer"
                )
        for port in self.outputs:
            if not self.graph.has_channel(port):
                raise VariantError(
                    f"cluster {self.name!r}: output port {port!r} has no "
                    f"boundary channel in the embedded graph"
                )
            if self.graph.reader_of(port) is not None:
                raise VariantError(
                    f"cluster {self.name!r}: output port {port!r} must not "
                    f"have an internal reader"
                )

    # ------------------------------------------------------------------
    @property
    def signature(self) -> PortSignature:
        """The cluster's exchangeability contract."""
        return PortSignature(self.inputs, self.outputs)

    @property
    def ports(self) -> Tuple[str, ...]:
        """All port names, inputs first."""
        return self.inputs + self.outputs

    def entry_process(self, port: str) -> Optional[str]:
        """The process reading from input port ``port`` (or None)."""
        if port not in self.inputs:
            raise VariantError(
                f"cluster {self.name!r} has no input port {port!r}"
            )
        return self.graph.reader_of(port)

    def exit_process(self, port: str) -> Optional[str]:
        """The process writing to output port ``port`` (or None)."""
        if port not in self.outputs:
            raise VariantError(
                f"cluster {self.name!r} has no output port {port!r}"
            )
        return self.graph.writer_of(port)

    def internal_channels(self) -> Tuple[str, ...]:
        """Embedded channels that are not boundary (port) channels."""
        ports = set(self.ports)
        return tuple(
            sorted(c for c in self.graph.channels if c not in ports)
        )

    def process_names(self) -> Tuple[str, ...]:
        """Embedded process names, sorted."""
        return tuple(sorted(self.graph.processes))

    def latency_bounds(self) -> Interval:
        """Hull of the latency intervals of all embedded processes.

        A crude cluster-level bound used for quick feasibility screens;
        parameter extraction computes tighter per-mode values.
        """
        processes = list(self.graph.processes.values())
        if not processes:
            return Interval.zero()
        result = processes[0].latency_bounds()
        for process in processes[1:]:
            result = result.hull(process.latency_bounds())
        return result

    def stats(self) -> Dict[str, int]:
        """Element counts (used by the Figure 2 accounting bench)."""
        counts = self.graph.stats()
        counts["ports"] = len(self.ports)
        counts["embedded_interfaces"] = len(self.interfaces)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster({self.name!r}, in={list(self.inputs)}, "
            f"out={list(self.outputs)}, "
            f"processes={list(self.process_names())})"
        )
