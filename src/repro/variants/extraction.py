"""Parameter extraction: abstracting clusters to process modes.

The paper's approach to dynamic function variant selection (§4) is "to
abstract clusters to processes and to use the concept of process modes
to represent dynamic function variant selection": the set of clusters
of an interface is mapped to a set of process modes, grouped into
configurations (Def. 4), and an activation function is derived that
combines the interface's cluster selection rules with per-mode token
availability guards — the paper's

    a1 : CIn.num >= x  and  CV.num >= 1  and  'V1' in CV.tag  -> conf1

where "x and y result from the parameter extraction process".

Two levels of abstraction detail are provided ("additional designer
knowledge allows abstraction at different levels of detail", §4):

* ``single`` — one mode per cluster; rates aggregate one full cluster
  iteration (via the balance equations when the cluster is determinate)
  and the latency interval conservatively brackets the critical path.
* ``per_entry`` — one mode per mode of the cluster's *entry process*
  (the paper's example extracts two modes from cluster 1 and three from
  cluster 2 this way); supported for pipeline-shaped clusters, with
  interval dataflow propagation along the chain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import ExtractionError
from ..spi.activation import ActivationFunction, ActivationRule
from ..spi.analysis import balance_equations, is_determinate_dataflow, topological_order
from ..spi.channels import Channel, register
from ..spi.intervals import Interval
from ..spi.modes import ProcessMode
from ..spi.predicates import And, HasTag, NumAvailable, Predicate
from ..spi.tags import TagSet
from ..spi.tokens import Token
from .cluster import Cluster
from .configuration import Configuration, ConfigurationSet, ConfiguredProcess
from .interface import Interface


@dataclass(frozen=True)
class ExtractionOptions:
    """Knobs for the extraction process.

    ``detail`` selects the abstraction level; with ``fallback=True``
    (default) clusters that do not fit the ``per_entry`` shape degrade
    gracefully to ``single`` instead of failing.
    """

    detail: str = "per_entry"
    fallback: bool = True
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.detail not in {"per_entry", "single"}:
            raise ExtractionError(
                f"unknown extraction detail {self.detail!r} "
                f"(use 'per_entry' or 'single')"
            )


# ----------------------------------------------------------------------
# Cluster-level extraction
# ----------------------------------------------------------------------
def extract_cluster_modes(
    cluster: Cluster,
    bindings: Mapping[str, str],
    options: ExtractionOptions = ExtractionOptions(),
) -> List[ProcessMode]:
    """Extract the external-behavior modes of one cluster.

    ``bindings`` maps the cluster's port names to the external channel
    names the extracted modes should reference.  Mode names are
    ``<cluster>.<entry-mode>`` (``per_entry``) or ``<cluster>``
    (``single``).
    """
    missing = set(cluster.ports) - set(bindings)
    if missing:
        raise ExtractionError(
            f"cluster {cluster.name!r}: no binding for ports "
            f"{sorted(missing)}"
        )
    if options.detail == "per_entry":
        try:
            return _per_entry_modes(cluster, bindings)
        except ExtractionError:
            if not options.fallback:
                raise
    return [_single_mode(cluster, bindings)]


def _single_mode(
    cluster: Cluster, bindings: Mapping[str, str]
) -> ProcessMode:
    """One mode summarizing a full cluster iteration."""
    graph = cluster.graph
    if not graph.processes:
        raise ExtractionError(
            f"cluster {cluster.name!r} embeds no processes"
        )
    repetition: Optional[Dict[str, int]] = None
    if is_determinate_dataflow(graph):
        repetition = balance_equations(graph)

    consumes: Dict[str, object] = {}
    produces: Dict[str, object] = {}
    out_tags: Dict[str, TagSet] = {}

    for port in cluster.inputs:
        reader = cluster.entry_process(port)
        if reader is None:
            continue
        process = graph.process(reader)
        per_firing = process.consumption_bounds(port)
        factor = repetition.get(reader, 1) if repetition else 1
        consumes[bindings[port]] = per_firing.scaled(factor)
    for port in cluster.outputs:
        writer = cluster.exit_process(port)
        if writer is None:
            continue
        process = graph.process(writer)
        per_firing = process.production_bounds(port)
        factor = repetition.get(writer, 1) if repetition else 1
        produces[bindings[port]] = per_firing.scaled(factor)
        tags = _port_tags(cluster, port)
        if tags:
            out_tags[bindings[port]] = tags

    return ProcessMode(
        name=cluster.name,
        latency=_iteration_latency(cluster, repetition),
        consumes=consumes,
        produces=produces,
        out_tags=out_tags,
    )


def _per_entry_modes(
    cluster: Cluster, bindings: Mapping[str, str]
) -> List[ProcessMode]:
    """One extracted mode per entry-process mode (pipeline clusters)."""
    chain = _chain_of(cluster)
    entry = cluster.graph.process(chain[0])
    modes: List[ProcessMode] = []
    for entry_mode in entry.mode_list:
        modes.append(
            _propagate_chain(cluster, chain, entry_mode, bindings)
        )
    return modes


def _chain_of(cluster: Cluster) -> List[str]:
    """The linear process chain of a pipeline cluster, entry first.

    Raises :class:`ExtractionError` when the cluster is not a pipeline:
    multiple entry processes, branching, or disconnected parts.
    """
    graph = cluster.graph
    if not graph.processes:
        raise ExtractionError(
            f"cluster {cluster.name!r} embeds no processes"
        )
    if len(cluster.inputs) != 1 or len(cluster.outputs) != 1:
        raise ExtractionError(
            f"cluster {cluster.name!r}: per-entry extraction needs exactly "
            f"one input and one output port"
        )
    entry = cluster.entry_process(cluster.inputs[0])
    exit_ = cluster.exit_process(cluster.outputs[0])
    if entry is None or exit_ is None:
        raise ExtractionError(
            f"cluster {cluster.name!r}: ports must be wired to processes"
        )
    order = topological_order(graph)
    if order is None:
        raise ExtractionError(
            f"cluster {cluster.name!r}: internal feedback loops prevent "
            f"per-entry extraction"
        )
    chain: List[str] = [entry]
    current = entry
    while current != exit_:
        successors = graph.successors(current)
        if len(successors) != 1:
            raise ExtractionError(
                f"cluster {cluster.name!r}: process {current!r} has "
                f"{len(successors)} successors; per-entry extraction "
                f"supports linear pipelines"
            )
        current = successors[0]
        if current in chain:
            raise ExtractionError(
                f"cluster {cluster.name!r}: cycle at {current!r}"
            )
        chain.append(current)
    if set(chain) != set(graph.processes):
        stray = sorted(set(graph.processes) - set(chain))
        raise ExtractionError(
            f"cluster {cluster.name!r}: processes {stray} are not on the "
            f"entry-to-exit chain"
        )
    return chain


def _propagate_chain(
    cluster: Cluster,
    chain: Sequence[str],
    entry_mode: ProcessMode,
    bindings: Mapping[str, str],
) -> ProcessMode:
    """Interval dataflow propagation of one entry mode down the chain."""
    graph = cluster.graph
    in_port = cluster.inputs[0]
    out_port = cluster.outputs[0]

    consumption = entry_mode.consumption(in_port)
    latency = entry_mode.latency
    # Token count flowing on the channel between consecutive stages.
    if len(chain) == 1:
        production = entry_mode.production(out_port)
    else:
        first_link = _link_channel(graph, chain[0], chain[1])
        count = entry_mode.production(first_link)
        for index in range(1, len(chain)):
            stage = graph.process(chain[index])
            link_in = _link_channel(graph, chain[index - 1], chain[index])
            cons = stage.consumption_bounds(link_in)
            if cons.lo <= 0:
                raise ExtractionError(
                    f"cluster {cluster.name!r}: stage {stage.name!r} does "
                    f"not consume from {link_in!r}"
                )
            firings = Interval(
                math.ceil(count.lo / cons.hi) if cons.hi else 0,
                math.ceil(count.hi / cons.lo),
            )
            latency = latency + Interval(
                firings.lo * stage.latency_bounds().lo,
                firings.hi * stage.latency_bounds().hi,
            )
            out_channel = (
                out_port
                if index == len(chain) - 1
                else _link_channel(graph, chain[index], chain[index + 1])
            )
            prod = stage.production_bounds(out_channel)
            count = Interval(
                firings.lo * prod.lo, firings.hi * prod.hi
            )
        production = count

    consumes: Dict[str, object] = {}
    if consumption.hi > 0:
        consumes[bindings[in_port]] = consumption
    produces: Dict[str, object] = {}
    out_tags: Dict[str, TagSet] = {}
    pass_tags = ()
    if production.hi > 0:
        produces[bindings[out_port]] = production
        tags = _port_tags(cluster, out_port)
        if tags:
            out_tags[bindings[out_port]] = tags
        if _chain_propagates_tags(cluster, chain, entry_mode):
            pass_tags = (bindings[out_port],)

    return ProcessMode(
        name=f"{cluster.name}.{entry_mode.name}",
        latency=latency,
        consumes=consumes,
        produces=produces,
        out_tags=out_tags,
        pass_tags=pass_tags,
    )


def _chain_propagates_tags(
    cluster: Cluster, chain: Sequence[str], entry_mode: ProcessMode
) -> bool:
    """True if input tags flow through every stage to the output port.

    The entry mode and every mode of every downstream stage must
    declare tag pass-through on their respective output channel; then
    the abstracted mode faithfully inherits the cluster's end-to-end
    tag propagation.
    """
    graph = cluster.graph
    out_port = cluster.outputs[0]
    first_out = (
        out_port
        if len(chain) == 1
        else _link_channel(graph, chain[0], chain[1])
    )
    if first_out not in entry_mode.pass_tags:
        return False
    for index in range(1, len(chain)):
        stage = graph.process(chain[index])
        stage_out = (
            out_port
            if index == len(chain) - 1
            else _link_channel(graph, chain[index], chain[index + 1])
        )
        for mode in stage.mode_list:
            if stage_out not in mode.pass_tags:
                return False
    return True


def _link_channel(graph, source: str, target: str) -> str:
    """The unique channel connecting two chain stages."""
    for channel in graph.output_channels(source):
        if graph.reader_of(channel) == target:
            return channel
    raise ExtractionError(
        f"no channel connects {source!r} to {target!r}"
    )


def _port_tags(cluster: Cluster, port: str) -> TagSet:
    """Union of tags the exit process may attach on ``port``."""
    writer = cluster.exit_process(port)
    if writer is None:
        return TagSet.empty()
    tags = TagSet.empty()
    for mode in cluster.graph.process(writer).mode_list:
        tags = tags | mode.tags_for(port)
    return tags


def _iteration_latency(
    cluster: Cluster, repetition: Optional[Dict[str, int]]
) -> Interval:
    """Conservative latency interval for one cluster iteration.

    Lower bound: the cheapest entry-to-exit path using per-process lower
    bounds (maximum over ports so that the bound is a true minimum
    makespan witness).  Upper bound: fully serialized execution — every
    process fires its repetition count at its upper latency.
    """
    graph = cluster.graph
    upper = 0.0
    for name, process in graph.processes.items():
        factor = repetition.get(name, 1) if repetition else 1
        upper += factor * process.latency_bounds().hi

    lower = 0.0
    for in_port in cluster.inputs:
        entry = cluster.entry_process(in_port)
        if entry is None:
            continue
        for out_port in cluster.outputs:
            exit_ = cluster.exit_process(out_port)
            if exit_ is None:
                continue
            path_lower = _shortest_path_lower(graph, entry, exit_)
            if path_lower is not None:
                lower = max(lower, path_lower)
    lower = min(lower, upper)
    return Interval(lower, upper)


def _shortest_path_lower(graph, source: str, target: str) -> Optional[float]:
    """Minimal sum of lower-bound latencies along any source→target path."""
    best: Dict[str, float] = {source: graph.process(source).latency_bounds().lo}
    frontier = [source]
    while frontier:
        node = frontier.pop(0)
        for successor in graph.successors(node):
            cost = best[node] + graph.process(successor).latency_bounds().lo
            if successor not in best or cost < best[successor]:
                best[successor] = cost
                frontier.append(successor)
    return best.get(target)


# ----------------------------------------------------------------------
# Interface-level extraction
# ----------------------------------------------------------------------
def extract_interface(
    interface: Interface,
    bindings: Mapping[str, str],
    options: ExtractionOptions = ExtractionOptions(),
) -> ConfiguredProcess:
    """Abstract an interface to a single configured process (paper §4).

    Requires a cluster selection function (run-time or dynamic variant
    sets); production variants are *bound*, not abstracted.  The
    derived activation rules conjoin, per extracted mode,

    * the interface's selection predicate for the mode's cluster, and
    * a token-availability guard ``num(c) >= x`` per consumed channel,
      where ``x`` is the mode's worst-case consumption — the paper's
      "x and y result from the parameter extraction process".
    """
    if interface.selection is None:
        raise ExtractionError(
            f"interface {interface.name!r} has no cluster selection "
            f"function; production variants are bound statically instead"
        )

    modes: Dict[str, ProcessMode] = {}
    rules: List[ActivationRule] = []
    configurations: List[Configuration] = []

    for cluster_name in interface.cluster_names():
        cluster = interface.cluster(cluster_name)
        selection_rule = interface.selection.rule_for(cluster_name)
        if selection_rule is None:
            raise ExtractionError(
                f"interface {interface.name!r}: no selection rule for "
                f"cluster {cluster_name!r}"
            )
        extracted = extract_cluster_modes(cluster, bindings, options)
        mode_names: List[str] = []
        for mode in extracted:
            if mode.name in modes:
                raise ExtractionError(
                    f"duplicate extracted mode name {mode.name!r}"
                )
            modes[mode.name] = mode
            mode_names.append(mode.name)
            rules.append(
                ActivationRule(
                    name=f"a_{mode.name}",
                    predicate=_guarded(selection_rule.predicate, mode),
                    mode=mode.name,
                )
            )
        configurations.append(
            Configuration(
                name=f"conf_{cluster_name}",
                modes=tuple(mode_names),
                latency=interface.latency_of(cluster_name),
                source_cluster=cluster_name,
            )
        )

    initial = (
        f"conf_{interface.initial_cluster}"
        if interface.initial_cluster is not None
        else None
    )
    return ConfiguredProcess(
        name=options.name or interface.name,
        modes=modes,
        activation=ActivationFunction(tuple(rules)),
        configurations=ConfigurationSet(tuple(configurations)),
        initial_configuration=initial,
        source_interface=interface.name,
    )


def _guarded(selection_predicate: Predicate, mode: ProcessMode) -> Predicate:
    """Conjoin the selection predicate with consumption guards."""
    guards: List[Predicate] = []
    for channel, amount in sorted(mode.consumes.items()):
        needed = int(math.ceil(amount.hi))
        if needed > 0:
            guards.append(NumAvailable(channel, needed))
    if not guards:
        return selection_predicate
    return And(tuple([*guards, selection_predicate]))


# ----------------------------------------------------------------------
# Dynamic (request/confirm) extraction — the Figure 4 protocol shape
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DynamicExtraction:
    """Result of :func:`extract_dynamic_interface`.

    ``process`` is the abstracted configured process; ``state_channel``
    is the self-loop register (paper: "to keep state information from
    one execution to the next, [the process] sends tokens to itself")
    that the caller must add to the graph and wire as both input and
    output of the process.
    """

    process: ConfiguredProcess
    state_channel: Channel


def extract_dynamic_interface(
    interface: Interface,
    bindings: Mapping[str, str],
    request_channel: str,
    confirm_channel: str,
    options: ExtractionOptions = ExtractionOptions(),
    request_tag_prefix: str = "sel:",
    state_tag_prefix: str = "cur:",
) -> DynamicExtraction:
    """Abstract a dynamically reconfigured interface (Figure 4 style).

    The controller writes request tokens tagged
    ``<request_tag_prefix><cluster>`` on ``request_channel`` (a queue).
    Per cluster ``v`` the extraction derives:

    * an **enter** mode — consumes the request token, emits the
      confirmation token on ``confirm_channel`` ("the generation of
      this token is not part of the reconfiguration step but part of
      the selected mode", §5) and records ``cur:v`` on the state
      register; it deliberately touches no data channels, so the
      subsystem can acknowledge a reconfiguration even while the
      upstream valve has cut the stream off;
    * one **run** mode per extracted processing mode — guarded by the
      state register holding ``cur:v`` and the absence of a pending
      request (requests take priority through rule ordering).

    All modes of cluster ``v`` belong to configuration ``conf_v``, so
    the simulator's Def.-4 rule inserts the reconfiguration latency
    exactly when a request switches clusters.
    """
    if interface.initial_cluster is None:
        raise ExtractionError(
            f"interface {interface.name!r}: dynamic extraction needs an "
            f"initial cluster (the architecture boots configured)"
        )
    state_name = f"{interface.name}__state"
    modes: Dict[str, ProcessMode] = {}
    rules_priority: List[ActivationRule] = []
    rules_normal: List[ActivationRule] = []
    configurations: List[Configuration] = []

    for cluster_name in interface.cluster_names():
        cluster = interface.cluster(cluster_name)
        extracted = extract_cluster_modes(cluster, bindings, options)
        enter_name = f"{cluster_name}.enter"
        enter = ProcessMode(
            name=enter_name,
            latency=Interval.zero(),
            consumes={request_channel: Interval.point(1)},
            produces={
                confirm_channel: Interval.point(1),
                state_name: Interval.point(1),
            },
            out_tags={
                state_name: TagSet.of(f"{state_tag_prefix}{cluster_name}"),
                confirm_channel: TagSet.of(f"done:{interface.name}"),
            },
        )
        modes[enter.name] = enter
        mode_names = [enter.name]
        enter_guards: List[Predicate] = [
            NumAvailable(request_channel, 1),
            HasTag(request_channel, f"{request_tag_prefix}{cluster_name}"),
        ]
        rules_priority.append(
            ActivationRule(
                name=f"a_{enter.name}",
                predicate=And(tuple(enter_guards)),
                mode=enter.name,
            )
        )

        for mode in extracted:
            run_name = f"{cluster_name}.run.{mode.name.split('.')[-1]}"
            run = ProcessMode(
                name=run_name,
                latency=mode.latency,
                consumes=dict(mode.consumes),
                produces=dict(mode.produces),
                out_tags=dict(mode.out_tags),
                pass_tags=mode.pass_tags,
            )
            modes[run.name] = run
            mode_names.append(run.name)
            run_guards: List[Predicate] = [
                HasTag(state_name, f"{state_tag_prefix}{cluster_name}"),
            ]
            for channel, amount in sorted(mode.consumes.items()):
                needed = int(math.ceil(amount.hi))
                if needed > 0:
                    run_guards.append(NumAvailable(channel, needed))
            rules_normal.append(
                ActivationRule(
                    name=f"a_{run.name}",
                    predicate=And(tuple(run_guards)),
                    mode=run.name,
                )
            )

        configurations.append(
            Configuration(
                name=f"conf_{cluster_name}",
                modes=tuple(mode_names),
                latency=interface.latency_of(cluster_name),
                source_cluster=cluster_name,
            )
        )

    process = ConfiguredProcess(
        name=options.name or interface.name,
        modes=modes,
        activation=ActivationFunction(
            tuple(rules_priority + rules_normal)
        ),
        configurations=ConfigurationSet(tuple(configurations)),
        initial_configuration=f"conf_{interface.initial_cluster}",
        source_interface=interface.name,
    )
    state_channel = register(
        state_name,
        initial_tokens=[
            Token(
                tags=TagSet.of(
                    f"{state_tag_prefix}{interface.initial_cluster}"
                )
            )
        ],
    )
    return DynamicExtraction(process=process, state_channel=state_channel)
