"""Ports and port signatures.

Clusters communicate through the cluster border via input and output
ports (paper Def. 1).  An interface is usable by a set of clusters only
if every cluster *matches the interface in terms of input and output
ports* (paper Def. 2) — otherwise the clusters "could not be reasonably
exchanged by each other".  A :class:`PortSignature` captures exactly
that exchangeability contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..errors import VariantError


class PortDirection(enum.Enum):
    """Whether data flows into or out of the cluster."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Port:
    """A named, directed port on a cluster or interface border."""

    name: str
    direction: PortDirection

    def __post_init__(self) -> None:
        if not self.name:
            raise VariantError("port name must be non-empty")


@dataclass(frozen=True)
class PortSignature:
    """The (inputs, outputs) contract shared by interface and clusters."""

    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        all_ports = self.inputs + self.outputs
        if len(set(all_ports)) != len(all_ports):
            raise VariantError(
                f"port names must be unique within a signature, "
                f"got {all_ports}"
            )

    def matches(self, other: "PortSignature") -> bool:
        """True if both signatures expose the same ports.

        Port *names* and directions must coincide; order is irrelevant
        because connections are made by name.
        """
        return set(self.inputs) == set(other.inputs) and set(
            self.outputs
        ) == set(other.outputs)

    @property
    def ports(self) -> Tuple[Port, ...]:
        """All ports as :class:`Port` objects, inputs first."""
        return tuple(
            [Port(name, PortDirection.INPUT) for name in self.inputs]
            + [Port(name, PortDirection.OUTPUT) for name in self.outputs]
        )

    def direction_of(self, port: str) -> PortDirection:
        """Direction of a named port."""
        if port in self.inputs:
            return PortDirection.INPUT
        if port in self.outputs:
            return PortDirection.OUTPUT
        raise VariantError(f"no port named {port!r} in signature")

    def __contains__(self, port: str) -> bool:
        return port in self.inputs or port in self.outputs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortSignature(in={list(self.inputs)}, out={list(self.outputs)})"
        )
