"""The paper's taxonomy of function variant types (§1, §4).

* **Production variants** are selected by the designer at production
  time (e.g. downloading one software variant into an EPROM); the final
  product contains a single variant and *no* selection mechanism, so
  the selection "is not part of the system's functionality and does not
  have to be modeled".
* **Run-time variants** are selected once at system start-up (boot
  switches, flash parameters) and then remain fixed.
* **Dynamic variants** are (re)selected during operation by a higher
  level component, as in reconfigurable architectures — what appears as
  a variant at the subsystem level becomes a system mode at the
  controller level.

The same representational constructs (interface + clusters) cover all
three; the kind determines which transformations are legal:
production → static binding only; run-time → selection evaluated once;
dynamic → full reconfiguration semantics with configuration latencies.
"""

from __future__ import annotations

import enum


class VariantKind(enum.Enum):
    """When in the product's life time the variant is selected."""

    PRODUCTION = "production"
    RUNTIME = "runtime"
    DYNAMIC = "dynamic"

    @property
    def needs_selection_function(self) -> bool:
        """Whether this kind requires selection rules in the model."""
        return self is not VariantKind.PRODUCTION

    @property
    def reconfigurable(self) -> bool:
        """Whether the selection may change during system operation."""
        return self is VariantKind.DYNAMIC
