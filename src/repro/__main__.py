"""Command-line front-end: regenerate the paper's results from a shell.

Usage::

    python -m repro table1
    python -m repro figure1 [--tag a|b|none]
    python -m repro figure3 [--variant V1|V2]
    python -m repro figure4 [--no-valves] [--frames N]
    python -m repro stats
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> int:
    from .apps import figure2
    from .report.tables import render_dict_rows

    rows = figure2.table1_rows()
    print(render_dict_rows(rows, title="Table 1: System Cost"))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from .apps import figure1
    from .spi.semantics import StepSemantics

    tag = None if args.tag == "none" else args.tag
    graph = figure1.build_graph(p1_tag=tag, input_tokens=args.tokens)
    for name, interval in figure1.interval_summary(graph).items():
        print(f"{name:<16} {interval!r}")
    semantics = StepSemantics(graph)
    semantics.run(max_steps=1000)
    print(f"\nfirings: {dict(sorted(semantics.firing_counts.items()))}")
    print(f"occupancy: {semantics.occupancy()}")
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from .apps import figure3

    trace, _ = figure3.simulate_runtime_selection(
        args.variant, stream_tokens=args.tokens
    )
    for key, value in figure3.selection_report(trace).items():
        print(f"{key:<20} {value}")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .apps import video

    trace, _ = video.run_video(
        n_frames=args.frames, with_valves=not args.no_valves
    )
    for key, value in video.video_report(trace).items():
        print(f"{key:<26} {value}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .apps import figure2

    stats = figure2.build_variant_graph().stats()
    print("common part          :", stats["common"])
    for name, iface in stats["interfaces"].items():
        for cluster, counts in iface["clusters"].items():
            print(f"{name}/{cluster:<14}:", counts)
    print("variant representation:", stats["variant_representation_size"])
    print("enumeration           :", stats["enumeration_size"])
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Representation of Function Variants for "
            "Embedded System Optimization and Synthesis' (DAC 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="reproduce Table 1").set_defaults(
        run=_cmd_table1
    )

    fig1 = sub.add_parser("figure1", help="run the Figure 1 SPI example")
    fig1.add_argument("--tag", choices=["a", "b", "none"], default="a")
    fig1.add_argument("--tokens", type=int, default=12)
    fig1.set_defaults(run=_cmd_figure1)

    fig3 = sub.add_parser("figure3", help="run-time variant selection")
    fig3.add_argument("--variant", choices=["V1", "V2"], default="V1")
    fig3.add_argument("--tokens", type=int, default=10)
    fig3.set_defaults(run=_cmd_figure3)

    fig4 = sub.add_parser("figure4", help="reconfigurable video system")
    fig4.add_argument("--frames", type=int, default=100)
    fig4.add_argument("--no-valves", action="store_true")
    fig4.set_defaults(run=_cmd_figure4)

    sub.add_parser(
        "stats", help="Figure 2 representation accounting"
    ).set_defaults(run=_cmd_stats)

    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
