"""Command-line front-end: regenerate the paper's results from a shell.

Usage::

    python -m repro table1
    python -m repro figure1 [--tag a|b|none]
    python -m repro figure3 [--variant V1|V2]
    python -m repro figure4 [--no-valves] [--frames N]
    python -m repro stats
    python -m repro explore [--space figure2|generated] [--explorer E]
                            [--jobs N] [--lineage-size K]
                            [--ordering static|density|adaptive]
                            [--frontier dfs|best-first|lds|beam|hybrid]
                            [--max-open N]
                            [--no-dynamic-pool] [--share-incumbent]
    python -m repro serve   [--host H] [--port P] [--workers N]
                            [--cache-size N] [--max-queue N]
                            [--max-jobs N] [--state-dir DIR]
                            [--max-open-nodes N] [--queue-deadline S]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> int:
    from .apps import figure2
    from .report.tables import render_dict_rows

    rows = figure2.table1_rows()
    print(render_dict_rows(rows, title="Table 1: System Cost"))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from .apps import figure1
    from .spi.semantics import StepSemantics

    tag = None if args.tag == "none" else args.tag
    graph = figure1.build_graph(p1_tag=tag, input_tokens=args.tokens)
    for name, interval in figure1.interval_summary(graph).items():
        print(f"{name:<16} {interval!r}")
    semantics = StepSemantics(graph)
    semantics.run(max_steps=1000)
    print(f"\nfirings: {dict(sorted(semantics.firing_counts.items()))}")
    print(f"occupancy: {semantics.occupancy()}")
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from .apps import figure3

    trace, _ = figure3.simulate_runtime_selection(
        args.variant, stream_tokens=args.tokens
    )
    for key, value in figure3.selection_report(trace).items():
        print(f"{key:<20} {value}")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .apps import video

    trace, _ = video.run_video(
        n_frames=args.frames, with_valves=not args.no_valves
    )
    for key, value in video.video_report(trace).items():
        print(f"{key:<26} {value}")
    return 0


def _make_explorer(
    name: str,
    reference: bool,
    ordering: str = "adaptive",
    dynamic_pool: bool = True,
    share_incumbent: bool = False,
    frontier: str = "dfs",
    backend: Optional[str] = None,
    max_open: Optional[int] = None,
):
    from .synth.explorer import (
        AnnealingExplorer,
        BranchBoundExplorer,
        ExhaustiveExplorer,
        PortfolioExplorer,
    )
    from .synth.parallel import RacingPortfolioExplorer

    incremental = not reference
    factories = {
        "exhaustive": lambda: ExhaustiveExplorer(
            incremental=incremental, backend=backend
        ),
        "bnb": lambda: BranchBoundExplorer(
            incremental=incremental,
            ordering=ordering,
            dynamic_pool=dynamic_pool,
            frontier=frontier,
            backend=backend,
            max_open=max_open,
        ),
        "annealing": lambda: AnnealingExplorer(
            seed=0, iterations=4000, incremental=incremental, backend=backend
        ),
        "portfolio": lambda: PortfolioExplorer(
            incremental=incremental, backend=backend, max_open=max_open
        ),
        # --share-incumbent also wires the racing members to each
        # other (annealing publishes, branch-and-bound prunes), not
        # just the cross-lineage cell of explore_space.  --frontier
        # adds a second exact member racing the DFS one.
        "racing": lambda: RacingPortfolioExplorer(
            incremental=incremental,
            share_incumbent=share_incumbent,
            frontier=frontier,
            backend=backend,
        ),
    }
    return factories[name]()


def _cmd_explore(args: argparse.Namespace) -> int:
    from .report.tables import render_dict_rows
    from .synth.methods import ProblemFamily, explore_space
    from .variants.variant_space import VariantSpace

    if args.space == "figure2":
        from .apps import figure2

        family = figure2.table1_family()
        space = figure2.variant_space()
    else:
        from .apps.generators import generate_system

        system = generate_system(
            seed=args.seed,
            n_variants=args.variants,
            cluster_size=args.cluster_size,
        )
        family = ProblemFamily(
            name=f"generated(seed={args.seed})",
            library=system.library,
            architecture=system.architecture,
        )
        space = VariantSpace(system.vgraph)

    explorer = _make_explorer(
        args.explorer,
        args.reference,
        ordering=args.ordering,
        dynamic_pool=not args.no_dynamic_pool,
        share_incumbent=args.share_incumbent,
        frontier=args.frontier,
        backend=None if args.backend == "auto" else args.backend,
        max_open=args.max_open,
    )
    outcome = explore_space(
        family,
        space,
        explorer,
        warm_start=not args.no_warm_start,
        jobs=args.jobs,
        lineage_size=args.lineage_size,
        share_incumbent=args.share_incumbent,
    )
    jobs_note = f", jobs={args.jobs}" if args.jobs is not None else ""
    title = (
        f"Variant space of {family.name}: {len(outcome)} selections "
        f"({args.explorer}{', reference' if args.reference else ''}"
        f"{jobs_note})"
    )
    print(render_dict_rows(outcome.summary_rows(), title=title))
    best = outcome.best()
    best_selection = ", ".join(
        f"{iface}={cluster}"
        for iface, cluster in sorted(best.selection.items())
    )
    print()
    print(f"best selection : {best_selection} (cost {best.cost:g})")
    print(f"worst selection: cost {outcome.worst().cost:g}")
    print(f"total nodes    : {outcome.total_nodes}")
    print(f"total evals    : {outcome.total_evaluations}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.http import serve_main

    return serve_main(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        max_queue=args.max_queue,
        max_jobs=args.max_jobs,
        state_dir=args.state_dir,
        max_open_nodes=args.max_open_nodes,
        queue_deadline=args.queue_deadline,
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    from .apps import figure2

    stats = figure2.build_variant_graph().stats()
    print("common part          :", stats["common"])
    for name, iface in stats["interfaces"].items():
        for cluster, counts in iface["clusters"].items():
            print(f"{name}/{cluster:<14}:", counts)
    print("variant representation:", stats["variant_representation_size"])
    print("enumeration           :", stats["enumeration_size"])
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Representation of Function Variants for "
            "Embedded System Optimization and Synthesis' (DAC 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="reproduce Table 1").set_defaults(
        run=_cmd_table1
    )

    fig1 = sub.add_parser("figure1", help="run the Figure 1 SPI example")
    fig1.add_argument("--tag", choices=["a", "b", "none"], default="a")
    fig1.add_argument("--tokens", type=int, default=12)
    fig1.set_defaults(run=_cmd_figure1)

    fig3 = sub.add_parser("figure3", help="run-time variant selection")
    fig3.add_argument("--variant", choices=["V1", "V2"], default="V1")
    fig3.add_argument("--tokens", type=int, default=10)
    fig3.set_defaults(run=_cmd_figure3)

    fig4 = sub.add_parser("figure4", help="reconfigurable video system")
    fig4.add_argument("--frames", type=int, default=100)
    fig4.add_argument("--no-valves", action="store_true")
    fig4.set_defaults(run=_cmd_figure4)

    sub.add_parser(
        "stats", help="Figure 2 representation accounting"
    ).set_defaults(run=_cmd_stats)

    explore = sub.add_parser(
        "explore", help="batch-explore a variant combination space"
    )
    explore.add_argument(
        "--space", choices=["figure2", "generated"], default="figure2"
    )
    explore.add_argument(
        "--explorer",
        choices=["exhaustive", "bnb", "annealing", "portfolio", "racing"],
        default="bnb",
    )
    explore.add_argument("--variants", type=int, default=3)
    explore.add_argument("--cluster-size", type=int, default=2)
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shard the space into warm-start lineages dispatched over "
            "N worker processes (results are byte-identical for every "
            "N; default: in-process single chain)"
        ),
    )
    explore.add_argument(
        "--lineage-size",
        type=int,
        default=None,
        metavar="K",
        help=(
            "selections per warm-start lineage (the decomposition — "
            "not --jobs — defines the results; default 4 when --jobs "
            "is given)"
        ),
    )
    explore.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable warm-start reuse between neighboring selections",
    )
    explore.add_argument(
        "--ordering",
        choices=["static", "density", "adaptive"],
        default="adaptive",
        help=(
            "branch-and-bound branching order: static descending "
            "hardware cost, knapsack-density, or adaptive (density + "
            "strong branching + value ordering; the default)"
        ),
    )
    explore.add_argument(
        "--frontier",
        choices=["dfs", "best-first", "lds", "beam", "hybrid"],
        default="dfs",
        help=(
            "branch-and-bound search frontier: depth-first (default, "
            "byte-identical to previous releases), best-first over "
            "the incremental lower bound, limited discrepancy "
            "search over the probed child ordering, level-by-level "
            "beam (width-limited only with --max-open), or hybrid "
            "(one greedy dive for an incumbent, then best-first); "
            "with --explorer racing a non-default frontier races a "
            "second exact member against the DFS one"
        ),
    )
    explore.add_argument(
        "--max-open",
        type=int,
        default=None,
        metavar="N",
        help=(
            "bounded-memory search: cap the open frontier at N "
            "entries, deterministically evicting the worst-bound "
            "entries (best-first/hybrid heap, beam level width); "
            "evicted subtrees are recorded so proof_floor stays "
            "honest and provenance says memory-truncated when "
            "optimality could have been lost"
        ),
    )
    explore.add_argument(
        "--no-dynamic-pool",
        action="store_true",
        help=(
            "freeze the capacity bound's per-interface cluster "
            "election to the static choice (ablation of the "
            "re-elected knapsack pool)"
        ),
    )
    explore.add_argument(
        "--share-incumbent",
        action="store_true",
        help=(
            "publish the fleet-wide best cost so every lineage's "
            "search prunes against it (best selection unchanged; "
            "node counts become timing-dependent with --jobs > 1)"
        ),
    )
    explore.add_argument(
        "--backend",
        choices=["auto", "numpy", "python"],
        default="auto",
        help=(
            "search-state evaluation backend: numpy uses the "
            "structure-of-arrays kernel with vectorized candidate "
            "scoring (errors if numpy is missing), python the scalar "
            "reference kernel, auto (default) lets each explorer pick "
            "its measured winner (numpy on probe-heavy frontiers when "
            "available, scalar otherwise); results are byte-identical "
            "either way"
        ),
    )
    explore.add_argument(
        "--reference",
        action="store_true",
        help="use the full-recompute reference evaluator (seed behavior)",
    )
    explore.set_defaults(run=_cmd_explore)

    serve = sub.add_parser(
        "serve",
        help=(
            "run the exploration service: an HTTP daemon with a "
            "priority job queue, content-addressed result cache, and "
            "SSE progress streaming (see docs/serving.md)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8752)
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="resident worker coroutines/threads draining the queue",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="LRU bound of the exact result cache (entries)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        metavar="N",
        help="queued-job bound; submissions beyond it get HTTP 503",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=4096,
        metavar="N",
        help=(
            "retained terminal job records; older ones are evicted "
            "oldest-first and their ids return HTTP 404"
        ),
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "journal submissions and cache entries to DIR for crash "
            "recovery: a restarted daemon replays the journal, "
            "restores the exact cache verbatim, and re-enqueues "
            "interrupted jobs (see docs/fault-tolerance.md)"
        ),
    )
    serve.add_argument(
        "--max-open-nodes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "daemon-wide bounded-memory cap: exact-explorer jobs "
            "without a tighter explorer.max_open run with their open "
            "frontier capped at N (capped runs that evict subtrees "
            "bypass the result cache)"
        ),
    )
    serve.add_argument(
        "--queue-deadline",
        type=float,
        default=None,
        metavar="S",
        help=(
            "shed jobs that waited more than S seconds in the queue "
            "(or longer than their own time_budget) instead of "
            "running them; shed is a distinct terminal state and "
            "counts in /stats"
        ),
    )
    serve.set_defaults(run=_cmd_serve)

    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
