"""Trace monitors and invariant checks.

Monitors inspect a finished :class:`~repro.sim.trace.Trace` (simpler
and more robust than callback hooks, and sufficient because traces keep
full token lineage).  The video-system bench builds its invalid-image
analysis on :class:`FrameValidityMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..spi.tokens import Token
from .trace import Trace


@dataclass
class ChannelBoundReport:
    """Result of checking channel occupancy against bounds."""

    channel: str
    bound: int
    peak: int

    @property
    def satisfied(self) -> bool:
        """True if the peak occupancy stayed within the bound."""
        return self.peak <= self.bound


def peak_occupancy(trace: Trace, channel: str, initial: int = 0) -> int:
    """Maximum number of tokens simultaneously on ``channel``.

    Reconstructed from the trace: production at firing end, consumption
    at firing start, replayed in time order.
    """
    events: List[Tuple[float, int, int]] = []  # (time, order, delta)
    for firing in trace.firings:
        consumed = len(firing.consumed_on(channel))
        produced = len(firing.produced_on(channel))
        if consumed:
            # Production precedes consumption at equal times: a consumer
            # cannot take a token before it exists.
            events.append((firing.start, 1, -consumed))
        if produced:
            events.append((firing.end, 0, +produced))
    events.sort()
    level = initial
    peak = initial
    for _, _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


def check_channel_bounds(
    trace: Trace, bounds: Dict[str, int]
) -> List[ChannelBoundReport]:
    """Check several channels at once."""
    return [
        ChannelBoundReport(
            channel=channel, bound=bound, peak=peak_occupancy(trace, channel)
        )
        for channel, bound in sorted(bounds.items())
    ]


@dataclass
class FrameReport:
    """Validity verdict for one output frame of a processing chain."""

    index: int
    token: Token
    produced_at: float
    valid: bool
    overlapped_reconfigurations: Tuple[str, ...] = ()
    is_repeat: bool = False


class FrameValidityMonitor:
    """Detects output frames whose processing overlapped reconfiguration.

    Paper §5: "An image becomes invalid if either P1 or P2 or both are
    reconfigured during processing that image."  For every token that
    reached ``output_channel`` the monitor computes its processing span
    (from the first ancestor consumption to its production) via token
    lineage and intersects it with the reconfiguration records of the
    watched processes.
    """

    def __init__(
        self,
        output_channel: str,
        watched_processes: Sequence[str],
        repeat_tag: Optional[str] = None,
    ) -> None:
        self.output_channel = output_channel
        self.watched = tuple(watched_processes)
        self.repeat_tag = repeat_tag

    def analyze(self, trace: Trace) -> List[FrameReport]:
        """Classify every output frame."""
        reports: List[FrameReport] = []
        for index, token in enumerate(trace.produced_on(self.output_channel)):
            is_repeat = (
                self.repeat_tag is not None and self.repeat_tag in token.tags
            )
            span = trace.span(token)
            overlapped: List[str] = []
            if span is not None and not is_repeat:
                start, end = span
                for record in trace.reconfigurations:
                    if record.process not in self.watched:
                        continue
                    reconf_start = record.time
                    reconf_end = record.time + record.latency
                    if reconf_start < end and reconf_end > start:
                        overlapped.append(record.process)
            reports.append(
                FrameReport(
                    index=index,
                    token=token,
                    produced_at=token.produced_at or 0.0,
                    valid=not overlapped,
                    overlapped_reconfigurations=tuple(sorted(set(overlapped))),
                    is_repeat=is_repeat,
                )
            )
        return reports

    def invalid_frames(self, trace: Trace) -> List[FrameReport]:
        """Only the frames that violate the validity invariant."""
        return [r for r in self.analyze(trace) if not r.valid]
