"""Discrete-event simulation of SPI models with variants.

:class:`Simulator` executes graphs under time with full reconfiguration
semantics; :class:`Trace` records firings, tokens (with lineage) and
reconfigurations; :mod:`~repro.sim.monitors` derives invariants such as
Figure 4's invalid-image check from traces.
"""

from .engine import ResourceBinding, Simulator, simulate
from .monitors import (
    ChannelBoundReport,
    FrameReport,
    FrameValidityMonitor,
    check_channel_bounds,
    peak_occupancy,
)
from .trace import FiringRecord, FlushRecord, ReconfigurationRecord, Trace

__all__ = [
    "ChannelBoundReport",
    "FiringRecord",
    "FlushRecord",
    "FrameReport",
    "FrameValidityMonitor",
    "ReconfigurationRecord",
    "ResourceBinding",
    "Simulator",
    "Trace",
    "check_channel_bounds",
    "peak_occupancy",
    "simulate",
]
