"""Timed discrete-event simulation of SPI model graphs.

The engine executes the SPI update rules under time: activation
functions are evaluated on the live channel states, consumption happens
at activation, production at completion after the mode's latency, and —
for :class:`~repro.variants.configuration.ConfiguredProcess` nodes —
the Def.-4 reconfiguration rule is applied:

    "it can be analyzed whether a newly activated mode belongs to the
    current configuration [...] if not, a new configuration is selected
    [...] the old configuration is destroyed including all internal
    buffers.  After the reconfiguration latency, the process is executed
    in the newly activated mode.  From the higher level point of view,
    the reconfiguration latency is simply added to the process execution
    latency for this execution."

Optionally a :class:`ResourceBinding` serializes processes mapped to the
same processor, which is how synthesis results are validated against
the timing behavior they promise.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..errors import SimulationError
from ..spi.channels import ChannelState
from ..spi.graph import ModelGraph
from ..spi.modes import ProcessMode
from ..spi.process import Process
from ..spi.semantics import RateResolver
from ..spi.tags import TagSet
from ..spi.tokens import Token
from ..variants.configuration import ConfiguredProcess
from .trace import FiringRecord, FlushRecord, ReconfigurationRecord, Trace


@dataclass(frozen=True)
class ResourceBinding:
    """Assignment of processes to single-threaded resources.

    Processes bound to the same resource name execute mutually
    exclusively; unbound processes run unconstrained (dedicated
    hardware).
    """

    assignment: Mapping[str, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))

    def resource_of(self, process: str) -> Optional[str]:
        """The resource ``process`` is bound to, or None."""
        return self.assignment.get(process)


@dataclass
class _Running:
    """Bookkeeping for one in-flight execution."""

    process: str
    mode: ProcessMode
    start: float
    end: float
    consumed: List[Tuple[str, Tuple[Token, ...]]]
    reconfiguration_latency: float


class _EngineChannelView:
    """ChannelView over the engine's channel states."""

    def __init__(self, states: Mapping[str, ChannelState]) -> None:
        self._states = states

    def available(self, channel: str) -> int:
        state = self._states.get(channel)
        return 0 if state is None else state.available()

    def first_tags(self, channel: str):
        state = self._states.get(channel)
        return None if state is None else state.first_tags()


class Simulator:
    """Event-driven executor for one model graph."""

    def __init__(
        self,
        graph: ModelGraph,
        resolver: Optional[RateResolver] = None,
        binding: Optional[ResourceBinding] = None,
        strict_activation: bool = False,
        max_events: int = 1_000_000,
        flush_rules: Optional[
            Mapping[Tuple[str, str], Tuple[str, ...]]
        ] = None,
    ) -> None:
        """See class docstring.

        ``flush_rules`` maps ``(process, mode)`` to the channels whose
        content is destroyed when that mode activates — the engine-side
        mechanism behind cluster termination (paper §4: terminating a
        running cluster loses all data on its internal channels).
        """
        self.graph = graph
        self.resolver = resolver or RateResolver()
        self.binding = binding
        self.strict_activation = strict_activation
        self.max_events = max_events
        self.flush_rules = {
            key: tuple(channels)
            for key, channels in (flush_rules or {}).items()
        }

        self.time = 0.0
        self.trace = Trace()
        self.states: Dict[str, ChannelState] = {
            name: channel.new_state()
            for name, channel in graph.channels.items()
        }
        self.view = _EngineChannelView(self.states)

        self._running: Dict[str, _Running] = {}
        self._busy_resources: Set[str] = set()
        self._firing_counts: Dict[str, int] = {
            name: 0 for name in graph.processes
        }
        self._next_allowed_start: Dict[str, float] = {
            name: process.release_time
            for name, process in graph.processes.items()
        }
        self._current_configuration: Dict[str, Optional[str]] = {}
        for name, process in graph.processes.items():
            if isinstance(process, ConfiguredProcess):
                self._current_configuration[name] = (
                    process.initial_configuration
                )
        # (time, seq, process) completion events.
        self._events: List[Tuple[float, int, str]] = []
        self._seq = itertools.count()
        self._event_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> Dict[str, int]:
        """Tokens currently visible per channel."""
        return {name: st.available() for name, st in self.states.items()}

    def configuration_of(self, process: str) -> Optional[str]:
        """Current ``conf_cur`` of a configured process."""
        if process not in self._current_configuration:
            raise SimulationError(
                f"process {process!r} carries no configurations"
            )
        return self._current_configuration[process]

    def firing_count(self, process: str) -> int:
        """Completed firings of one process."""
        return self._firing_counts[process]

    # ------------------------------------------------------------------
    # Readiness
    # ------------------------------------------------------------------
    def _ready_mode(self, process: Process) -> Optional[ProcessMode]:
        name = process.name
        if name in self._running:
            return None
        if (
            process.max_firings is not None
            and self._firing_counts[name] >= process.max_firings
        ):
            return None
        if self.time < self._next_allowed_start[name] - 1e-12:
            return None
        resource = (
            self.binding.resource_of(name) if self.binding else None
        )
        if resource is not None and resource in self._busy_resources:
            return None
        rule = process.activation.select(
            self.view, strict=self.strict_activation
        )
        if rule is None:
            return None
        mode = process.mode(rule.mode)
        for channel, amount in mode.consumes.items():
            state = self.states.get(channel)
            if state is None:
                raise SimulationError(
                    f"process {name!r} consumes from unknown channel "
                    f"{channel!r}"
                )
            if state.available() < amount.lo:
                return None
        return mode

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _start(self, process: Process, mode: ProcessMode) -> None:
        name = process.name
        for channel in self.flush_rules.get((name, mode.name), ()):
            state = self.states.get(channel)
            if state is None:
                raise SimulationError(
                    f"flush rule of {name!r}/{mode.name!r} names unknown "
                    f"channel {channel!r}"
                )
            dropped = tuple(state.clear())
            if dropped:
                self.trace.record_flush(
                    FlushRecord(
                        process=name,
                        mode=mode.name,
                        time=self.time,
                        channel=channel,
                        dropped=dropped,
                    )
                )
        consumed: List[Tuple[str, Tuple[Token, ...]]] = []
        for channel, amount in sorted(mode.consumes.items()):
            state = self.states[channel]
            count = self.resolver.resolve_amount(amount)
            count = min(count, state.available())
            count = max(count, int(amount.lo))
            tokens = tuple(state.read(count))
            consumed.append((channel, tokens))

        reconf_latency = 0.0
        if isinstance(process, ConfiguredProcess):
            target = process.configuration_of_mode(mode.name)
            current = self._current_configuration[name]
            if current != target.name:
                reconf_latency = target.latency
                self.trace.record_reconfiguration(
                    ReconfigurationRecord(
                        process=name,
                        time=self.time,
                        from_configuration=current,
                        to_configuration=target.name,
                        latency=reconf_latency,
                    )
                )
                self._current_configuration[name] = target.name

        latency = self.resolver.resolve_latency(mode.latency)
        end = self.time + reconf_latency + latency
        self._running[name] = _Running(
            process=name,
            mode=mode,
            start=self.time,
            end=end,
            consumed=consumed,
            reconfiguration_latency=reconf_latency,
        )
        resource = (
            self.binding.resource_of(name) if self.binding else None
        )
        if resource is not None:
            self._busy_resources.add(resource)
        if process.period is not None:
            self._next_allowed_start[name] = self.time + process.period
        heapq.heappush(self._events, (end, next(self._seq), name))
        self._event_count += 1
        if self._event_count > self.max_events:
            raise SimulationError(
                f"simulation exceeded {self.max_events} events; "
                f"the model likely contains an unguarded zero-latency loop"
            )

    def _complete(self, name: str) -> None:
        running = self._running.pop(name)
        process = self.graph.process(name)
        inherited = None
        if running.mode.pass_tags:
            inherited = TagSet.empty()
            for _, tokens in running.consumed:
                for token in tokens:
                    inherited = inherited | token.tags
        produced: List[Tuple[str, Tuple[Token, ...]]] = []
        for channel, amount in sorted(running.mode.produces.items()):
            state = self.states.get(channel)
            if state is None:
                raise SimulationError(
                    f"process {name!r} produces on unknown channel "
                    f"{channel!r}"
                )
            count = self.resolver.resolve_amount(amount)
            tags = running.mode.tags_for(channel)
            if inherited is not None and channel in running.mode.pass_tags:
                tags = tags | inherited
            tokens = tuple(
                Token(tags=tags, producer=name, produced_at=self.time)
                for _ in range(count)
            )
            state.write(list(tokens))
            produced.append((channel, tokens))
        resource = (
            self.binding.resource_of(name) if self.binding else None
        )
        if resource is not None:
            self._busy_resources.discard(resource)
        self._firing_counts[name] += 1
        self.trace.record_firing(
            FiringRecord(
                process=name,
                mode=running.mode.name,
                start=running.start,
                end=running.end,
                consumed=tuple(running.consumed),
                produced=tuple(produced),
                reconfiguration_latency=running.reconfiguration_latency,
            )
        )

    def _start_all_ready(self) -> int:
        """Start every ready process; returns how many were started.

        Iterates to a fixed point because starting one process can make
        a resource busy (blocking others) but never *enables* another
        start at the same instant (consumption only removes tokens).
        """
        started = 0
        for name in sorted(self.graph.processes):
            process = self.graph.process(name)
            mode = self._ready_mode(process)
            if mode is not None:
                self._start(process, mode)
                started += 1
        return started

    def _next_wakeup(self) -> Optional[float]:
        """Earliest future time at which something could change."""
        times: List[float] = []
        if self._events:
            times.append(self._events[0][0])
        for name, process in self.graph.processes.items():
            if name in self._running:
                continue
            if (
                process.max_firings is not None
                and self._firing_counts[name] >= process.max_firings
            ):
                continue
            allowed = self._next_allowed_start[name]
            if allowed > self.time + 1e-12:
                times.append(allowed)
        return min(times) if times else None

    def run(self, until: Optional[float] = None) -> Trace:
        """Run to quiescence (or up to model time ``until``)."""
        self._start_all_ready()
        while True:
            if until is not None and self.time > until:
                break
            progressed = False
            # Complete every event scheduled at the current time.
            while self._events and self._events[0][0] <= self.time + 1e-12:
                _, _, name = heapq.heappop(self._events)
                self._complete(name)
                progressed = True
            if self._start_all_ready() > 0:
                progressed = True
            if progressed:
                continue
            wake = self._next_wakeup()
            if wake is None:
                break
            if until is not None and wake > until:
                self.time = until + 1e-9
                break
            self.time = wake
        return self.trace


def simulate(
    graph: ModelGraph,
    until: Optional[float] = None,
    resolver: Optional[RateResolver] = None,
    binding: Optional[ResourceBinding] = None,
    strict_activation: bool = False,
    flush_rules: Optional[Mapping[Tuple[str, str], Tuple[str, ...]]] = None,
) -> Trace:
    """One-call convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        graph,
        resolver=resolver,
        binding=binding,
        strict_activation=strict_activation,
        flush_rules=flush_rules,
    )
    return simulator.run(until=until)
