"""Execution traces.

The simulator records every firing, token production and
reconfiguration.  Traces are the raw material for the paper's
behavioral claims: Figure 3's one-time configuration step, Figure 4's
suspend/resume protocol and its invalid-image accounting all reduce to
queries over these records.

Token *lineage* is preserved: each firing record holds the actual token
objects consumed and produced, so a bench can follow a video frame from
the camera through the processing chain to the display and ask whether
a reconfiguration overlapped its journey.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..spi.tokens import Token


@dataclass(frozen=True)
class FiringRecord:
    """One completed process execution."""

    process: str
    mode: str
    start: float
    end: float
    consumed: Tuple[Tuple[str, Tuple[Token, ...]], ...]
    produced: Tuple[Tuple[str, Tuple[Token, ...]], ...]
    reconfiguration_latency: float = 0.0

    @property
    def latency(self) -> float:
        """Total time including any reconfiguration step."""
        return self.end - self.start

    def consumed_on(self, channel: str) -> Tuple[Token, ...]:
        """Tokens consumed from ``channel`` in this firing."""
        for name, tokens in self.consumed:
            if name == channel:
                return tokens
        return ()

    def produced_on(self, channel: str) -> Tuple[Token, ...]:
        """Tokens produced on ``channel`` in this firing."""
        for name, tokens in self.produced:
            if name == channel:
                return tokens
        return ()

    def all_consumed(self) -> Tuple[Token, ...]:
        """All consumed tokens across channels."""
        result: List[Token] = []
        for _, tokens in self.consumed:
            result.extend(tokens)
        return tuple(result)

    def all_produced(self) -> Tuple[Token, ...]:
        """All produced tokens across channels."""
        result: List[Token] = []
        for _, tokens in self.produced:
            result.extend(tokens)
        return tuple(result)


@dataclass(frozen=True)
class ReconfigurationRecord:
    """One reconfiguration step inserted by the Def.-4 rule."""

    process: str
    time: float
    from_configuration: Optional[str]
    to_configuration: str
    latency: float


@dataclass(frozen=True)
class FlushRecord:
    """Internal channel data destroyed by a cluster termination.

    Paper §4: "the termination of a running cluster results in the loss
    of all data on the internal channels."  Each record documents one
    flushed channel at one switch.
    """

    process: str
    mode: str
    time: float
    channel: str
    dropped: Tuple[Token, ...]

    @property
    def lost_tokens(self) -> int:
        """How many tokens were destroyed on this channel."""
        return len(self.dropped)


@dataclass
class Trace:
    """All records of one simulation run, with query helpers."""

    firings: List[FiringRecord] = field(default_factory=list)
    reconfigurations: List[ReconfigurationRecord] = field(
        default_factory=list
    )
    flushes: List[FlushRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording (used by the engine)
    # ------------------------------------------------------------------
    def record_firing(self, record: FiringRecord) -> None:
        """Append a firing record."""
        self.firings.append(record)

    def record_reconfiguration(self, record: ReconfigurationRecord) -> None:
        """Append a reconfiguration record."""
        self.reconfigurations.append(record)

    def record_flush(self, record: FlushRecord) -> None:
        """Append a flush (termination data loss) record."""
        self.flushes.append(record)

    def tokens_lost(self, channel: Optional[str] = None) -> int:
        """Total tokens destroyed by cluster terminations."""
        return sum(
            record.lost_tokens
            for record in self.flushes
            if channel is None or record.channel == channel
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def firings_of(self, process: str) -> List[FiringRecord]:
        """All firings of one process, in completion order."""
        return [f for f in self.firings if f.process == process]

    def firing_count(self, process: Optional[str] = None) -> int:
        """Number of firings (of one process, or overall)."""
        if process is None:
            return len(self.firings)
        return len(self.firings_of(process))

    def reconfigurations_of(self, process: str) -> List[ReconfigurationRecord]:
        """All reconfigurations of one process."""
        return [r for r in self.reconfigurations if r.process == process]

    def produced_on(self, channel: str) -> List[Token]:
        """Every token ever produced on ``channel``, in order."""
        result: List[Token] = []
        for firing in self.firings:
            result.extend(firing.produced_on(channel))
        return result

    def consumed_from(self, channel: str) -> List[Token]:
        """Every token ever consumed from ``channel``, in order."""
        result: List[Token] = []
        for firing in self.firings:
            result.extend(firing.consumed_on(channel))
        return result

    def modes_used(self, process: str) -> List[str]:
        """Mode sequence of one process's firings."""
        return [f.mode for f in self.firings_of(process)]

    def end_time(self) -> float:
        """Completion time of the last firing (0.0 if none)."""
        return max((f.end for f in self.firings), default=0.0)

    def total_reconfiguration_time(self, process: Optional[str] = None) -> float:
        """Accumulated reconfiguration latency."""
        records = (
            self.reconfigurations
            if process is None
            else self.reconfigurations_of(process)
        )
        return sum(r.latency for r in records)

    # ------------------------------------------------------------------
    # Token lineage
    # ------------------------------------------------------------------
    def producing_firing(self, token: Token) -> Optional[FiringRecord]:
        """The firing that produced ``token`` (by object identity)."""
        for firing in self.firings:
            for produced in firing.all_produced():
                if produced is token:
                    return firing
        return None

    def ancestry(self, token: Token) -> List[Token]:
        """All transitive input tokens behind ``token``.

        Follows lineage edges firing-by-firing: a produced token's
        parents are every token consumed by the producing firing.
        Returns tokens with no producing firing (environment inputs or
        initial tokens) and intermediate ancestors alike.
        """
        seen: List[Token] = []
        frontier: List[Token] = [token]
        while frontier:
            current = frontier.pop()
            producer = self.producing_firing(current)
            if producer is None:
                continue
            for parent in producer.all_consumed():
                if not any(parent is t for t in seen):
                    seen.append(parent)
                    frontier.append(parent)
        return seen

    def span(self, token: Token) -> Optional[Tuple[float, float]]:
        """Processing span [first ancestor consumption, production time].

        None when the token was never produced by a recorded firing.
        """
        producer = self.producing_firing(token)
        if producer is None:
            return None
        start = producer.start
        frontier: List[Token] = list(producer.all_consumed())
        visited: List[Token] = []
        while frontier:
            current = frontier.pop()
            if any(current is t for t in visited):
                continue
            visited.append(current)
            upstream = self.producing_firing(current)
            if upstream is None:
                continue
            start = min(start, upstream.start)
            frontier.extend(upstream.all_consumed())
        return (start, producer.end)

    def summary(self) -> Dict[str, object]:
        """Headline statistics of the run."""
        per_process: Dict[str, int] = {}
        for firing in self.firings:
            per_process[firing.process] = (
                per_process.get(firing.process, 0) + 1
            )
        return {
            "firings": len(self.firings),
            "per_process": dict(sorted(per_process.items())),
            "reconfigurations": len(self.reconfigurations),
            "reconfiguration_time": self.total_reconfiguration_time(),
            "end_time": self.end_time(),
        }
