"""repro — reproduction of Richter et al., "Representation of Function
Variants for Embedded System Optimization and Synthesis" (DAC 1999).

Layers
------
* :mod:`repro.spi` — the SPI design representation the paper builds on:
  processes with interval parameters and modes, queue/register
  channels, activation functions, timing constraints, MoC adapters.
* :mod:`repro.variants` — the paper's contribution: clusters,
  interfaces, cluster selection, configurations, parameter extraction
  and the variant-graph transformations.
* :mod:`repro.sim` — discrete-event execution with reconfiguration
  semantics and token lineage traces.
* :mod:`repro.synth` — hardware/software co-synthesis: component
  libraries, mutual-exclusion-aware cost model, DSE, the paper's flows
  and the literature baselines.
* :mod:`repro.apps` — the paper's example systems (Figures 1-4,
  Table 1) and a synthetic workload generator.

Quickstart
----------
>>> from repro.apps import figure2
>>> rows = figure2.table1_rows()       # reproduces the paper's Table 1
>>> rows[0]['total']
34.0
"""

from . import apps, report, sim, spi, synth, variants
from .errors import (
    ActivationError,
    ExtractionError,
    ModelError,
    ReproError,
    SchedulingError,
    SimulationError,
    SynthesisError,
    TimingViolation,
    ValidationError,
    VariantError,
)

__version__ = "1.0.0"

__all__ = [
    "ActivationError",
    "ExtractionError",
    "ModelError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "SynthesisError",
    "TimingViolation",
    "ValidationError",
    "VariantError",
    "apps",
    "report",
    "sim",
    "spi",
    "synth",
    "variants",
]
