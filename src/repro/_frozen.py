"""Pickling support for frozen model objects that hold mapping proxies.

The model layer freezes its mappings behind ``MappingProxyType``,
which CPython refuses to pickle — but the parallel explorers ship
model objects (variant spaces, graphs, problems) across process
boundaries.  Rather than changing pickling semantics globally (a
``copyreg`` hook would make *every* mapping proxy in the host process
silently picklable), each frozen class that owns proxies declares them
explicitly:

    class ProcessMode:
        __getstate__, __setstate__ = proxy_pickle_methods(
            "consumes", "produces", "out_tags"
        )

The proxies pickle as their dict payload and rehydrate as proxies;
``__post_init__`` validation is not re-run (the values were validated
before pickling).
"""

from __future__ import annotations

from types import MappingProxyType


def proxy_pickle_methods(*proxy_fields: str):
    """A ``(__getstate__, __setstate__)`` pair for the named fields."""

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in proxy_fields:
            state[name] = dict(state[name])
        return state

    def __setstate__(self, state):
        for name in proxy_fields:
            state[name] = MappingProxyType(state[name])
        # Direct __dict__ update: frozen dataclasses block __setattr__,
        # not state restoration.
        self.__dict__.update(state)

    return __getstate__, __setstate__
