"""Cost model and feasibility evaluation.

Total implementation cost = processor cost (one unit of
``processor_cost`` per *allocated* processor) + the sum of hardware
costs of the HW-mapped units.  A mapping is feasible when every
processor's utilization stays within capacity.

The variant-aware twist (paper §5, Table 1 "With variants" row): units
originating from different clusters of the same interface never run at
the same time, so their utilization on a shared processor combines as a
**maximum over clusters** rather than a sum.  ``use_exclusion=False``
reproduces what superposition or serialization-based flows must assume
(everything potentially concurrent).

:func:`evaluate` is the *reference oracle*: a from-scratch evaluation
that buckets units by processor once and aggregates each bucket.  The
delta-maintained counterpart lives in :mod:`repro.synth.state`; both
paths share the bucket aggregation helpers below so they cannot drift
apart semantically, and the property suite cross-checks them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..errors import SynthesisError
from .mapping import Mapping, SynthesisProblem, Target

#: Slack applied to capacity comparisons so float noise never flips
#: feasibility; shared with the incremental evaluator.
CAPACITY_EPS = 1e-9

# ----------------------------------------------------------------------
# Fixed-point quantization (the integer cost kernel's vocabulary)
# ----------------------------------------------------------------------
#: Fixed-point shift of the integer cost kernel: loads, memories and
#: costs are represented as integer multiples of ``2**-QUANT_SHIFT``.
#: A power of two keeps ``iquantity / QUANT_SCALE`` an exact float for
#: every accumulator below 2**53 quanta, so reads are deterministic.
QUANT_SHIFT = 32

#: ``2**QUANT_SHIFT`` — one unit of load/cost equals this many quanta.
QUANT_SCALE = 1 << QUANT_SHIFT

#: Extra integer slack (in quanta) granted on capacity comparisons, on
#: top of :data:`CAPACITY_EPS`.  Each quantized value carries at most
#: half a quantum of rounding, so a bucket of ``n`` units drifts at
#: most ``n/2`` quanta from the exact float sum; 64 quanta (~1.5e-8)
#: absorbs that drift for any realistic bucket without becoming
#: observable on value grids coarser than ~2e-8 (every bench library
#: uses >= 1e-4 grids; the property suite uses 1/64 grids).
CAPACITY_SLACK_QUANTA = 64


def quantize(value: float) -> int:
    """One load/memory/cost value as an integer number of quanta.

    Exact (no rounding) whenever ``value`` is a binary fraction with at
    most :data:`QUANT_SHIFT` fractional bits — in that regime the
    integer kernel reproduces the float reference oracle bit for bit,
    in any accumulation order.
    """
    return round(value * QUANT_SCALE)


def quantize_capacity(capacity: float) -> int:
    """A capacity threshold in quanta, slack included.

    Mirrors the reference comparison ``value > capacity +
    CAPACITY_EPS``: a quantized load is infeasible iff it exceeds this
    integer.  :data:`CAPACITY_SLACK_QUANTA` keeps accumulated rounding
    from flipping feasibility against the float oracle.
    """
    return (
        math.floor((capacity + CAPACITY_EPS) * QUANT_SCALE)
        + CAPACITY_SLACK_QUANTA
    )


@dataclass(frozen=True)
class Evaluation:
    """Feasibility and cost of one mapping."""

    feasible: bool
    total_cost: float
    software_cost: float
    hardware_cost: float
    processors_used: int
    utilizations: Tuple[float, ...]
    violation: Optional[str] = None

    def __bool__(self) -> bool:
        return self.feasible


def utilization_of_units(
    problem: SynthesisProblem, units: Sequence[str]
) -> float:
    """Exclusion-aware utilization of one processor's unit bucket.

    ``units`` must be the software units hosted by one processor, in
    ``problem.units`` order.  ``common + Σ_interfaces max_cluster
    Σ_units`` with exclusion on, plain sum with exclusion off.
    """
    common = 0.0
    per_variant: Dict[Tuple[str, str], float] = {}
    for unit in units:
        entry = problem.entry(unit)
        if entry.software is None:
            raise SynthesisError(
                f"unit {unit!r} mapped to software without a software option"
            )
        load = entry.software.utilization
        origin = problem.origins.get(unit)
        if origin is None or not problem.use_exclusion:
            common += load
        else:
            key = (origin.interface, origin.cluster)
            per_variant[key] = per_variant.get(key, 0.0) + load

    by_interface: Dict[str, float] = {}
    for (interface, _cluster), load in per_variant.items():
        by_interface[interface] = max(
            by_interface.get(interface, 0.0), load
        )
    return common + sum(by_interface.values())


def memory_of_units(
    problem: SynthesisProblem,
    units: Sequence[str],
    variants_resident: bool = True,
) -> float:
    """Memory footprint of one processor's unit bucket.

    Unlike execution time, memory is *not* shared by mutual exclusion
    when variants must stay resident (run-time variants selected at
    boot: all variants live in flash/EPROM simultaneously):
    ``variants_resident=True`` (default) sums every unit's memory.
    With ``variants_resident=False`` (production variants: exactly one
    variant is ever downloaded), cluster memory combines as a maximum
    per interface, mirroring the utilization rule.
    """
    common = 0.0
    per_variant: Dict[Tuple[str, str], float] = {}
    for unit in units:
        entry = problem.entry(unit)
        if entry.software is None:
            raise SynthesisError(
                f"unit {unit!r} mapped to software without a software option"
            )
        footprint = entry.software.memory
        origin = problem.origins.get(unit)
        if origin is None or variants_resident:
            common += footprint
        else:
            key = (origin.interface, origin.cluster)
            per_variant[key] = per_variant.get(key, 0.0) + footprint
    by_interface: Dict[str, float] = {}
    for (interface, _cluster), footprint in per_variant.items():
        by_interface[interface] = max(
            by_interface.get(interface, 0.0), footprint
        )
    return common + sum(by_interface.values())


def bucket_by_processor(
    problem: SynthesisProblem, mapping: Mapping
) -> Tuple[Dict[int, List[str]], List[str]]:
    """Split the problem's units into per-processor buckets + HW list.

    One pass over ``problem.units`` (instead of one pass per
    processor); bucket order therefore preserves ``problem.units``
    order, which keeps aggregation bit-identical to a filtered walk.
    """
    buckets: Dict[int, List[str]] = {}
    hardware: List[str] = []
    for unit in problem.units:
        target = mapping.target_of(unit)
        if target.is_software:
            buckets.setdefault(target.processor, []).append(unit)
        else:
            hardware.append(unit)
    return buckets, hardware


def processor_utilization(
    problem: SynthesisProblem,
    mapping: Mapping,
    processor: int,
) -> float:
    """Utilization of one processor under the exclusion rule."""
    bucket = [
        unit
        for unit in problem.units
        if mapping.target_of(unit).is_software
        and mapping.target_of(unit).processor == processor
    ]
    return utilization_of_units(problem, bucket)


def processor_memory(
    problem: SynthesisProblem,
    mapping: Mapping,
    processor: int,
    variants_resident: bool = True,
) -> float:
    """Memory footprint of one processor's software partition."""
    bucket = [
        unit
        for unit in problem.units
        if mapping.target_of(unit).is_software
        and mapping.target_of(unit).processor == processor
    ]
    return memory_of_units(problem, bucket, variants_resident)


def evaluate(
    problem: SynthesisProblem,
    mapping: Mapping,
    variants_resident: bool = True,
) -> Evaluation:
    """Cost and feasibility of one complete mapping (reference oracle).

    Buckets units by processor in a single pass, then aggregates each
    bucket — O(units + processors_used) instead of the former
    O(units × processors).
    """
    missing = [u for u in problem.units if u not in mapping.assignment]
    if missing:
        raise SynthesisError(f"mapping does not cover units {missing}")

    arch = problem.architecture
    buckets, hardware_units = bucket_by_processor(problem, mapping)

    hardware_cost = 0.0
    for unit in sorted(hardware_units):
        entry = problem.entry(unit)
        if entry.hardware is None:
            return _infeasible(
                mapping, f"unit {unit!r} has no hardware option"
            )
        hardware_cost += entry.hardware.cost

    processors = sorted(buckets)
    if len(processors) > arch.max_processors:
        return _infeasible(
            mapping,
            f"{len(processors)} processors used, template allows "
            f"{arch.max_processors}",
        )

    utilizations: List[float] = []
    for processor in processors:
        load = utilization_of_units(problem, buckets[processor])
        utilizations.append(load)
        if load > arch.processor_capacity + CAPACITY_EPS:
            return _infeasible(
                mapping,
                f"processor {processor} utilization {load:.3f} exceeds "
                f"capacity {arch.processor_capacity:.3f}",
                partial_hw=hardware_cost,
                utilizations=tuple(utilizations),
            )
        if arch.memory_capacity > 0:
            footprint = memory_of_units(
                problem, buckets[processor], variants_resident
            )
            if footprint > arch.memory_capacity + CAPACITY_EPS:
                return _infeasible(
                    mapping,
                    f"processor {processor} memory {footprint:.3f} exceeds "
                    f"capacity {arch.memory_capacity:.3f}",
                    partial_hw=hardware_cost,
                    utilizations=tuple(utilizations),
                )

    software_cost = len(processors) * arch.processor_cost
    return Evaluation(
        feasible=True,
        total_cost=software_cost + hardware_cost,
        software_cost=software_cost,
        hardware_cost=hardware_cost,
        processors_used=len(processors),
        utilizations=tuple(utilizations),
    )


def _infeasible(
    mapping: Mapping,
    reason: str,
    partial_hw: float = 0.0,
    utilizations: Tuple[float, ...] = (),
) -> Evaluation:
    return Evaluation(
        feasible=False,
        total_cost=float("inf"),
        software_cost=0.0,
        hardware_cost=partial_hw,
        processors_used=len(mapping.processors_used()),
        utilizations=utilizations,
        violation=reason,
    )


def lower_bound(
    problem: SynthesisProblem, partial: TMapping[str, Target]
) -> float:
    """Admissible lower bound on total cost of any completion.

    Counts hardware already committed, the cheapest possible hardware
    for remaining hardware-only units, and one processor if any unit is
    already (or must be) software.  Never overestimates, so
    branch-and-bound with this bound returns the true optimum.
    """
    arch = problem.architecture
    hw = 0.0
    needs_processor = False
    for unit in problem.units:
        entry = problem.entry(unit)
        target = partial.get(unit)
        if target is None:
            if entry.software is None and entry.hardware is not None:
                hw += entry.hardware.cost
            elif entry.hardware is None:
                needs_processor = True
            continue
        if target.is_hardware:
            if entry.hardware is None:
                return float("inf")
            hw += entry.hardware.cost
        else:
            if entry.software is None:
                return float("inf")
            needs_processor = True
    processor_floor = arch.processor_cost if needs_processor else 0.0
    return hw + processor_floor
