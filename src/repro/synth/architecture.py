"""Architecture templates.

The paper's cost discussion assumes the architecture style it cites for
the Philips TriMedia (§1): one core processor executing the software
partition plus dedicated coprocessor/ASIC blocks for the hardware
partition.  :class:`ArchitectureTemplate` generalizes this to ``n``
identical processors; the Table 1 benchmark uses ``max_processors=1``
(documented in DESIGN.md as a calibrated substitution), and the
scaling bench explores larger templates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SynthesisError


@dataclass(frozen=True)
class ArchitectureTemplate:
    """Resource envelope available to synthesis.

    Parameters
    ----------
    name:
        Template name, for reports.
    max_processors:
        Upper bound on allocatable core processors.
    processor_cost:
        Cost of allocating one processor (only allocated processors are
        paid for).
    processor_capacity:
        Utilization capacity of one processor (1.0 = fully loaded).
    memory_capacity:
        Code/data memory per processor; 0 means unconstrained.  The
        production-variant story of the paper ("downloading a certain
        software variant into an EPROM") makes memory the second shared
        resource: mutually exclusive *run-time* variants still coexist
        in memory, whereas production variants are downloaded one at a
        time — see :func:`repro.synth.cost.processor_memory`.
    """

    name: str = "core-plus-asics"
    max_processors: int = 1
    processor_cost: float = 0.0
    processor_capacity: float = 1.0
    memory_capacity: float = 0.0

    def __post_init__(self) -> None:
        if self.max_processors < 0:
            raise SynthesisError("max_processors must be >= 0")
        if self.processor_cost < 0:
            raise SynthesisError("processor_cost must be >= 0")
        if self.processor_capacity <= 0:
            raise SynthesisError("processor_capacity must be positive")
        if self.memory_capacity < 0:
            raise SynthesisError("memory_capacity must be >= 0")
