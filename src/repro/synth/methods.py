"""The three synthesis flows compared in Table 1, plus batch exploration.

* :func:`independent_flow` — synthesize each application (each fully
  bound variant combination) on its own; one architecture per
  application (Table 1 rows "Application 1" / "Application 2").
* :func:`superposition_flow` — merge the independent implementations
  into one architecture: software is reused, distinct hardware adds up
  (row "Superposition"); "optimization is limited to single
  applications without considering the final superposition step".
* :func:`variant_aware_flow` — the paper's approach: one joint
  optimization over the variant representation, exploiting run-time
  mutual exclusion of clusters (row "With variants").
* :func:`explore_space` — batch exploration of every consistent
  selection of a :class:`~repro.variants.variant_space.VariantSpace`
  under one shared :class:`ProblemFamily`, reusing warm-start mappings
  between neighboring selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SynthesisError
from ..spi.graph import ModelGraph
from ..variants.variant_space import VariantSpace
from ..variants.vgraph import VariantGraph
from .architecture import ArchitectureTemplate
from .design_time import design_time_of_units
from .explorer import BranchBoundExplorer, ExplorationResult, Explorer
from .library import ComponentLibrary
from .mapping import (
    SynthesisProblem,
    Target,
    VariantOrigin,
    origins_of_graph,
    problem_for_graph,
    units_of_graph,
)
from .results import FlowOutcome


@dataclass
class ApplicationResult:
    """Per-application outcome of the independent flow."""

    name: str
    exploration: ExplorationResult
    outcome: FlowOutcome


def _default_explorer(
    explorer: Optional[Explorer], frontier: str = "dfs"
) -> Explorer:
    return (
        explorer
        if explorer is not None
        else BranchBoundExplorer(frontier=frontier)
    )


def _outcome_from_exploration(
    flow: str,
    exploration: ExplorationResult,
    design_time: float,
    notes: str = "",
) -> FlowOutcome:
    exploration.require_feasible()
    mapping = exploration.mapping
    evaluation = exploration.evaluation
    return FlowOutcome(
        flow=flow,
        software_parts=mapping.software_units(),
        hardware_parts=mapping.hardware_units(),
        software_cost=evaluation.software_cost,
        hardware_cost=evaluation.hardware_cost,
        total_cost=evaluation.total_cost,
        design_time=design_time,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Independent synthesis
# ----------------------------------------------------------------------
def synthesize_application(
    name: str,
    graph: ModelGraph,
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
) -> ApplicationResult:
    """Optimal implementation of one fully bound application."""
    problem = problem_for_graph(name, graph, library, architecture)
    exploration = _default_explorer(explorer).explore(problem)
    design_time = design_time_of_units(library, problem.units)
    outcome = _outcome_from_exploration(
        flow=name, exploration=exploration, design_time=design_time
    )
    return ApplicationResult(
        name=name, exploration=exploration, outcome=outcome
    )


def independent_flow(
    apps: Mapping[str, ModelGraph],
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
    warm_start: bool = True,
    jobs: Optional[int] = None,
    lineage_size: Optional[int] = None,
) -> Dict[str, ApplicationResult]:
    """Synthesize every application separately.

    Rides the same batch machinery as :func:`explore_space`: each
    application is prebound once into a picklable task, consecutive
    applications chain warm starts (the shared common part keeps its
    targets, so each exploration starts from a near-feasible
    incumbent), and ``jobs`` shards the chain into parallel lineages.

    With an *exact* explorer (the default branch-and-bound) a warm
    start only shrinks the search, so each application's outcome
    matches synthesizing it from scratch.  A heuristic explorer
    (annealing) is trajectory-sensitive: pass ``warm_start=False`` to
    keep its per-application runs strictly independent of each other.
    """
    from .parallel import (
        DEFAULT_LINEAGE_SIZE,
        ParallelSpaceExplorer,
        SelectionTask,
    )

    if not apps:
        raise SynthesisError("independent flow needs at least one application")
    tasks = [
        SelectionTask(
            index=index,
            selection=(("application", name),),
            name=name,
            units=units_of_graph(graph),
            origins=tuple(sorted(origins_of_graph(graph).items())),
        )
        for index, (name, graph) in enumerate(apps.items())
    ]
    family = ProblemFamily(
        name="independent", library=library, architecture=architecture
    )
    if jobs is None and lineage_size is None:
        size = max(1, len(tasks))
    else:
        size = (
            lineage_size if lineage_size is not None
            else DEFAULT_LINEAGE_SIZE
        )
    runner = ParallelSpaceExplorer(
        explorer=_default_explorer(explorer),
        jobs=jobs if jobs is not None else 1,
        lineage_size=size,
        warm_start=warm_start,
    )
    results = runner.explore_tasks(family, tasks)
    flow_results: Dict[str, ApplicationResult] = {}
    for task, selection_result in zip(tasks, results):
        exploration = selection_result.exploration
        design_time = design_time_of_units(library, task.units)
        outcome = _outcome_from_exploration(
            flow=task.name, exploration=exploration, design_time=design_time
        )
        flow_results[task.name] = ApplicationResult(
            name=task.name, exploration=exploration, outcome=outcome
        )
    return flow_results


# ----------------------------------------------------------------------
# Superposition
# ----------------------------------------------------------------------
def superposition_flow(
    independent: Mapping[str, ApplicationResult],
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
) -> FlowOutcome:
    """Merge independent implementations into one architecture.

    Software parts shared between applications are reused directly (the
    processor is paid once); hardware parts are distinct per variant and
    add up — the structural reason superposition costs more than the
    variant-aware result.
    """
    if not independent:
        raise SynthesisError("superposition needs independent results")
    software: Dict[str, None] = {}
    hardware: Dict[str, None] = {}
    processors = 0
    design_time = 0.0
    for result in independent.values():
        result.exploration.require_feasible()
        mapping = result.exploration.mapping
        for unit in mapping.software_units():
            software[unit] = None
        for unit in mapping.hardware_units():
            hardware[unit] = None
        processors = max(
            processors, result.exploration.evaluation.processors_used
        )
        design_time += result.outcome.design_time

    hardware_cost = sum(
        library.entry(unit).hardware.cost for unit in hardware
    )
    software_cost = processors * architecture.processor_cost
    return FlowOutcome(
        flow="superposition",
        software_parts=tuple(sorted(software)),
        hardware_parts=tuple(sorted(hardware)),
        software_cost=software_cost,
        hardware_cost=hardware_cost,
        total_cost=software_cost + hardware_cost,
        design_time=design_time,
        notes="union of independently optimized implementations",
    )


# ----------------------------------------------------------------------
# Variant-aware joint synthesis (the paper's approach)
# ----------------------------------------------------------------------
def variant_units(
    vgraph: VariantGraph,
) -> Tuple[Tuple[str, ...], Dict[str, VariantOrigin]]:
    """All synthesis units of a variant graph, with their origins.

    Common-part units keep their names; every cluster of every
    interface contributes its processes under
    ``<interface>.<cluster>.<process>`` namespacing — each considered
    exactly once, which is where the design-time saving comes from.
    Nested interfaces recurse with path-extended names.
    """
    units: List[str] = list(units_of_graph(vgraph.base))
    origins: Dict[str, VariantOrigin] = {}

    def add_cluster(prefix: str, interface_name: str, cluster) -> None:
        for process_name, process in sorted(cluster.graph.processes.items()):
            if process.virtual:
                continue
            unit = f"{prefix}{cluster.name}.{process_name}"
            units.append(unit)
            origins[unit] = VariantOrigin(
                interface=interface_name, cluster=cluster.name
            )
        for nested_name, nested in sorted(cluster.interfaces.items()):
            for nested_cluster_name in nested.cluster_names():
                add_cluster(
                    f"{prefix}{cluster.name}.{nested_name}.",
                    nested_name,
                    nested.cluster(nested_cluster_name),
                )

    for iface_name in sorted(vgraph.interfaces):
        interface = vgraph.interface(iface_name)
        for cluster_name in interface.cluster_names():
            add_cluster(
                f"{iface_name}.", iface_name, interface.cluster(cluster_name)
            )
    return tuple(units), origins


# ----------------------------------------------------------------------
# Batch variant-space exploration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProblemFamily:
    """Shared setup of a family of related synthesis problems.

    Every configuration of a variant space shares the component
    library, the architecture envelope, and the exclusion semantics;
    bundling them once is what lets :func:`explore_space` amortize
    setup across thousands of configurations instead of rebuilding it
    per selection.
    """

    name: str
    library: ComponentLibrary
    architecture: ArchitectureTemplate
    use_exclusion: bool = True

    def problem_for(
        self,
        graph: ModelGraph,
        name: Optional[str] = None,
        fixed: Mapping[str, Target] = (),
    ) -> SynthesisProblem:
        """The synthesis problem of one bound application graph."""
        return problem_for_graph(
            name if name is not None else graph.name,
            graph,
            self.library,
            self.architecture,
            use_exclusion=self.use_exclusion,
            fixed=fixed,
        )

    def problem_for_units(
        self,
        name: str,
        units: Sequence[str],
        origins=(),
        fixed: Mapping[str, Target] = (),
    ) -> SynthesisProblem:
        """The synthesis problem of a prebound unit set.

        What pool workers use to rebuild a problem (and through it the
        incremental search state) from the shared family without
        shipping or re-binding model graphs.
        """
        return SynthesisProblem(
            name=name,
            units=tuple(units),
            library=self.library,
            architecture=self.architecture,
            origins=dict(origins),
            fixed=dict(fixed),
            use_exclusion=self.use_exclusion,
        )

    def canonical_payload(self) -> Dict[str, object]:
        """Deterministic serialization of this family's content.

        The serve layer's content-addressed cache keys jobs by this
        payload (plus the target selection/space and explorer
        config): two families with equal payloads define identical
        feasible regions and costs for every selection, whatever
        their names.  See :mod:`repro.serve.canonical`.
        """
        from ..serve.canonical import family_payload

        return family_payload(
            self.library, self.architecture, self.use_exclusion
        )


@dataclass
class SelectionResult:
    """Exploration outcome of one variant selection."""

    selection: Dict[str, str]
    problem: SynthesisProblem
    exploration: ExplorationResult
    warm_started: bool

    @property
    def key(self) -> Tuple[Tuple[str, str], ...]:
        """Canonical hashable key of the selection."""
        return VariantSpace.selection_key(self.selection)

    @property
    def cost(self) -> float:
        return self.exploration.cost


@dataclass
class SpaceExploration:
    """Batch outcome over every consistent selection of a space."""

    family: ProblemFamily
    results: List[SelectionResult]

    @property
    def total_nodes(self) -> int:
        """Search nodes spent across the whole space."""
        return sum(r.exploration.nodes_explored for r in self.results)

    @property
    def total_evaluations(self) -> int:
        """Cost-model evaluations spent across the whole space."""
        return sum(r.exploration.evaluations for r in self.results)

    def feasible_results(self) -> List[SelectionResult]:
        """Selections with a feasible implementation."""
        return [r for r in self.results if r.exploration.feasible]

    def best(self) -> SelectionResult:
        """Cheapest selection (raises if nothing is feasible)."""
        feasible = self.feasible_results()
        if not feasible:
            raise SynthesisError(
                f"no selection of family {self.family.name!r} is feasible"
            )
        return min(feasible, key=lambda r: r.cost)

    def worst(self) -> SelectionResult:
        """Most expensive feasible selection."""
        feasible = self.feasible_results()
        if not feasible:
            raise SynthesisError(
                f"no selection of family {self.family.name!r} is feasible"
            )
        return max(feasible, key=lambda r: r.cost)

    def costs(self) -> Dict[Tuple[Tuple[str, str], ...], float]:
        """Selection key → total cost (inf when infeasible)."""
        return {r.key: r.cost for r in self.results}

    def summary_rows(self) -> List[Dict[str, object]]:
        """One renderable row per selection (CLI / reports)."""
        rows: List[Dict[str, object]] = []
        for result in self.results:
            selection = ", ".join(
                f"{iface}={cluster}"
                for iface, cluster in sorted(result.selection.items())
            )
            exploration = result.exploration
            rows.append(
                {
                    "selection": selection,
                    "cost": exploration.cost,
                    "nodes": exploration.nodes_explored,
                    "evaluations": exploration.evaluations,
                    "optimal": "yes" if exploration.optimal else "no",
                    "warm": "yes" if result.warm_started else "no",
                }
            )
        return rows

    def __len__(self) -> int:
        return len(self.results)


def explore_space(
    problem_family: ProblemFamily,
    space: VariantSpace,
    explorer: Optional[Explorer] = None,
    warm_start: bool = True,
    jobs: Optional[int] = None,
    lineage_size: Optional[int] = None,
    share_incumbent: bool = False,
    frontier: str = "dfs",
    max_retries: int = 0,
) -> SpaceExploration:
    """Explore every consistent selection of a variant space.

    Streams the space's applications (selections are enumerated so
    that neighbors differ in few interfaces), builds each synthesis
    problem from the shared ``problem_family`` setup, and — with
    ``warm_start=True`` — seeds each exploration with the previous
    selection's best mapping: shared units (the common part plus every
    unchanged cluster) keep their targets, so the explorer starts from
    a near-feasible incumbent instead of from scratch.

    With ``jobs``/``lineage_size`` set, the selections are sharded
    into contiguous warm-start lineages and dispatched over a process
    pool via the selection-index task protocol (see
    :class:`~repro.synth.parallel.ParallelSpaceExplorer`): workers
    receive the family + space once and re-enumerate their
    ``(start, count)`` shard locally instead of unpickling
    per-selection unit/origin tuples.  Results are merged in
    enumeration order and are byte-identical for every jobs count; the
    default (both ``None``) keeps the single unsharded warm-start
    chain.

    ``share_incumbent=True`` additionally publishes the fleet-wide
    best cost across lineages (and worker processes), letting every
    branch-and-bound search prune against the best selection found so
    far anywhere in the space.  The best selection and its cost are
    unchanged; per-selection node counts become timing-dependent under
    ``jobs > 1``, so the flag defaults to off.

    ``frontier`` picks the default branch-and-bound explorer's search
    frontier (``"dfs"``/``"best-first"``/``"lds"``, see
    :class:`~repro.synth.explorer.BranchBoundExplorer`); it is ignored
    when an explicit ``explorer`` is passed — configure that explorer
    directly instead.

    ``max_retries`` re-dispatches a lineage whose worker process
    crashed (up to that many times per lineage, with capped
    exponential backoff) instead of aborting the whole run — results
    stay byte-identical because lineages are pure functions of the
    space; see :class:`~repro.synth.parallel.ParallelSpaceExplorer`.
    """
    from .parallel import DEFAULT_LINEAGE_SIZE, ParallelSpaceExplorer

    chosen = _default_explorer(explorer, frontier=frontier)
    if jobs is None and lineage_size is None:
        # One unsharded warm-start chain — the sequential semantics.
        size = max(1, space.count())
    else:
        size = (
            lineage_size if lineage_size is not None
            else DEFAULT_LINEAGE_SIZE
        )
    runner = ParallelSpaceExplorer(
        explorer=chosen,
        jobs=jobs if jobs is not None else 1,
        lineage_size=size,
        warm_start=warm_start,
        share_incumbent=share_incumbent,
        max_retries=max_retries,
    )
    return runner.explore(problem_family, space)


def variant_aware_flow(
    vgraph: VariantGraph,
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
    use_exclusion: bool = True,
) -> FlowOutcome:
    """Joint synthesis over the whole variant representation.

    With ``use_exclusion=False`` the flow degenerates to treating all
    variants as concurrent (the X1 ablation) — structurally the
    assumption serialization-based approaches are stuck with.
    """
    units, origins = variant_units(vgraph)
    problem = SynthesisProblem(
        name=f"{vgraph.name}.variant_aware",
        units=units,
        library=library,
        architecture=architecture,
        origins=origins,
        use_exclusion=use_exclusion,
    )
    exploration = _default_explorer(explorer).explore(problem)
    design_time = design_time_of_units(library, units)
    return _outcome_from_exploration(
        flow="with_variants" if use_exclusion else "with_variants_no_exclusion",
        exploration=exploration,
        design_time=design_time,
        notes="joint optimization over the variant representation",
    )
