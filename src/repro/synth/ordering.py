"""Branching-order heuristics for branch-and-bound search.

PR 3 made every search node cheap (integer delta-cost kernel) and the
lower bound tight (capacity-aware knapsack pools).  What it left static
is the *order* in which the tree is explored:
:class:`~repro.synth.explorer.BranchBoundExplorer` decided units in
fixed descending-hardware-cost order and tried each unit's candidate
targets in generation order.  This module supplies the adaptive
alternatives:

* **unit orders** — :func:`hardware_cost_order` (the historical
  ``static`` behavior) and :func:`density_order`, which decides forced
  units first (hardware-only, then software-only: they contribute no
  branching) and orders the genuinely flexible units by descending
  knapsack density (hardware cost per unit of load).  High-density
  units are where the fractional-knapsack relaxation of the
  capacity-aware bound is least certain, so deciding them first
  tightens the bound earliest;
* **value ordering** — :func:`probe_targets` scores each candidate
  target by the incremental lower bound *after* tentatively assigning
  it (one O(log n) delta-probe per candidate, exactly restored by the
  paired unassign).  Descending the cheapest-bound child first steers
  the initial depth-first dive toward the relaxation optimum, so the
  first incumbent lands near the true optimum and prunes most of the
  remaining tree;
* **shallow-depth re-sorting** — :func:`strong_branch` re-ranks the
  undecided units near the root (depth < :data:`STRONG_BRANCH_DEPTH`)
  by probing every unit's candidates and picking the unit whose *best*
  child bound is highest (the fail-first rule): the subtree multiplier
  of a good root decision dwarfs the probe cost, which is why the
  re-sort is bounded to shallow depths.

All probes mutate the search state through its public
``assign``/``unassign`` interface and restore it exactly (the property
suite asserts bound round-trips), so ordering never changes *what* the
search proves — only how fast it gets there.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SynthesisError
from .mapping import SynthesisProblem, Target

#: Valid ``ordering=`` values of :class:`BranchBoundExplorer`.
ORDERINGS = ("static", "density", "adaptive")

#: Valid ``frontier=`` values of :class:`BranchBoundExplorer`:
#: depth-first (the default), best-first over the incremental lower
#: bound, limited discrepancy search over the probed child order,
#: level-synchronous beam search (complete when ``max_open`` is unset,
#: width-limited with deterministic worst-bound eviction when set),
#: and the dive-then-best-first hybrid (a greedy depth-first dive
#: seeds the incumbent, then a — typically capped — best-first pass
#: finishes the proof in bounded memory).
FRONTIERS = ("dfs", "best-first", "lds", "beam", "hybrid")

#: Depths (0-based) at which ``adaptive`` re-sorts the undecided units
#: via :func:`strong_branch` instead of following the precomputed
#: density order.  Near the root a unit choice multiplies through the
#: whole subtree; deeper down the probe overhead stops paying.
STRONG_BRANCH_DEPTH = 2

#: Candidate cap of one strong-branching re-sort: only the first this
#: many undecided units (the densest, given a density-ordered list)
#: are probed.  On wide problems probing every unit at the shallow
#: depths costs more than the re-sort saves.
STRONG_BRANCH_WIDTH = 16


def validate_ordering(ordering: str) -> str:
    if ordering not in ORDERINGS:
        raise SynthesisError(
            f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
        )
    return ordering


def validate_frontier(frontier: str) -> str:
    if frontier not in FRONTIERS:
        raise SynthesisError(
            f"unknown frontier {frontier!r}; expected one of {FRONTIERS}"
        )
    return frontier


def hardware_cost_order(
    problem: SynthesisProblem, units: Sequence[str]
) -> List[str]:
    """Descending hardware cost — the historical ``static`` order."""
    return sorted(
        units,
        key=lambda u: -(
            problem.entry(u).hardware.cost
            if problem.entry(u).hardware
            else 0.0
        ),
    )


def density_order(
    problem: SynthesisProblem, units: Sequence[str]
) -> List[str]:
    """Forced units first, then flexible units by knapsack density.

    Hardware-only and software-only units carry exactly one
    implementation kind, so deciding them adds no branching — they go
    first (hardware-only, then software-only, largest load first so
    infeasible partials surface early).  The flexible remainder is the
    real knapsack; descending hardware-cost-per-load density puts the
    units that dominate the fractional relaxation at the top of the
    tree, ties broken by enumeration order for determinism.
    """
    forced_hw: List[Tuple[float, int, str]] = []
    forced_sw: List[Tuple[float, int, str]] = []
    flexible: List[Tuple[float, int, str]] = []
    for index, unit in enumerate(units):
        entry = problem.entry(unit)
        software, hardware = entry.software, entry.hardware
        if software is None:
            cost = hardware.cost if hardware is not None else 0.0
            forced_hw.append((-cost, index, unit))
        elif hardware is None:
            forced_sw.append((-software.utilization, index, unit))
        else:
            load = software.utilization
            density = hardware.cost / load if load > 0 else 0.0
            flexible.append((-density, index, unit))
    return [
        unit
        for group in (forced_hw, forced_sw, flexible)
        for _key, _index, unit in sorted(group)
    ]


def unit_order(
    problem: SynthesisProblem, units: Sequence[str], ordering: str
) -> List[str]:
    """The initial unit decision order for one ``ordering`` mode."""
    if ordering == "static":
        return hardware_cost_order(problem, units)
    return density_order(problem, units)


def probe_targets(
    state, unit: str, targets: Sequence[Target]
) -> List[Tuple[float, int, Target]]:
    """Score each candidate target by the bound after assigning it.

    Returns ``(bound, original_index, target)`` triples sorted
    ascending — the cheapest-looking child first, generation order as
    the deterministic tie-break.  A child whose tentative assignment is
    already infeasible (monotone loads: no completion can recover) is
    scored ``inf``, so callers can skip it outright.  The whole sibling
    batch is scored through ``state.score_candidates`` — one vectorized
    pass on the NumPy backend, paired assign/unassign probes on the
    scalar one — and the state is restored exactly either way.
    """
    scored: List[Tuple[float, int, Target]] = []
    prune_infeasible = state.can_prune_infeasible
    for index, (bound, feasible) in enumerate(
        state.score_candidates(unit, targets)
    ):
        if prune_infeasible and not feasible:
            bound = float("inf")
        scored.append((bound, index, targets[index]))
    scored.sort(key=lambda item: (item[0], item[1]))
    return scored


def strong_branch(
    state,
    problem: SynthesisProblem,
    undecided: Sequence[str],
    candidate_targets,
) -> Tuple[str, List[Tuple[float, int, Target]]]:
    """Pick the most constrained undecided unit by probing (fail-first).

    Probes the first :data:`STRONG_BRANCH_WIDTH` undecided units'
    candidate targets and selects the unit whose *minimum* child bound
    is largest: deciding it first raises the whole subtree's bound
    fastest, so pruning engages earliest.  Returns the chosen unit
    together with its already-probed (sorted) targets so the caller
    descends without re-probing.  Ties break on position in
    ``undecided`` — pass a deterministic order.
    """
    best_unit = undecided[0]
    best_scored: List[Tuple[float, int, Target]] = []
    best_score = -1.0
    for unit in undecided[:STRONG_BRANCH_WIDTH]:
        scored = probe_targets(
            state, unit, candidate_targets(problem, unit, state)
        )
        score = scored[0][0]
        if score == float("inf"):
            # Every child of this unit is dead: the current node cannot
            # be completed at all, whatever is decided next.
            return unit, scored
        if score > best_score:
            best_unit, best_scored, best_score = unit, scored, score
    return best_unit, best_scored
