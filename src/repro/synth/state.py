"""Incremental (delta-cost) evaluation state for design-space search.

Every explorer in :mod:`repro.synth.explorer` walks the mapping space
by assigning units to targets one at a time.  The seed implementation
re-ran the from-scratch :func:`repro.synth.cost.evaluate` at every
search node — O(units × processors) per node, rebuilding per-processor
buckets and the per-interface max-exclusion aggregation each time.
:class:`SearchState` replaces that with O(1)-amortized deltas over an
**integerized fixed-point kernel**:

* every utilization, memory and cost contribution is quantized once at
  construction to an integer number of ``2**-QUANT_SHIFT`` quanta
  (:func:`repro.synth.cost.quantize`), so the per-processor aggregates
  are integer accumulators — associative and commutative *by
  construction*.  Any sequence of assign/unassign/reassign calls that
  reaches the same assignment reads byte-identical state, in any
  mutation order, with no re-aggregation;
* per-processor utilization under the paper's exclusion rule
  (``common + Σ_interfaces max_cluster Σ_units``),
* per-processor memory footprints (``variants_resident`` both ways),
* hardware cost and allocated-processor count,
* capacity-violation counters (so feasibility of the current partial
  mapping is an O(1) read), and
* an incremental admissible lower bound for branch-and-bound pruning,
  with an optional **capacity-aware** knapsack term (below).

The "amortized" caveat is the interface max: removing the cluster that
currently dominates an interface's exclusion load re-scans that
interface's clusters *on that processor* — a handful of entries.

The from-scratch :func:`~repro.synth.cost.evaluate` stays the reference
oracle: :class:`ReferenceSearchState` wraps it behind the same search
interface (for benchmarking the speedup instead of asserting it), and
the property suite cross-checks both paths on randomized problems and
assign/unassign sequences.

Quantization contract
---------------------
For library values that are binary fractions with at most
``QUANT_SHIFT`` fractional bits (e.g. the ``k/64`` grids of the
property suite), the integer kernel reproduces the float oracle **bit
for bit**.  For arbitrary decimal values it agrees within quantization
tolerance (``~n·2**-(QUANT_SHIFT+1)`` per aggregate of ``n`` units,
i.e. ~1e-8 for realistic buckets) while remaining exactly
deterministic across mutation orders and process boundaries.  The
``exact`` constructor flag of the pre-integer kernel is retained for
API compatibility; every mode is exact now, so it is a no-op.

Capacity-aware lower bound
--------------------------
``lower_bound()`` = committed hardware + hardware-only pending cost +
allocated-processor cost (the *basic* bound) **plus** a fractional-
knapsack relaxation of the remaining capacity constraint: undecided
software-capable load that provably cannot fit the architecture's
total remaining processor capacity must buy hardware, and the cheapest
way to do that (sorted by hardware-cost-per-load density, last unit
fractional) lower-bounds the extra cost of *any* completion.

Mutual exclusion makes a naive load sum inadmissible (cluster loads
shadow each other), so the relaxation only counts units whose load is
guaranteed to consume capacity in every completion: common units plus,
per interface, one statically *chosen* cluster (the one with the
largest total software load).  For any fixed choice ``c_θ`` the true
per-processor utilization satisfies ``Σ_p util_p ≥ common_load +
Σ_θ load(c_θ)``, so the relaxed constraint is valid and the bound
stays admissible — branch-and-bound remains provably optimal (up to
quantization tolerance).  The knapsack state is maintained
incrementally per decision in a Fenwick tree over the density-sorted
undecided units: O(log n) per mutation, O(log n) per bound read.

Dynamic cluster election (``dynamic_pool=True``)
------------------------------------------------
The admissibility argument holds for *any* per-interface cluster
choice, not just the static largest-total-load one.  Deep in the tree
the static choice goes stale: once the search sends most of the chosen
cluster to hardware, another cluster carries more *live* software load
(committed-to-software plus still-undecided), and selecting it would
force more hardware.  :class:`_DynamicPools` therefore re-elects each
interface's cluster by live load as decisions commit — O(clusters of
the touched interface) bookkeeping per move, with the rare election
flip toggling the flipped clusters' undecided units in a joint
activation Fenwick tree.  ``lower_bound()`` takes the **max** of the
static-election and re-elected formulations (both admissible), so the
dynamic bound is pointwise at least as tight as the static one; the
election is a pure function of the committed loads, which is what
makes backtracking restore it exactly.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from . import backend as _backend
from .backend import resolve_backend
from .cost import (
    Evaluation,
    QUANT_SCALE,
    evaluate,
    lower_bound,
    quantize,
    quantize_capacity,
)
from .library import ImplKind
from .mapping import Mapping, SynthesisProblem, Target

#: Grouping key: ``(interface, cluster)`` for exclusion-aware loads,
#: ``None`` for common (always-concurrent) load.
_GroupKey = Optional[Tuple[str, str]]

#: Sentinel distinguishing "``exact=`` not passed" from any real value
#: (the flag is deprecated: every mode is exact since the integer
#: kernel, so passing it only triggers a :class:`DeprecationWarning`).
_UNSET = object()

_EXACT_DEPRECATION = (
    "the 'exact' flag is deprecated and has no effect: the integer "
    "kernel made every evaluation mode exact and byte-stable"
)


def _warn_exact() -> None:
    warnings.warn(_EXACT_DEPRECATION, DeprecationWarning, stacklevel=3)


class _ExclusionLoad:
    """Delta-maintained ``common + Σ_iface max_cluster Σ`` aggregate.

    All loads are integers (quanta), so accumulation is exact and
    order-independent; ``total`` is derived from the per-group
    aggregates on read (interfaces per processor are few).
    """

    __slots__ = ("common", "groups", "imax")

    def __init__(self) -> None:
        self.common = 0
        #: interface -> {cluster: [load, unit_count]}
        self.groups: Dict[str, Dict[str, List[int]]] = {}
        #: interface -> current max cluster load
        self.imax: Dict[str, int] = {}

    @property
    def total(self) -> int:
        if not self.imax:
            return self.common
        return self.common + sum(self.imax.values())

    def add(self, key: _GroupKey, value: int) -> None:
        if key is None:
            self.common += value
            return
        interface, cluster = key
        group = self.groups.setdefault(interface, {})
        slot = group.get(cluster)
        if slot is None:
            group[cluster] = [value, 1]
            new_load = value
        else:
            slot[0] += value
            slot[1] += 1
            new_load = slot[0]
        current_max = self.imax.get(interface)
        if current_max is None or new_load > current_max:
            self.imax[interface] = new_load

    def remove(self, key: _GroupKey, value: int) -> None:
        if key is None:
            self.common -= value
            return
        interface, cluster = key
        group = self.groups[interface]
        slot = group[cluster]
        old_load = slot[0]
        if slot[1] == 1:
            del group[cluster]
        else:
            slot[0] = old_load - value
            slot[1] -= 1
        if old_load >= self.imax[interface]:
            # The removed-from cluster was (tied for) the interface
            # max: re-scan this interface's clusters on this processor.
            if group:
                self.imax[interface] = max(
                    slot[0] for slot in group.values()
                )
            else:
                del self.groups[interface]
                del self.imax[interface]


class _KnapsackBound:
    """Fenwick tree over density-sorted undecided flexible units.

    Supports the capacity-aware bound: point add/remove as units are
    decided/undecided, and an O(log n) prefix descent answering "how
    much hardware cost can at most be *avoided* within a remaining
    capacity budget" — the fractional-knapsack LP optimum, floored
    towards admissibility.
    """

    __slots__ = (
        "size",
        "loads",
        "costs",
        "bit_load",
        "bit_cost",
        "total_load",
        "total_cost",
        "_top_bit",
    )

    def __init__(self, entries: List[Tuple[int, int]]) -> None:
        # ``entries`` are (load, cost) pairs already sorted by
        # descending cost/load density; index 0 of the static arrays
        # is unused (Fenwick trees are 1-based).  Every entry carries
        # a strictly positive load (zero-load units never force
        # hardware and are excluded by the pool builder) — the
        # boundary-slot argument in :meth:`forced_cost` relies on it.
        self.size = len(entries)
        self.loads = [0] + [load for load, _ in entries]
        self.costs = [0] + [cost for _, cost in entries]
        self.bit_load = [0] * (self.size + 1)
        self.bit_cost = [0] * (self.size + 1)
        self.total_load = 0
        self.total_cost = 0
        for slot in range(1, self.size + 1):
            self.bit_load[slot] += self.loads[slot]
            self.bit_cost[slot] += self.costs[slot]
            parent = slot + (slot & -slot)
            if parent <= self.size:
                self.bit_load[parent] += self.bit_load[slot]
                self.bit_cost[parent] += self.bit_cost[slot]
            self.total_load += self.loads[slot]
            self.total_cost += self.costs[slot]
        top = 1
        while top * 2 <= self.size:
            top *= 2
        self._top_bit = top

    def remove(self, slot: int) -> None:
        """Take one unit out of the undecided pool."""
        load, cost = self.loads[slot], self.costs[slot]
        self.total_load -= load
        self.total_cost -= cost
        index = slot
        while index <= self.size:
            self.bit_load[index] -= load
            self.bit_cost[index] -= cost
            index += index & -index

    def add(self, slot: int) -> None:
        """Return one unit to the undecided pool."""
        load, cost = self.loads[slot], self.costs[slot]
        self.total_load += load
        self.total_cost += cost
        index = slot
        while index <= self.size:
            self.bit_load[index] += load
            self.bit_cost[index] += cost
            index += index & -index

    def forced_cost(self, budget: int) -> int:
        """Minimum hardware cost forced by a capacity ``budget``.

        Fractional-knapsack LP bound: keep the densest (most expensive
        hardware per unit load) prefix in software while it fits, buy
        the rest, refund the boundary unit fractionally (rounded *up*,
        so the result never exceeds the LP optimum — admissible).
        """
        total_load = self.total_load
        if total_load <= budget:
            return 0
        # Largest density-ordered prefix with cumulative load <= budget.
        position = 0
        remaining = budget
        kept_cost = 0
        bit = self._top_bit
        bit_load = self.bit_load
        bit_cost = self.bit_cost
        size = self.size
        while bit:
            probe = position + bit
            if probe <= size and bit_load[probe] <= remaining:
                remaining -= bit_load[probe]
                kept_cost += bit_cost[probe]
                position = probe
            bit >>= 1
        forced = self.total_cost - kept_cost
        if remaining > 0 and position < size:
            # Fractionally keep the boundary unit.  The descent is
            # maximal, so slot ``position + 1`` must contribute load
            # (an undecided pool member): were it removed (zeroed) or
            # zero-load, its prefix would equal ``position``'s and the
            # descent would have advanced past it.
            slot = position + 1
            cost, load = self.costs[slot], self.loads[slot]
            forced -= -((-remaining * cost) // load)  # ceil division
        return forced


class _DynamicPools:
    """Re-elected knapsack pools for the capacity-aware bound.

    Mirrors the static pool family with one crucial difference: which
    cluster represents each interface in the *joint* constraint
    (``common + Σ_θ S_{c_θ} ≤ P·cap``) is re-elected as the search
    commits decisions.  The election key of a cluster is its **live
    load** — software-only floor plus every flexible unit not (yet)
    sent to hardware — the total software load the cluster can still
    put on processors in some completion.  At the root this equals the
    static total-load choice (same tie-break), so elections start
    identical to the static pools and only diverge once hardware
    commitments drain the statically chosen cluster.

    Structures:

    * ``joint`` — one Fenwick tree over *all* flexible
      capacity-consuming units in global density order, where only the
      undecided units of the common part and of the currently elected
      clusters are present (activation toggles on election flips);
    * one per-cluster tree for every cluster, read for the clusters
      currently *not* elected (their individual ``common + S_c``
      constraints stay valid and their unit sets are disjoint from the
      joint pool, so the forced costs add).

    The election is a pure function of the committed per-cluster
    loads, so any assign/unassign round-trip restores the elections —
    and with them the activation sets and every Fenwick accumulator —
    exactly.
    """

    __slots__ = (
        "icap_total",
        "joint",
        "cluster_pool",
        "floors",
        "committed_sw",
        "committed_hw",
        "live",
        "undecided",
        "elected",
        "static_chosen",
        "interfaces",
        "differs",
        "_unit",
    )

    def __init__(
        self,
        icap_total: int,
        common_entries: List[Tuple[int, str, int, int]],
        cluster_entries: Dict[
            Tuple[str, str], List[Tuple[int, str, int, int]]
        ],
        cluster_floors: Dict[Tuple[str, str], int],
        static_chosen: Dict[str, Tuple[str, str]],
    ) -> None:
        # Entries are (global_index, unit, iload, ihw); density sorting
        # uses the same (-density, global_index) key as the static
        # pools, so identical unit multisets produce identical
        # fractional-knapsack results in either structure.
        self.icap_total = icap_total
        self.static_chosen = dict(static_chosen)
        self.interfaces: Dict[str, List[Tuple[str, str]]] = {}
        for key in sorted(cluster_entries):
            self.interfaces.setdefault(key[0], []).append(key)
        self.floors = dict(cluster_floors)
        self.committed_sw = {key: 0 for key in cluster_entries}
        self.committed_hw = {key: 0 for key in cluster_entries}
        self.live = {
            key: self.floors[key]
            + sum(iload for _g, _u, iload, _c in cluster_entries[key])
            for key in cluster_entries
        }
        #: cluster key -> {unit: joint slot} of its undecided units.
        self.undecided: Dict[Tuple[str, str], Dict[str, int]] = {
            key: {} for key in cluster_entries
        }
        self.elected = {
            interface: self._argmax(interface)
            for interface in self.interfaces
        }
        self.differs = sum(
            self.elected[interface] != self.static_chosen[interface]
            for interface in self.interfaces
        )

        joint_members: List[Tuple[float, int, str, int, int, object]] = []
        for gindex, unit, iload, ihw in common_entries:
            joint_members.append(
                (-(ihw / iload), gindex, unit, iload, ihw, None)
            )
        for key, entries in cluster_entries.items():
            for gindex, unit, iload, ihw in entries:
                joint_members.append(
                    (-(ihw / iload), gindex, unit, iload, ihw, key)
                )
        joint_members.sort(key=lambda m: (m[0], m[1]))
        #: unit -> (joint slot, cluster key or None, iload, ihw,
        #:          per-cluster slot or 0)
        self._unit: Dict[str, Tuple[int, object, int, int, int]] = {}
        for slot, member in enumerate(joint_members, start=1):
            _d, _g, unit, iload, ihw, key = member
            self._unit[unit] = (slot, key, iload, ihw, 0)
            if key is not None:
                self.undecided[key][unit] = slot
        self.joint = _KnapsackBound(
            [(iload, ihw) for _d, _g, _u, iload, ihw, _k in joint_members]
        )
        self.cluster_pool: Dict[Tuple[str, str], _KnapsackBound] = {}
        for key, entries in cluster_entries.items():
            ordered = sorted(
                entries, key=lambda e: (-(e[3] / e[2]), e[0])
            )
            for cslot, (_g, unit, iload, ihw) in enumerate(
                ordered, start=1
            ):
                jslot = self._unit[unit][0]
                self._unit[unit] = (jslot, key, iload, ihw, cslot)
            self.cluster_pool[key] = _KnapsackBound(
                [(iload, ihw) for _g, _u, iload, ihw in ordered]
            )
        # Deactivate the units of every initially non-elected cluster:
        # the joint tree starts as "common + elected clusters".
        elected = set(self.elected.values())
        for key, units in self.undecided.items():
            if key not in elected:
                for slot in units.values():
                    self.joint.remove(slot)

    def _argmax(self, interface: str) -> Tuple[str, str]:
        """Deterministic live-load election (static tie-break order)."""
        best = None
        best_live = -1
        for key in self.interfaces[interface]:
            live = self.live[key]
            if best is None or live > best_live:
                best, best_live = key, live
        return best

    def _reelect(self, interface: str) -> None:
        new = self._argmax(interface)
        old = self.elected[interface]
        if new == old:
            return
        self.elected[interface] = new
        joint = self.joint
        for slot in self.undecided[old].values():
            joint.remove(slot)
        for slot in self.undecided[new].values():
            joint.add(slot)
        chosen = self.static_chosen[interface]
        if old == chosen:
            self.differs += 1
        elif new == chosen:
            self.differs -= 1

    def decide(self, unit: str, to_software: bool) -> None:
        jslot, key, iload, _ihw, cslot = self._unit[unit]
        if key is None:
            self.joint.remove(jslot)
            return
        if self.elected[key[0]] == key:
            self.joint.remove(jslot)
        self.cluster_pool[key].remove(cslot)
        del self.undecided[key][unit]
        if to_software:
            self.committed_sw[key] += iload
        else:
            self.committed_hw[key] += iload
            self.live[key] -= iload
            self._reelect(key[0])

    def undecide(self, unit: str, was_software: bool) -> None:
        jslot, key, iload, _ihw, cslot = self._unit[unit]
        if key is None:
            self.joint.add(jslot)
            return
        if was_software:
            self.committed_sw[key] -= iload
        else:
            self.committed_hw[key] -= iload
            self.live[key] += iload
            self._reelect(key[0])
        self.undecided[key][unit] = jslot
        self.cluster_pool[key].add(cslot)
        if self.elected[key[0]] == key:
            self.joint.add(jslot)

    def forced(self, resident_common: int) -> Optional[int]:
        """Forced hardware cost under the current elections.

        ``None`` means the provably resident load alone exceeds some
        constraint — no completion of this subtree is feasible.
        """
        budget = self.icap_total - resident_common
        for key in self.elected.values():
            budget -= self.floors[key] + self.committed_sw[key]
        if budget < 0:
            return None
        joint = self.joint
        extra = (
            joint.forced_cost(budget)
            if joint.total_load > budget
            else 0
        )
        elected = set(self.elected.values())
        for key, pool in self.cluster_pool.items():
            if key in elected:
                continue
            cluster_budget = (
                self.icap_total
                - resident_common
                - self.floors[key]
                - self.committed_sw[key]
            )
            if cluster_budget < 0:
                return None
            if pool.total_load > cluster_budget:
                extra += pool.forced_cost(cluster_budget)
        return extra


class SearchState:
    """Delta-cost evaluation state over one :class:`SynthesisProblem`.

    ``assign(unit, target)`` / ``unassign(unit)`` maintain every cost
    and feasibility aggregate incrementally on the integer kernel;
    ``feasible``, ``leaf()`` and ``lower_bound()`` are O(1)/O(log n)
    reads.  ``evaluation()`` assembles a full
    :class:`~repro.synth.cost.Evaluation` (reference semantics,
    including the truncated-utilizations shape on violation) from the
    maintained aggregates.

    ``exact`` is deprecated (a no-op since the integer kernel — every
    mode is exact now); passing it emits a :class:`DeprecationWarning`.
    ``capacity_bound=False`` skips the knapsack maintenance (useful for
    explorers that never read ``lower_bound()``, e.g. annealing).
    ``dynamic_pool=False`` keeps the capacity bound but freezes the
    joint pool's per-interface cluster choice to the static election
    (the PR 3 behavior) — the ablation lever of the re-elected bound.

    ``backend`` selects the bookkeeping implementation
    (:mod:`repro.synth.backend`): ``"python"`` is this scalar kernel;
    ``"numpy"`` (the default whenever NumPy is importable) constructs
    the structure-of-arrays subclass whose
    :meth:`score_candidates` evaluates a whole sibling batch in one
    vectorized pass.  Both backends are byte-identical — the scalar
    kernel is the oracle the property suite checks the arrays against.
    """

    #: Partial-mapping infeasibility is monotone (loads only grow along
    #: a search path), so explorers may prune on it.
    can_prune_infeasible = True

    #: Concrete backend name of this class (subclass overrides).
    backend = "python"

    def __new__(
        cls,
        problem: Optional[SynthesisProblem] = None,
        variants_resident: bool = True,
        exact: object = _UNSET,
        capacity_bound: bool = True,
        dynamic_pool: bool = True,
        backend: Optional[str] = None,
    ) -> "SearchState":
        # Auto-dispatch to the array backend; constructing the
        # subclass (or passing backend="python") bypasses it.
        if (
            cls is SearchState
            and problem is not None
            and resolve_backend(backend) == "numpy"
        ):
            cls = _NumpySearchState
        return object.__new__(cls)

    def __init__(
        self,
        problem: SynthesisProblem,
        variants_resident: bool = True,
        exact: object = _UNSET,
        capacity_bound: bool = True,
        dynamic_pool: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        if exact is not _UNSET:
            _warn_exact()
        self.problem = problem
        self.variants_resident = variants_resident
        self.exact = False if exact is _UNSET else exact
        self.capacity_bound = capacity_bound
        self.dynamic_pool = dynamic_pool
        arch = problem.architecture
        self._ipcost = quantize(arch.processor_cost)
        self._icap = quantize_capacity(arch.processor_capacity)
        self._imcap = (
            quantize_capacity(arch.memory_capacity)
            if arch.memory_capacity > 0
            else None
        )
        self._index: Dict[str, int] = {
            unit: index for index, unit in enumerate(problem.units)
        }
        #: unit -> (iload, imem, ihw_cost, util_key, mem_key)
        self._info: Dict[str, tuple] = {}
        pending_hwonly = 0
        unassigned_swonly = 0
        for unit in problem.units:
            entry = problem.entry(unit)
            software = entry.software
            iload = (
                quantize(software.utilization)
                if software is not None
                else None
            )
            imem = (
                quantize(software.memory) if software is not None else None
            )
            ihw = (
                quantize(entry.hardware.cost)
                if entry.hardware is not None
                else None
            )
            self._info[unit] = (
                iload,
                imem,
                ihw,
                problem.exclusion_group(unit),
                None if variants_resident else problem.variant_group(unit),
            )
            if iload is None and ihw is not None:
                pending_hwonly += ihw
            if ihw is None:
                unassigned_swonly += 1

        self.assignment: Dict[str, Target] = {}
        self._buckets: Dict[int, Dict[str, None]] = {}
        self._uload: Dict[int, _ExclusionLoad] = {}
        self._mload: Dict[int, _ExclusionLoad] = {}
        self._hw_units: Set[str] = set()
        self._ihwcost = 0
        self._ipending_hwonly = pending_hwonly
        self._unassigned_swonly = unassigned_swonly
        self._util_viol = 0
        self._mem_viol = 0
        self._dyn: Optional[_DynamicPools] = None
        if capacity_bound:
            self._init_capacity_bound()
        else:
            self._flex_slot: Dict[str, Tuple[int, int, bool]] = {}
            self._pools: List[_KnapsackBound] = []
            self._ibudget_base: List[int] = []
            self._iassigned_sw: List[int] = []
            self._icommon_floor = 0
            self._icommon_sw = 0

    def _init_capacity_bound(self) -> None:
        """Static setup of the capacity-aware knapsack relaxation.

        Builds one knapsack *pool* per valid capacity constraint, over
        pairwise-disjoint unit sets (so their forced costs add):

        * pool 0 — common units plus, per interface, the *chosen*
          cluster (largest total software load): for any fixed choice
          ``c_θ``, ``common + Σ_θ S_{c_θ} ≤ P·cap`` holds in every
          completion, and the heaviest choice gives the tightest root
          bound;
        * one pool per remaining cluster ``c`` — ``common + S_c ≤
          P·cap`` also holds for every cluster individually; its
          budget subtracts the *provably resident* common load
          (software-only floor plus already-assigned flexible units,
          which keep their targets in all completions of this
          subtree).

        Each pool tracks a constant software-only load floor, the
        counted flexible load currently assigned to software, and a
        density-sorted Fenwick tree of the undecided flexible units.
        """
        cluster_loads: Dict[Tuple[str, str], int] = {}
        for unit, (iload, _imem, _ihw, ukey, _mkey) in self._info.items():
            if iload is not None and ukey is not None:
                cluster_loads[ukey] = cluster_loads.get(ukey, 0) + iload
        chosen: Dict[str, Tuple[str, str]] = {}
        for key in sorted(cluster_loads):
            interface = key[0]
            best = chosen.get(interface)
            if best is None or cluster_loads[key] > cluster_loads[best]:
                chosen[interface] = key
        pool_of_cluster: Dict[Tuple[str, str], int] = {}
        next_pool = 1
        for key in sorted(cluster_loads):
            if chosen[key[0]] == key:
                pool_of_cluster[key] = 0
            else:
                pool_of_cluster[key] = next_pool
                next_pool += 1

        n_pools = next_pool
        floors = [0] * n_pools
        members: List[List[Tuple[float, int, str, int, int]]] = [
            [] for _ in range(n_pools)
        ]
        common_floor = 0
        for unit, (iload, _imem, ihw, ukey, _mkey) in self._info.items():
            if iload is None:
                continue  # hardware-only: no capacity consumption
            pool = 0 if ukey is None else pool_of_cluster[ukey]
            if ihw is None:
                floors[pool] += iload
                if ukey is None:
                    common_floor += iload
            elif iload > 0:
                members[pool].append(
                    (-(ihw / iload), self._index[unit], unit, iload, ihw)
                )
        #: unit -> (pool index, Fenwick slot, counted-as-common flag)
        self._flex_slot = {}
        self._pools: List[_KnapsackBound] = []
        for pool, entries in enumerate(members):
            entries.sort()
            for slot, entry in enumerate(entries, start=1):
                unit, ukey = entry[2], self._info[entry[2]][3]
                self._flex_slot[unit] = (pool, slot, ukey is None)
            self._pools.append(
                _KnapsackBound(
                    [(iload, ihw) for _d, _i, _u, iload, ihw in entries]
                )
            )
        icap_total = (
            self.problem.architecture.max_processors * self._icap
        )
        self._ibudget_base = [icap_total - floor for floor in floors]
        self._icommon_floor = common_floor
        #: per pool: counted flexible load currently assigned to SW.
        self._iassigned_sw = [0] * n_pools
        #: common flexible load currently assigned to software.
        self._icommon_sw = 0
        if self.dynamic_pool and cluster_loads:
            self._init_dynamic_pools(icap_total, chosen)

    def _init_dynamic_pools(
        self,
        icap_total: int,
        static_chosen: Dict[str, Tuple[str, str]],
    ) -> None:
        """Build the re-elected twin of the static pool family.

        Same member set as the static pools (flexible positive-load
        units) and the same density key (``-ihw/iload`` with the
        unit-enumeration index as tie-break), so when every election
        matches the static choice the two formulations agree exactly
        and the dynamic read is skipped.
        """
        common_entries: List[Tuple[int, str, int, int]] = []
        cluster_entries: Dict[
            Tuple[str, str], List[Tuple[int, str, int, int]]
        ] = {}
        cluster_floors: Dict[Tuple[str, str], int] = {}
        for unit, (iload, _imem, ihw, ukey, _mkey) in self._info.items():
            if iload is None:
                continue
            if ukey is not None:
                cluster_entries.setdefault(ukey, [])
                cluster_floors.setdefault(ukey, 0)
            if ihw is None:
                if ukey is not None:
                    cluster_floors[ukey] += iload
            elif iload > 0:
                entry = (self._index[unit], unit, iload, ihw)
                if ukey is None:
                    common_entries.append(entry)
                else:
                    cluster_entries[ukey].append(entry)
        self._dyn = _DynamicPools(
            icap_total,
            common_entries,
            cluster_entries,
            cluster_floors,
            static_chosen,
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, unit: str, target: Target) -> None:
        """Add one unit→target decision; O(1) amortized."""
        if unit in self.assignment:
            raise SynthesisError(f"unit {unit!r} is already assigned")
        self._add(unit, target)
        self.assignment[unit] = target

    def unassign(self, unit: str) -> None:
        """Remove one unit's decision; O(1) amortized."""
        target = self.assignment.pop(unit, None)
        if target is None:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        self._remove(unit, target)

    def reassign(self, unit: str, target: Target) -> None:
        """Move one unit to a new target.

        Equivalent to ``unassign(unit); assign(unit, target)`` — the
        hot operation of simulated annealing moves; with the integer
        kernel both steps are O(1) accumulator updates.
        """
        old = self.assignment.get(unit)
        if old is None:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        self._remove(unit, old)
        self._add(unit, target)
        self.assignment[unit] = target

    def _add(self, unit: str, target: Target) -> None:
        info = self._info.get(unit)
        if info is None:
            raise SynthesisError(
                f"problem {self.problem.name!r} has no unit {unit!r}"
            )
        iload, imem, ihw, ukey, mkey = info
        if target.is_software:
            if iload is None:
                raise SynthesisError(
                    f"unit {unit!r} mapped to software without a software "
                    f"option"
                )
            self._proc_add(target.processor, unit, iload, imem, ukey, mkey)
            self._pool_decide(unit, iload, to_software=True)
        else:
            if ihw is None:
                raise SynthesisError(
                    f"unit {unit!r} mapped to hardware without a hardware "
                    f"option"
                )
            self._hw_units.add(unit)
            self._ihwcost += ihw
            self._pool_decide(unit, iload, to_software=False)
        if iload is None and ihw is not None:
            self._ipending_hwonly -= ihw
        if ihw is None:
            self._unassigned_swonly -= 1

    def _remove(self, unit: str, target: Target) -> None:
        iload, imem, ihw, ukey, mkey = self._info[unit]
        if target.is_software:
            self._proc_remove(
                target.processor, unit, iload, imem, ukey, mkey
            )
            self._pool_undecide(unit, iload, was_software=True)
        else:
            self._hw_units.discard(unit)
            self._ihwcost -= ihw
            self._pool_undecide(unit, iload, was_software=False)
        if iload is None and ihw is not None:
            self._ipending_hwonly += ihw
        if ihw is None:
            self._unassigned_swonly += 1

    # -- per-processor bookkeeping (backend-specific) -------------------
    def _proc_add(
        self,
        processor: int,
        unit: str,
        iload: int,
        imem: int,
        ukey: _GroupKey,
        mkey: _GroupKey,
    ) -> None:
        """Put one software unit's load on a processor column."""
        bucket = self._buckets.get(processor)
        if bucket is None:
            bucket = self._buckets[processor] = {}
        bucket[unit] = None
        uload = self._uload.get(processor)
        if uload is None:
            uload = self._uload[processor] = _ExclusionLoad()
            self._mload[processor] = _ExclusionLoad()
        util_before = uload.total
        mem_before = self._mload[processor].total
        uload.add(ukey, iload)
        self._mload[processor].add(mkey, imem)
        self._update_violations(processor, util_before, mem_before)

    def _proc_remove(
        self,
        processor: int,
        unit: str,
        iload: int,
        imem: int,
        ukey: _GroupKey,
        mkey: _GroupKey,
    ) -> None:
        """Take one software unit's load off a processor column."""
        bucket = self._buckets[processor]
        del bucket[unit]
        if not bucket:
            self._drop_processor(processor)
        else:
            uload = self._uload[processor]
            util_before = uload.total
            mem_before = self._mload[processor].total
            uload.remove(ukey, iload)
            self._mload[processor].remove(mkey, imem)
            self._update_violations(processor, util_before, mem_before)

    # -- knapsack-pool bookkeeping (backend-shared) ---------------------
    def _pool_decide(
        self, unit: str, iload: Optional[int], to_software: bool
    ) -> None:
        """Commit one flexible unit's decision to the bound pools."""
        entry = self._flex_slot.get(unit)
        if entry is None:
            return
        pool, slot, is_common = entry
        self._pools[pool].remove(slot)
        if to_software:
            self._iassigned_sw[pool] += iload
            if is_common:
                self._icommon_sw += iload
        if self._dyn is not None:
            self._dyn.decide(unit, to_software=to_software)

    def _pool_undecide(
        self, unit: str, iload: Optional[int], was_software: bool
    ) -> None:
        """Return one flexible unit's decision to the bound pools."""
        entry = self._flex_slot.get(unit)
        if entry is None:
            return
        pool, slot, is_common = entry
        self._pools[pool].add(slot)
        if was_software:
            self._iassigned_sw[pool] -= iload
            if is_common:
                self._icommon_sw -= iload
        if self._dyn is not None:
            self._dyn.undecide(unit, was_software=was_software)

    def _drop_processor(self, processor: int) -> None:
        """Forget an emptied processor's aggregates."""
        del self._buckets[processor]
        uload = self._uload.pop(processor)
        mload = self._mload.pop(processor)
        self._util_viol -= uload.total > self._icap
        if self._imcap is not None:
            self._mem_viol -= mload.total > self._imcap

    def _update_violations(
        self, processor: int, util_before: int, mem_before: int
    ) -> None:
        self._util_viol += (
            self._uload[processor].total > self._icap
        ) - (util_before > self._icap)
        if self._imcap is not None:
            self._mem_viol += (
                self._mload[processor].total > self._imcap
            ) - (mem_before > self._imcap)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _iutil(self, processor: int) -> int:
        """Integer (quanta) software utilization of one processor."""
        uload = self._uload.get(processor)
        return 0 if uload is None else uload.total

    def _imem(self, processor: int) -> int:
        """Integer (quanta) memory footprint of one processor."""
        mload = self._mload.get(processor)
        return 0 if mload is None else mload.total

    def utilization(self, processor: int) -> float:
        """Current software utilization of one processor."""
        return self._iutil(processor) / QUANT_SCALE

    def memory(self, processor: int) -> float:
        """Current memory footprint of one processor."""
        return self._imem(processor) / QUANT_SCALE

    @property
    def hardware_cost(self) -> float:
        """Total hardware cost of the HW-assigned units."""
        return self._ihwcost / QUANT_SCALE

    @property
    def software_cost(self) -> float:
        """Processor-allocation cost of the current partial mapping."""
        return self.processor_count * self._ipcost / QUANT_SCALE

    @property
    def processor_count(self) -> int:
        """Number of processors currently hosting software."""
        return len(self._buckets)

    def processors_used(self) -> Tuple[int, ...]:
        """Sorted processor indices currently hosting software."""
        return tuple(self.used_processors())

    def used_processors(self) -> List[int]:
        """Sorted processor indices — O(allocated), not O(assigned)."""
        return sorted(self._buckets)

    @property
    def feasible(self) -> bool:
        """Whether the current (partial) mapping violates no resource.

        Loads are monotone along a search path, so ``False`` here means
        no completion of the current partial mapping is feasible.
        """
        if self.processor_count > self.problem.architecture.max_processors:
            return False
        return self._util_viol == 0 and self._mem_viol == 0

    @property
    def complete(self) -> bool:
        """Whether every unit of the problem is assigned."""
        return len(self.assignment) == len(self.problem.units)

    def leaf(self) -> Tuple[bool, float]:
        """O(1) (feasible, total_cost) of the current complete mapping."""
        ok = self.feasible
        if not ok:
            return False, float("inf")
        return (
            True,
            (self.processor_count * self._ipcost + self._ihwcost)
            / QUANT_SCALE,
        )

    def _processor_floor(self) -> int:
        processors = self.processor_count
        if processors == 0 and self._unassigned_swonly:
            processors = 1
        return processors

    def basic_lower_bound(self) -> float:
        """The capacity-blind admissible bound (pre-knapsack behavior).

        Pays committed hardware, the cheapest hardware of undecided
        hardware-only units, and every *already allocated* processor
        (assigned units keep their targets in all completions of this
        subtree).
        """
        return (
            self._ihwcost
            + self._ipending_hwonly
            + self._processor_floor() * self._ipcost
        ) / QUANT_SCALE

    def lower_bound(self) -> float:
        """Admissible lower bound on any completion's total cost.

        :meth:`basic_lower_bound` plus the capacity-aware term: per
        knapsack pool, the cheapest hardware cost (fractional-knapsack
        relaxation) of the counted undecided software-capable load
        that cannot fit the architecture's total remaining processor
        capacity.  Pools cover disjoint unit sets, so their forced
        costs add.  Returns ``inf`` when even the provably resident
        load cannot fit — no completion of this subtree is feasible.

        With ``dynamic_pool=True`` the forced term is the max of the
        static-election pools and the live-load re-elected pools
        (skipped — it is provably equal — while every election still
        matches the static choice), so the dynamic bound is pointwise
        at least as tight as the static one.
        """
        forced = self._forced_term()
        if forced is None:
            return float("inf")
        return (
            self._ihwcost
            + self._ipending_hwonly
            + self._processor_floor() * self._ipcost
            + forced
        ) / QUANT_SCALE

    def _forced_term(self) -> Optional[int]:
        """Integer forced-hardware term of the capacity-aware bound.

        ``None`` means some pool's provably resident load exceeds its
        budget — no completion of this subtree is feasible (the float
        bound reads it as ``inf``).  Processor-independent, so batch
        candidate scoring shares one computation across all software
        placements of a unit.
        """
        pools = self._pools
        if not pools:
            return 0
        budgets = self._ibudget_base
        assigned = self._iassigned_sw
        # Common load that provably stays software in every
        # completion of this subtree: software-only floor plus
        # flexible units already committed to software.
        resident_common = self._icommon_floor + self._icommon_sw
        forced = 0
        for pool, knapsack in enumerate(pools):
            budget = budgets[pool] - assigned[pool]
            if pool:
                budget -= resident_common
            if budget < 0:
                return None
            if knapsack.total_load > budget:
                forced += knapsack.forced_cost(budget)
        dyn = self._dyn
        if dyn is not None and dyn.differs:
            dyn_forced = dyn.forced(resident_common)
            if dyn_forced is None:
                return None
            if dyn_forced > forced:
                forced = dyn_forced
        return forced

    def to_mapping(self) -> Mapping:
        """Snapshot the current assignment as an immutable Mapping."""
        return Mapping(dict(self.assignment))

    def evaluation(self) -> Evaluation:
        """Full :class:`Evaluation` of the current complete mapping.

        Mirrors the reference oracle's semantics — including the
        truncated utilization tuple and violation message of the first
        offending processor — but reads every aggregate from the
        incrementally maintained integer state.
        """
        if not self.complete:
            missing = [
                u for u in self.problem.units if u not in self.assignment
            ]
            raise SynthesisError(f"mapping does not cover units {missing}")
        arch = self.problem.architecture
        processors = self.used_processors()
        hardware_cost = self._ihwcost / QUANT_SCALE
        if len(processors) > arch.max_processors:
            return self._infeasible(
                f"{len(processors)} processors used, template allows "
                f"{arch.max_processors}"
            )
        utilizations: List[float] = []
        for processor in processors:
            iload = self._iutil(processor)
            load = iload / QUANT_SCALE
            utilizations.append(load)
            if iload > self._icap:
                return self._infeasible(
                    f"processor {processor} utilization {load:.3f} exceeds "
                    f"capacity {arch.processor_capacity:.3f}",
                    partial_hw=hardware_cost,
                    utilizations=tuple(utilizations),
                )
            if self._imcap is not None:
                imem = self._imem(processor)
                if imem > self._imcap:
                    footprint = imem / QUANT_SCALE
                    return self._infeasible(
                        f"processor {processor} memory {footprint:.3f} "
                        f"exceeds capacity {arch.memory_capacity:.3f}",
                        partial_hw=hardware_cost,
                        utilizations=tuple(utilizations),
                    )
        software_cost = len(processors) * self._ipcost / QUANT_SCALE
        return Evaluation(
            feasible=True,
            total_cost=(
                len(processors) * self._ipcost + self._ihwcost
            )
            / QUANT_SCALE,
            software_cost=software_cost,
            hardware_cost=hardware_cost,
            processors_used=len(processors),
            utilizations=tuple(utilizations),
        )

    def _infeasible(
        self,
        reason: str,
        partial_hw: float = 0.0,
        utilizations: Tuple[float, ...] = (),
    ) -> Evaluation:
        return Evaluation(
            feasible=False,
            total_cost=float("inf"),
            software_cost=0.0,
            hardware_cost=partial_hw,
            processors_used=self.processor_count,
            utilizations=utilizations,
            violation=reason,
        )

    # ------------------------------------------------------------------
    # batch evaluation API
    # ------------------------------------------------------------------
    def score_candidates(
        self, unit: str, targets: Sequence[Target]
    ) -> List[Tuple[float, bool]]:
        """Score sibling candidate targets of one undecided unit.

        Returns one ``(lower_bound, feasible)`` pair per target — the
        state's :meth:`lower_bound` and :attr:`feasible` reads after
        hypothetically assigning ``unit`` to that target.  The state
        is restored exactly on return (and on any per-target error).

        The scalar implementation probes each candidate through a
        paired assign/unassign; the NumPy backend overrides it with
        one vectorized pass over all sibling deltas.  Both paths are
        byte-identical — the bound is computed from the same integer
        accumulators even for infeasible candidates, so callers may
        apply their own infeasibility policy.
        """
        results: List[Tuple[float, bool]] = []
        for target in targets:
            self.assign(unit, target)
            try:
                results.append((self.lower_bound(), self.feasible))
            finally:
                self.unassign(unit)
        return results

    def probe_move(self, unit: str, target: Target) -> Evaluation:
        """Evaluation after hypothetically reassigning one unit.

        The move-proposal probe of simulated annealing: returns
        exactly what ``reassign(unit, target); evaluation()`` would,
        with the state restored on return — callers commit accepted
        moves with a single :meth:`reassign`.
        """
        old = self.assignment.get(unit)
        if old is None:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        self.reassign(unit, target)
        try:
            return self.evaluation()
        finally:
            self.reassign(unit, old)


#: Public alias — the delta-cost search state *is* the incremental
#: evaluator of the subsystem.
IncrementalEvaluator = SearchState


class _ArrayExclusion:
    """Structure-of-arrays twin of :class:`_ExclusionLoad`.

    One instance covers *all* processors at once: column ``p`` of each
    ``int64`` array is processor ``p``'s aggregate, and
    ``total[p] == common + Σ_iface imax[iface, p]`` is maintained as
    an invariant on every mutation.  The row layout (one row per
    interface / per ``(interface, cluster)`` group, fixed at
    construction from the problem's group keys) is what lets
    :meth:`probe_add` evaluate "total after adding this load" for a
    whole vector of candidate processors in one fused pass — the
    vectorized half of :meth:`SearchState.score_candidates`.

    All entries are integer quanta, exactly the scalar kernel's
    accumulators, so every read is byte-identical to
    :class:`_ExclusionLoad` by construction (the property suite
    asserts it against the oracle).
    """

    __slots__ = (
        "total",
        "imax",
        "gload",
        "gcnt",
        "_iface_row",
        "_group_row",
        "_iface_groups",
        "_np",
    )

    def __init__(self, np_mod, keys, columns: int) -> None:
        self._np = np_mod
        ifaces = sorted({key[0] for key in keys})
        groups = sorted(set(keys))
        self._iface_row = {
            iface: row for row, iface in enumerate(ifaces)
        }
        self._group_row = {group: row for row, group in enumerate(groups)}
        self._iface_groups = [
            np_mod.array(
                [
                    self._group_row[group]
                    for group in groups
                    if group[0] == iface
                ],
                dtype=np_mod.intp,
            )
            for iface in ifaces
        ]
        self.total = np_mod.zeros(columns, dtype=np_mod.int64)
        self.imax = np_mod.zeros((len(ifaces), columns), dtype=np_mod.int64)
        self.gload = np_mod.zeros(
            (len(groups), columns), dtype=np_mod.int64
        )
        self.gcnt = np_mod.zeros((len(groups), columns), dtype=np_mod.int64)

    def grow(self, columns: int) -> None:
        """Widen every array to ``columns`` processor columns."""
        np_mod = self._np

        def wide(array):
            fresh = np_mod.zeros(
                array.shape[:-1] + (columns,), dtype=np_mod.int64
            )
            fresh[..., : array.shape[-1]] = array
            return fresh

        self.total = wide(self.total)
        self.imax = wide(self.imax)
        self.gload = wide(self.gload)
        self.gcnt = wide(self.gcnt)

    def add(self, key: _GroupKey, value: int, processor: int) -> None:
        if key is None:
            self.total[processor] += value
            return
        iface = self._iface_row[key[0]]
        group = self._group_row[key]
        gload = self.gload
        new_load = gload[group, processor] + value
        gload[group, processor] = new_load
        self.gcnt[group, processor] += 1
        old_max = self.imax[iface, processor]
        if new_load > old_max:
            self.imax[iface, processor] = new_load
            self.total[processor] += new_load - old_max

    def remove(self, key: _GroupKey, value: int, processor: int) -> None:
        if key is None:
            self.total[processor] -= value
            return
        iface = self._iface_row[key[0]]
        group = self._group_row[key]
        gload = self.gload
        old_load = gload[group, processor]
        gload[group, processor] = old_load - value
        self.gcnt[group, processor] -= 1
        if old_load >= self.imax[iface, processor]:
            # The removed-from cluster was (tied for) the interface
            # max: re-scan this interface's cluster rows.  Emptied
            # clusters sit at exactly zero (integer accumulators), so
            # the plain row max *is* the max over populated clusters.
            rows = self._iface_groups[iface]
            new_max = int(gload[rows, processor].max())
            self.total[processor] += new_max - old_load
            self.imax[iface, processor] = new_max

    def probe_add(self, key: _GroupKey, value: int, ps):
        """Vector of per-processor totals *after* adding one load.

        ``ps`` is an index array of candidate processors; nothing is
        mutated.  For a grouped load the new total swaps the
        interface's current max for ``max(current max, cluster+value)``
        — the same delta :meth:`add` applies, evaluated lazily for
        every candidate column at once.
        """
        if key is None:
            return self.total[ps] + value
        iface = self._iface_row[key[0]]
        group = self._group_row[key]
        cur_max = self.imax[iface, ps]
        new_load = self.gload[group, ps] + value
        return (
            self.total[ps]
            - cur_max
            + self._np.maximum(cur_max, new_load)
        )


class _NumpySearchState(SearchState):
    """NumPy structure-of-arrays backend of :class:`SearchState`.

    Same integer kernel, different layout: the per-processor dicts of
    the scalar backend become ``int64`` columns (`_ArrayExclusion` for
    utilization and memory, plus unit-count and total vectors), which
    makes :meth:`score_candidates` a single vectorized pass over all
    sibling candidates — the knapsack forced term is
    processor-independent, so one pool round-trip is shared by every
    software placement while the per-processor deltas, violation
    counters and processor floors evaluate as array expressions.

    Scalar mutations pay a small constant for array indexing; batch
    candidate scoring is where the backend wins (see
    ``benchmarks/bench_explorer.py``'s ``batch_kernel`` section).
    Every read is byte-identical to the scalar backend — same integer
    accumulators, same Python-int division at the float edges.
    """

    backend = "numpy"

    def __init__(
        self,
        problem: SynthesisProblem,
        variants_resident: bool = True,
        exact: object = _UNSET,
        capacity_bound: bool = True,
        dynamic_pool: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(
            problem,
            variants_resident=variants_resident,
            exact=exact,
            capacity_bound=capacity_bound,
            dynamic_pool=dynamic_pool,
        )
        np_mod = _backend.numpy
        if np_mod is None:  # pragma: no cover - dispatch guards this
            raise SynthesisError("numpy backend constructed without numpy")
        self._np = np_mod
        # One column per template processor plus the first
        # symmetry-broken fresh slot; tests and warm starts may address
        # higher indices, so every entry point grows on demand.
        columns = problem.architecture.max_processors + 1
        self._columns = columns
        self._nprocs = 0
        self._nunits = np_mod.zeros(columns, dtype=np_mod.int64)
        placeable = [
            info for info in self._info.values() if info[0] is not None
        ]
        self._autil = _ArrayExclusion(
            np_mod,
            [info[3] for info in placeable if info[3] is not None],
            columns,
        )
        self._amem = _ArrayExclusion(
            np_mod,
            [info[4] for info in placeable if info[4] is not None],
            columns,
        )
        # Candidate-processor index vectors, keyed by the processor
        # tuple: sibling batches re-probe the same few target lists
        # thousands of times, so the array build is worth caching.
        self._ps_cache: Dict[Tuple[int, ...], object] = {}

    def _ensure_processor(self, processor: int) -> None:
        if processor < self._columns:
            return
        columns = max(processor + 1, self._columns * 2)
        self._columns = columns
        fresh = self._np.zeros(columns, dtype=self._np.int64)
        fresh[: self._nunits.shape[0]] = self._nunits
        self._nunits = fresh
        self._autil.grow(columns)
        self._amem.grow(columns)

    # -- per-processor bookkeeping (array columns) ----------------------
    def _proc_add(
        self,
        processor: int,
        unit: str,
        iload: int,
        imem: int,
        ukey: _GroupKey,
        mkey: _GroupKey,
    ) -> None:
        self._ensure_processor(processor)
        autil, amem = self._autil, self._amem
        util_before = autil.total[processor]
        mem_before = amem.total[processor]
        autil.add(ukey, iload, processor)
        amem.add(mkey, imem, processor)
        count = self._nunits[processor]
        if count == 0:
            self._nprocs += 1
        self._nunits[processor] = count + 1
        self._util_viol += bool(autil.total[processor] > self._icap) - bool(
            util_before > self._icap
        )
        if self._imcap is not None:
            self._mem_viol += bool(
                amem.total[processor] > self._imcap
            ) - bool(mem_before > self._imcap)

    def _proc_remove(
        self,
        processor: int,
        unit: str,
        iload: int,
        imem: int,
        ukey: _GroupKey,
        mkey: _GroupKey,
    ) -> None:
        autil, amem = self._autil, self._amem
        util_before = autil.total[processor]
        mem_before = amem.total[processor]
        autil.remove(ukey, iload, processor)
        amem.remove(mkey, imem, processor)
        count = self._nunits[processor] - 1
        self._nunits[processor] = count
        if count == 0:
            self._nprocs -= 1
        # Unlike the dict backend (which forgets an emptied column
        # wholesale), the arrays always subtract — an emptied column
        # returns to exactly zero, so the violation accounting is
        # identical either way.
        self._util_viol += bool(autil.total[processor] > self._icap) - bool(
            util_before > self._icap
        )
        if self._imcap is not None:
            self._mem_viol += bool(
                amem.total[processor] > self._imcap
            ) - bool(mem_before > self._imcap)

    # -- reads ----------------------------------------------------------
    def _iutil(self, processor: int) -> int:
        if processor >= self._columns:
            return 0
        return int(self._autil.total[processor])

    def _imem(self, processor: int) -> int:
        if processor >= self._columns:
            return 0
        return int(self._amem.total[processor])

    @property
    def processor_count(self) -> int:
        return self._nprocs

    def used_processors(self) -> List[int]:
        return [int(p) for p in self._np.flatnonzero(self._nunits)]

    # -- batch evaluation ----------------------------------------------
    def score_candidates(
        self, unit: str, targets: Sequence[Target]
    ) -> List[Tuple[float, bool]]:
        """All sibling candidate scores in one vectorized pass.

        Byte-identical to the scalar probe loop: same integer
        accumulators, same Python-int division at the float edge, same
        errors for inadmissible units/targets.
        """
        if unit in self.assignment:
            raise SynthesisError(f"unit {unit!r} is already assigned")
        info = self._info.get(unit)
        if info is None:
            raise SynthesisError(
                f"problem {self.problem.name!r} has no unit {unit!r}"
            )
        iload, imem, ihw, ukey, mkey = info
        sw_positions: List[int] = []
        sw_procs: List[int] = []
        hw_positions: List[int] = []
        sw_kind = ImplKind.SOFTWARE
        for position, target in enumerate(targets):
            if target.kind is sw_kind:
                if iload is None:
                    raise SynthesisError(
                        f"unit {unit!r} mapped to software without a "
                        f"software option"
                    )
                sw_positions.append(position)
                sw_procs.append(target.processor)
            else:
                if ihw is None:
                    raise SynthesisError(
                        f"unit {unit!r} mapped to hardware without a "
                        f"hardware option"
                    )
                hw_positions.append(position)

        np_mod = self._np
        max_processors = self.problem.architecture.max_processors
        nprocs = self._nprocs
        results: List[Optional[Tuple[float, bool]]] = [None] * len(targets)

        if hw_positions:
            # Hardware placement touches no processor column: current
            # feasibility carries over, and only the pools move.
            self._pool_decide(unit, iload, to_software=False)
            forced = self._forced_term()
            self._pool_undecide(unit, iload, was_software=False)
            feasible_now = self.feasible
            if forced is None:
                hw_score = (float("inf"), feasible_now)
            else:
                pending = self._ipending_hwonly - (
                    ihw if iload is None else 0
                )
                floor = nprocs
                if floor == 0 and self._unassigned_swonly:
                    floor = 1
                hw_score = (
                    (
                        self._ihwcost
                        + ihw
                        + pending
                        + floor * self._ipcost
                        + forced
                    )
                    / QUANT_SCALE,
                    feasible_now,
                )
            for position in hw_positions:
                results[position] = hw_score

        if sw_positions:
            self._pool_decide(unit, iload, to_software=True)
            forced = self._forced_term()
            self._pool_undecide(unit, iload, was_software=True)
            self._ensure_processor(max(sw_procs))
            key = tuple(sw_procs)
            ps = self._ps_cache.get(key)
            if ps is None:
                ps = np_mod.array(sw_procs, dtype=np_mod.intp)
                self._ps_cache[key] = ps
            nprocs_after = nprocs + (self._nunits[ps] == 0)
            autil = self._autil
            util_after = autil.probe_add(ukey, iload, ps)
            icap = self._icap
            util_viol = self._util_viol
            if util_viol:
                int64 = np_mod.int64
                viol_after = (
                    util_viol
                    + (util_after > icap).astype(int64)
                    - (autil.total[ps] > icap).astype(int64)
                )
                ok = (nprocs_after <= max_processors) & (viol_after == 0)
            else:
                # No column violates now, and a probe only ever raises
                # the probed column: the global violation count after
                # the move is zero exactly when that column stays
                # within capacity.
                ok = (nprocs_after <= max_processors) & (
                    util_after <= icap
                )
            imcap = self._imcap
            if imcap is not None:
                amem = self._amem
                mem_after = amem.probe_add(mkey, imem, ps)
                mem_viol = self._mem_viol
                if mem_viol:
                    int64 = np_mod.int64
                    mem_viol_after = (
                        mem_viol
                        + (mem_after > imcap).astype(int64)
                        - (amem.total[ps] > imcap).astype(int64)
                    )
                    ok &= mem_viol_after == 0
                else:
                    ok &= mem_after <= imcap
            # ``tolist()`` hands back Python ints/bools in one C pass
            # (per-element ``array[i]`` indexing would dominate the
            # batch); the trailing ``int / QUANT_SCALE`` divisions stay
            # Python-int exact, same as the scalar kernel's float edge.
            if forced is None:
                inf = float("inf")
                for position, okay in zip(sw_positions, ok.tolist()):
                    results[position] = (inf, okay)
            else:
                # A software placement always hosts >= 1 processor, so
                # the software-only floor special case never applies.
                bounds = (
                    self._ihwcost + self._ipending_hwonly + forced
                ) + nprocs_after * self._ipcost
                for position, ibound, okay in zip(
                    sw_positions, bounds.tolist(), ok.tolist()
                ):
                    results[position] = (ibound / QUANT_SCALE, okay)
        return results


class PathTrail:
    """Delta-replay cursor over search-tree paths of one state.

    Non-depth-first frontiers (best-first, LDS restarts) revisit
    search nodes out of tree order; materializing a fresh state per
    node would rebuild every Fenwick pool each time.  A trail instead
    snapshots a node as its *decision path* — the ``(unit, target)``
    pairs from the root — and restores any node by unwinding to the
    longest common prefix with the currently applied path and
    replaying the divergent suffix through the state's own
    ``assign``/``unassign`` machinery: O(distance between the nodes)
    mutations, never a rebuild.

    Soundness leans on the state's own contracts: the integer kernel
    makes every aggregate order-independent, and dynamic-pool
    elections are a pure function of the committed loads — so a
    restored node reads byte-identical bounds and feasibility however
    the trail got there.
    """

    __slots__ = ("state", "_applied")

    def __init__(self, state) -> None:
        self.state = state
        #: The decision path currently applied on top of the state's
        #: base assignment (``problem.fixed`` plus anything assigned
        #: before the trail took over).
        self._applied: List[Tuple[str, Target]] = []

    @property
    def path(self) -> Tuple[Tuple[str, Target], ...]:
        """The currently applied decision path (root excluded)."""
        return tuple(self._applied)

    def restore(self, path: Tuple[Tuple[str, Target], ...]) -> None:
        """Mutate the state so exactly ``path`` is applied."""
        applied = self._applied
        common = 0
        for have, want in zip(applied, path):
            if have != want:
                break
            common += 1
        state = self.state
        while len(applied) > common:
            state.unassign(applied.pop()[0])
        for pair in path[common:]:
            state.assign(pair[0], pair[1])
            applied.append(pair)


class EvictionLog:
    """Bounded record of frontier evictions for honest proof floors.

    Memory-capped frontiers (``max_open=``, beam widths) shed open
    nodes by worst bound; what the search must remember about a shed
    subtree is *only* the admissible bound it was evicted at — the
    minimum over all evicted bounds is exactly the cost below which
    the run can no longer claim a complete proof.  This log keeps
    that minimum plus a count, O(1) space however many subtrees are
    dropped, and round-trips through search checkpoints (a resumed
    segment inherits the earlier segment's honesty obligations).

    Infinite bounds are ignored: an evicted node whose bound is
    ``inf`` had no feasible completion, so dropping it loses nothing
    and must not poison the floor (``min`` would be unaffected) or
    inflate the count.
    """

    __slots__ = ("count", "floor")

    def __init__(
        self, count: int = 0, floor: float = float("inf")
    ) -> None:
        self.count = count
        self.floor = floor

    def record(self, bounds) -> None:
        """Fold one eviction batch (an iterable of bounds) in."""
        inf = float("inf")
        for bound in bounds:
            if bound == inf:
                continue
            self.count += 1
            if bound < self.floor:
                self.floor = bound

    @property
    def compromised(self) -> bool:
        """True once any finite-bound subtree has been dropped."""
        return self.count > 0


class ReferenceSearchState:
    """Full-recompute twin of :class:`SearchState` (the seed behavior).

    Same search interface, but every read runs the from-scratch
    reference oracle: ``leaf()``/``evaluation()`` rebuild a
    :class:`Mapping` and call :func:`~repro.synth.cost.evaluate`;
    ``lower_bound()`` re-walks all units.  Explorers accept it via
    ``incremental=False`` so benchmarks can *measure* the incremental
    speedup instead of asserting it.
    """

    can_prune_infeasible = False

    backend = "python"

    def __init__(
        self,
        problem: SynthesisProblem,
        variants_resident: bool = True,
        exact: object = _UNSET,
        capacity_bound: bool = False,
        dynamic_pool: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if exact is not _UNSET:
            _warn_exact()
        self.problem = problem
        self.variants_resident = variants_resident
        self.assignment: Dict[str, Target] = {}

    def assign(self, unit: str, target: Target) -> None:
        if unit in self.assignment:
            raise SynthesisError(f"unit {unit!r} is already assigned")
        self.assignment[unit] = target

    def unassign(self, unit: str) -> None:
        if unit not in self.assignment:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        del self.assignment[unit]

    def reassign(self, unit: str, target: Target) -> None:
        if unit not in self.assignment:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        self.assignment[unit] = target

    @property
    def feasible(self) -> bool:
        """Unknown for partial mappings — never claim infeasibility."""
        return True

    def used_processors(self) -> List[int]:
        """Sorted processor indices (full scan — the seed behavior)."""
        return sorted(
            {
                target.processor
                for target in self.assignment.values()
                if target.is_software
            }
        )

    @property
    def complete(self) -> bool:
        return len(self.assignment) == len(self.problem.units)

    def leaf(self) -> Tuple[bool, float]:
        result = self.evaluation()
        return result.feasible, result.total_cost

    def lower_bound(self) -> float:
        return lower_bound(self.problem, self.assignment)

    def to_mapping(self) -> Mapping:
        return Mapping(dict(self.assignment))

    def evaluation(self) -> Evaluation:
        return evaluate(
            self.problem, self.to_mapping(), self.variants_resident
        )

    def score_candidates(
        self, unit: str, targets: Sequence[Target]
    ) -> List[Tuple[float, bool]]:
        """Batch-API twin of :meth:`SearchState.score_candidates`.

        Probes through the full-recompute oracle — explorers running
        ``incremental=False`` still route every candidate loop through
        the one batch entry point.
        """
        results: List[Tuple[float, bool]] = []
        for target in targets:
            self.assign(unit, target)
            try:
                results.append((self.lower_bound(), self.feasible))
            finally:
                self.unassign(unit)
        return results

    def probe_move(self, unit: str, target: Target) -> Evaluation:
        """Batch-API twin of :meth:`SearchState.probe_move`."""
        old = self.assignment.get(unit)
        if old is None:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        self.reassign(unit, target)
        try:
            return self.evaluation()
        finally:
            self.reassign(unit, old)
