"""Incremental (delta-cost) evaluation state for design-space search.

Every explorer in :mod:`repro.synth.explorer` walks the mapping space
by assigning units to targets one at a time.  The seed implementation
re-ran the from-scratch :func:`repro.synth.cost.evaluate` at every
search node — O(units × processors) per node, rebuilding per-processor
buckets and the per-interface max-exclusion aggregation each time.
:class:`SearchState` replaces that with O(1)-amortized deltas:

* per-processor utilization under the paper's exclusion rule
  (``common + Σ_interfaces max_cluster Σ_units``),
* per-processor memory footprints (``variants_resident`` both ways),
* hardware cost and allocated-processor count,
* capacity-violation counters (so feasibility of the current partial
  mapping is an O(1) read), and
* an O(1) admissible lower bound for branch-and-bound pruning.

The "amortized" caveat is the interface max: removing the cluster that
currently dominates an interface's exclusion load re-scans that
interface's clusters *on that processor* — a handful of entries.

The from-scratch :func:`~repro.synth.cost.evaluate` stays the reference
oracle: :class:`ReferenceSearchState` wraps it behind the same search
interface (for benchmarking the speedup instead of asserting it), and
the property suite cross-checks both paths on randomized problems and
assign/unassign sequences.

Exact mode
----------
With ``exact=True`` every mutation re-aggregates the touched
processor's bucket in canonical (``problem.units``) order through the
same helpers the reference oracle uses, so utilization, memory, and
hardware-cost floats are *bit-identical* to ``evaluate()`` — this is
what keeps the refactored simulated annealing byte-reproducible against
the seed implementation.  Delta mode is the fast path for depth-first
search, where assignments nest LIFO and the 1e-9 capacity slack
dominates any float residue by seven orders of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import SynthesisError
from .cost import (
    CAPACITY_EPS,
    Evaluation,
    evaluate,
    lower_bound,
    memory_of_units,
    utilization_of_units,
)
from .mapping import Mapping, SynthesisProblem, Target

#: Grouping key: ``(interface, cluster)`` for exclusion-aware loads,
#: ``None`` for common (always-concurrent) load.
_GroupKey = Optional[Tuple[str, str]]


class _ExclusionLoad:
    """Delta-maintained ``common + Σ_iface max_cluster Σ`` aggregate.

    The unit counts per cluster (and for the common part) let each
    group snap back to exactly ``0.0`` when it empties, and ``total``
    is derived from the per-group aggregates on read (interfaces per
    processor are few), so float residue cannot leak between the
    common part and the exclusion groups.
    """

    __slots__ = ("common", "ncommon", "groups", "imax")

    def __init__(self) -> None:
        self.common = 0.0
        self.ncommon = 0
        #: interface -> {cluster: [load, unit_count]}
        self.groups: Dict[str, Dict[str, List[float]]] = {}
        #: interface -> current max cluster load
        self.imax: Dict[str, float] = {}

    @property
    def total(self) -> float:
        if not self.imax:
            return self.common
        return self.common + sum(self.imax.values())

    def add(self, key: _GroupKey, value: float) -> None:
        if key is None:
            self.common += value
            self.ncommon += 1
            return
        interface, cluster = key
        group = self.groups.setdefault(interface, {})
        slot = group.get(cluster)
        if slot is None:
            group[cluster] = [value, 1]
            new_load = value
        else:
            slot[0] += value
            slot[1] += 1
            new_load = slot[0]
        current_max = self.imax.get(interface)
        if current_max is None or new_load > current_max:
            self.imax[interface] = new_load

    def remove(self, key: _GroupKey, value: float) -> None:
        if key is None:
            self.ncommon -= 1
            if self.ncommon == 0:
                self.common = 0.0
            else:
                self.common -= value
            return
        interface, cluster = key
        group = self.groups[interface]
        slot = group[cluster]
        old_load = slot[0]
        if slot[1] == 1:
            del group[cluster]
        else:
            slot[0] = old_load - value
            slot[1] -= 1
        if old_load >= self.imax[interface]:
            # The removed-from cluster was (tied for) the interface
            # max: re-scan this interface's clusters on this processor.
            if group:
                self.imax[interface] = max(
                    slot[0] for slot in group.values()
                )
            else:
                del self.groups[interface]
                del self.imax[interface]


class SearchState:
    """Delta-cost evaluation state over one :class:`SynthesisProblem`.

    ``assign(unit, target)`` / ``unassign(unit)`` maintain every cost
    and feasibility aggregate incrementally; ``feasible``, ``leaf()``
    and ``lower_bound()`` are O(1) reads.  ``evaluation()`` assembles a
    full :class:`~repro.synth.cost.Evaluation` (reference semantics,
    including the truncated-utilizations shape on violation) from the
    maintained aggregates.
    """

    #: Partial-mapping infeasibility is monotone (loads only grow along
    #: a search path), so explorers may prune on it.
    can_prune_infeasible = True

    def __init__(
        self,
        problem: SynthesisProblem,
        variants_resident: bool = True,
        exact: bool = False,
    ) -> None:
        self.problem = problem
        self.variants_resident = variants_resident
        self.exact = exact
        arch = problem.architecture
        self._pcost = arch.processor_cost
        self._ucap = arch.processor_capacity + CAPACITY_EPS
        self._mcap = (
            arch.memory_capacity + CAPACITY_EPS
            if arch.memory_capacity > 0
            else None
        )
        self._index: Dict[str, int] = {
            unit: index for index, unit in enumerate(problem.units)
        }
        #: unit -> (sw_load, sw_memory, hw_cost, util_key, mem_key)
        self._info: Dict[str, tuple] = {}
        pending_hwonly = 0.0
        unassigned_swonly = 0
        for unit in problem.units:
            entry = problem.entry(unit)
            load = entry.software.utilization if entry.software else None
            memory = entry.software.memory if entry.software else None
            hw_cost = entry.hardware.cost if entry.hardware else None
            self._info[unit] = (
                load,
                memory,
                hw_cost,
                problem.exclusion_group(unit),
                None if variants_resident else problem.variant_group(unit),
            )
            if load is None and hw_cost is not None:
                pending_hwonly += hw_cost
            if hw_cost is None:
                unassigned_swonly += 1

        self.assignment: Dict[str, Target] = {}
        self._buckets: Dict[int, Dict[str, None]] = {}
        self._uload: Dict[int, _ExclusionLoad] = {}
        self._mload: Dict[int, _ExclusionLoad] = {}
        self._uexact: Dict[int, float] = {}
        self._mexact: Dict[int, float] = {}
        self._hw_units: Set[str] = set()
        self._hwcost = 0.0
        self._pending_hwonly = pending_hwonly
        self._unassigned_swonly = unassigned_swonly
        self._util_viol = 0
        self._mem_viol = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, unit: str, target: Target) -> None:
        """Add one unit→target decision; O(1) amortized."""
        if unit in self.assignment:
            raise SynthesisError(f"unit {unit!r} is already assigned")
        self._add(unit, target)
        self.assignment[unit] = target

    def unassign(self, unit: str) -> None:
        """Remove one unit's decision; O(1) amortized."""
        target = self.assignment.pop(unit, None)
        if target is None:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        self._remove(unit, target)

    def reassign(self, unit: str, target: Target) -> None:
        """Move one unit to a new target (one aggregate update, not two).

        Equivalent to ``unassign(unit); assign(unit, target)`` but in
        exact mode each touched processor is re-aggregated only once —
        the hot operation of simulated annealing moves.
        """
        old = self.assignment.get(unit)
        if old is None:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        if not self.exact:
            self._remove(unit, old)
            self._add(unit, target)
            self.assignment[unit] = target
            return
        load, memory, hw_cost, _ukey, _mkey = self._info[unit]
        touched = set()
        hw_changed = False
        if old.is_software:
            processor = old.processor
            bucket = self._buckets[processor]
            del bucket[unit]
            if not bucket:
                self._drop_processor(processor)
            else:
                touched.add(processor)
        else:
            self._hw_units.discard(unit)
            hw_changed = True
        if target.is_software:
            if load is None:
                raise SynthesisError(
                    f"unit {unit!r} mapped to software without a software "
                    f"option"
                )
            processor = target.processor
            bucket = self._buckets.get(processor)
            if bucket is None:
                bucket = self._buckets[processor] = {}
            bucket[unit] = None
            touched.add(processor)
        else:
            if hw_cost is None:
                raise SynthesisError(
                    f"unit {unit!r} mapped to hardware without a hardware "
                    f"option"
                )
            self._hw_units.add(unit)
            hw_changed = True
        for processor in touched:
            self._refresh(processor)
        if hw_changed:
            self._hwcost = self._sorted_hw_cost()
        self.assignment[unit] = target

    def _add(self, unit: str, target: Target) -> None:
        info = self._info.get(unit)
        if info is None:
            raise SynthesisError(
                f"problem {self.problem.name!r} has no unit {unit!r}"
            )
        load, memory, hw_cost, ukey, mkey = info
        if target.is_software:
            if load is None:
                raise SynthesisError(
                    f"unit {unit!r} mapped to software without a software "
                    f"option"
                )
            processor = target.processor
            bucket = self._buckets.get(processor)
            if bucket is None:
                bucket = self._buckets[processor] = {}
            bucket[unit] = None
            if self.exact:
                self._refresh(processor)
            else:
                uload = self._uload.get(processor)
                if uload is None:
                    uload = self._uload[processor] = _ExclusionLoad()
                    self._mload[processor] = _ExclusionLoad()
                util_before = uload.total
                mem_before = self._mload[processor].total
                uload.add(ukey, load)
                self._mload[processor].add(mkey, memory)
                self._update_violations(processor, util_before, mem_before)
        else:
            if hw_cost is None:
                raise SynthesisError(
                    f"unit {unit!r} mapped to hardware without a hardware "
                    f"option"
                )
            self._hw_units.add(unit)
            if self.exact:
                self._hwcost = self._sorted_hw_cost()
            else:
                self._hwcost += hw_cost
        if load is None and hw_cost is not None:
            self._pending_hwonly -= hw_cost
        if hw_cost is None:
            self._unassigned_swonly -= 1

    def _remove(self, unit: str, target: Target) -> None:
        load, memory, hw_cost, ukey, mkey = self._info[unit]
        if target.is_software:
            processor = target.processor
            bucket = self._buckets[processor]
            del bucket[unit]
            if not bucket:
                self._drop_processor(processor)
            elif self.exact:
                self._refresh(processor)
            else:
                uload = self._uload[processor]
                util_before = uload.total
                mem_before = self._mload[processor].total
                uload.remove(ukey, load)
                self._mload[processor].remove(mkey, memory)
                self._update_violations(processor, util_before, mem_before)
        else:
            self._hw_units.discard(unit)
            if self.exact:
                self._hwcost = self._sorted_hw_cost()
            else:
                self._hwcost -= hw_cost
                if not self._hw_units:
                    self._hwcost = 0.0
        if load is None and hw_cost is not None:
            self._pending_hwonly += hw_cost
        if hw_cost is None:
            self._unassigned_swonly += 1

    def _drop_processor(self, processor: int) -> None:
        """Forget an emptied processor's aggregates.

        Dropping (instead of decrementing to ~0) resets any float
        residue exactly to zero, and keeps violation counters honest.
        """
        del self._buckets[processor]
        if self.exact:
            self._uexact.pop(processor, None)
            self._mexact.pop(processor, None)
            return
        uload = self._uload.pop(processor)
        mload = self._mload.pop(processor)
        self._util_viol -= uload.total > self._ucap
        if self._mcap is not None:
            self._mem_viol -= mload.total > self._mcap

    def _refresh(self, processor: int) -> None:
        """Exact mode: re-aggregate one processor in canonical order.

        Memory is aggregated only under an active memory constraint;
        :meth:`memory` computes it on demand otherwise.
        """
        bucket = self._buckets.get(processor)
        if not bucket:
            self._uexact.pop(processor, None)
            self._mexact.pop(processor, None)
            return
        ordered = sorted(bucket, key=self._index.__getitem__)
        self._uexact[processor] = utilization_of_units(self.problem, ordered)
        if self._mcap is not None:
            self._mexact[processor] = memory_of_units(
                self.problem, ordered, self.variants_resident
            )

    def _sorted_hw_cost(self) -> float:
        """Hardware cost summed in sorted-unit order (oracle parity)."""
        info = self._info
        return sum(info[unit][2] for unit in sorted(self._hw_units))

    def _update_violations(
        self, processor: int, util_before: float, mem_before: float
    ) -> None:
        self._util_viol += (
            self._uload[processor].total > self._ucap
        ) - (util_before > self._ucap)
        if self._mcap is not None:
            self._mem_viol += (
                self._mload[processor].total > self._mcap
            ) - (mem_before > self._mcap)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def utilization(self, processor: int) -> float:
        """Current software utilization of one processor."""
        if self.exact:
            return self._uexact.get(processor, 0.0)
        uload = self._uload.get(processor)
        return uload.total if uload is not None else 0.0

    def memory(self, processor: int) -> float:
        """Current memory footprint of one processor."""
        if self.exact:
            cached = self._mexact.get(processor)
            if cached is not None:
                return cached
            bucket = self._buckets.get(processor)
            if not bucket:
                return 0.0
            ordered = sorted(bucket, key=self._index.__getitem__)
            return memory_of_units(
                self.problem, ordered, self.variants_resident
            )
        mload = self._mload.get(processor)
        return mload.total if mload is not None else 0.0

    @property
    def hardware_cost(self) -> float:
        """Total hardware cost of the HW-assigned units."""
        return self._hwcost

    @property
    def software_cost(self) -> float:
        """Processor-allocation cost of the current partial mapping."""
        return len(self._buckets) * self._pcost

    @property
    def processor_count(self) -> int:
        """Number of processors currently hosting software."""
        return len(self._buckets)

    def processors_used(self) -> Tuple[int, ...]:
        """Sorted processor indices currently hosting software."""
        return tuple(sorted(self._buckets))

    def used_processors(self) -> List[int]:
        """Sorted processor indices — O(allocated), not O(assigned)."""
        return sorted(self._buckets)

    @property
    def feasible(self) -> bool:
        """Whether the current (partial) mapping violates no resource.

        Loads are monotone along a search path, so ``False`` here means
        no completion of the current partial mapping is feasible.
        """
        if len(self._buckets) > self.problem.architecture.max_processors:
            return False
        if self.exact:
            if any(load > self._ucap for load in self._uexact.values()):
                return False
            if self._mcap is not None and any(
                load > self._mcap for load in self._mexact.values()
            ):
                return False
            return True
        return self._util_viol == 0 and self._mem_viol == 0

    @property
    def complete(self) -> bool:
        """Whether every unit of the problem is assigned."""
        return len(self.assignment) == len(self.problem.units)

    def leaf(self) -> Tuple[bool, float]:
        """O(1) (feasible, total_cost) of the current complete mapping."""
        ok = self.feasible
        if not ok:
            return False, float("inf")
        return True, len(self._buckets) * self._pcost + self._hwcost

    def lower_bound(self) -> float:
        """O(1) admissible lower bound on any completion's total cost.

        Tightens :func:`repro.synth.cost.lower_bound` by paying every
        *already allocated* processor (assigned units keep their
        targets in all completions of this subtree), which never
        overestimates, so branch-and-bound stays provably optimal.
        """
        processors = len(self._buckets)
        if processors == 0 and self._unassigned_swonly:
            processors = 1
        return (
            self._hwcost + self._pending_hwonly + processors * self._pcost
        )

    def to_mapping(self) -> Mapping:
        """Snapshot the current assignment as an immutable Mapping."""
        return Mapping(dict(self.assignment))

    def evaluation(self) -> Evaluation:
        """Full :class:`Evaluation` of the current complete mapping.

        Mirrors the reference oracle's semantics — including the
        truncated utilization tuple and violation message of the first
        offending processor — but reads every aggregate from the
        incrementally maintained state.
        """
        if not self.complete:
            missing = [
                u for u in self.problem.units if u not in self.assignment
            ]
            raise SynthesisError(f"mapping does not cover units {missing}")
        arch = self.problem.architecture
        processors = sorted(self._buckets)
        if len(processors) > arch.max_processors:
            return self._infeasible(
                f"{len(processors)} processors used, template allows "
                f"{arch.max_processors}"
            )
        utilizations: List[float] = []
        for processor in processors:
            load = self.utilization(processor)
            utilizations.append(load)
            if load > arch.processor_capacity + CAPACITY_EPS:
                return self._infeasible(
                    f"processor {processor} utilization {load:.3f} exceeds "
                    f"capacity {arch.processor_capacity:.3f}",
                    partial_hw=self._hwcost,
                    utilizations=tuple(utilizations),
                )
            if arch.memory_capacity > 0:
                footprint = self.memory(processor)
                if footprint > arch.memory_capacity + CAPACITY_EPS:
                    return self._infeasible(
                        f"processor {processor} memory {footprint:.3f} "
                        f"exceeds capacity {arch.memory_capacity:.3f}",
                        partial_hw=self._hwcost,
                        utilizations=tuple(utilizations),
                    )
        software_cost = len(processors) * arch.processor_cost
        return Evaluation(
            feasible=True,
            total_cost=software_cost + self._hwcost,
            software_cost=software_cost,
            hardware_cost=self._hwcost,
            processors_used=len(processors),
            utilizations=tuple(utilizations),
        )

    def _infeasible(
        self,
        reason: str,
        partial_hw: float = 0.0,
        utilizations: Tuple[float, ...] = (),
    ) -> Evaluation:
        return Evaluation(
            feasible=False,
            total_cost=float("inf"),
            software_cost=0.0,
            hardware_cost=partial_hw,
            processors_used=len(self._buckets),
            utilizations=utilizations,
            violation=reason,
        )


#: Public alias — the delta-cost search state *is* the incremental
#: evaluator of the subsystem.
IncrementalEvaluator = SearchState


class ReferenceSearchState:
    """Full-recompute twin of :class:`SearchState` (the seed behavior).

    Same search interface, but every read runs the from-scratch
    reference oracle: ``leaf()``/``evaluation()`` rebuild a
    :class:`Mapping` and call :func:`~repro.synth.cost.evaluate`;
    ``lower_bound()`` re-walks all units.  Explorers accept it via
    ``incremental=False`` so benchmarks can *measure* the incremental
    speedup instead of asserting it.
    """

    can_prune_infeasible = False

    def __init__(
        self,
        problem: SynthesisProblem,
        variants_resident: bool = True,
        exact: bool = True,
    ) -> None:
        self.problem = problem
        self.variants_resident = variants_resident
        self.assignment: Dict[str, Target] = {}

    def assign(self, unit: str, target: Target) -> None:
        if unit in self.assignment:
            raise SynthesisError(f"unit {unit!r} is already assigned")
        self.assignment[unit] = target

    def unassign(self, unit: str) -> None:
        if unit not in self.assignment:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        del self.assignment[unit]

    def reassign(self, unit: str, target: Target) -> None:
        if unit not in self.assignment:
            raise SynthesisError(f"unit {unit!r} is not assigned")
        self.assignment[unit] = target

    @property
    def feasible(self) -> bool:
        """Unknown for partial mappings — never claim infeasibility."""
        return True

    def used_processors(self) -> List[int]:
        """Sorted processor indices (full scan — the seed behavior)."""
        return sorted(
            {
                target.processor
                for target in self.assignment.values()
                if target.is_software
            }
        )

    @property
    def complete(self) -> bool:
        return len(self.assignment) == len(self.problem.units)

    def leaf(self) -> Tuple[bool, float]:
        result = self.evaluation()
        return result.feasible, result.total_cost

    def lower_bound(self) -> float:
        return lower_bound(self.problem, self.assignment)

    def to_mapping(self) -> Mapping:
        return Mapping(dict(self.assignment))

    def evaluation(self) -> Evaluation:
        return evaluate(
            self.problem, self.to_mapping(), self.variants_resident
        )
