"""Design-space exploration.

Four interchangeable optimizers over :class:`SynthesisProblem`, all
built on the :class:`SearchExplorer` scaffold (candidate-target
generation, processor-symmetry breaking, node accounting, and the
delta-cost :class:`~repro.synth.state.SearchState`):

* :class:`ExhaustiveExplorer` — enumerates every mapping (with
  processor-symmetry breaking); ground truth for the others.
* :class:`BranchBoundExplorer` — depth-first search pruned by an
  admissible lower bound and by monotone partial-mapping
  infeasibility; provably optimal, far fewer nodes.  Accepts node/time
  budgets and a warm-start incumbent.
* :class:`AnnealingExplorer` — simulated annealing for spaces where
  enumeration is hopeless; returns the best feasible mapping found.
* :class:`PortfolioExplorer` — races annealing against budgeted
  branch-and-bound (annealing's best seeds the exact search as its
  incumbent) and returns the winner with provenance.

Every explorer accepts ``incremental=False`` to run on the
full-recompute :class:`~repro.synth.state.ReferenceSearchState` (the
seed behavior) instead — benchmarks use this to *measure* the speedup
of the incremental evaluator rather than asserting it.  The reported
best mapping is always re-evaluated by the from-scratch reference
oracle, whatever path found it.

The synthesis *flows* (paper reproduction) are optimizer-agnostic —
bench X3 demonstrates the explorers find the same optimum on the
Table 1 space.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping, Optional, Tuple, Union

from .. import faults
from ..errors import SynthesisError
from .backend import HAS_NUMPY
from .cost import Evaluation, evaluate
from .mapping import Mapping, SynthesisProblem, Target
from .ordering import (
    STRONG_BRANCH_DEPTH,
    probe_targets,
    strong_branch,
    unit_order,
    validate_frontier,
    validate_ordering,
)
from .state import (
    EvictionLog,
    PathTrail,
    ReferenceSearchState,
    SearchState,
)

_SearchStateT = Union[SearchState, ReferenceSearchState]


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    problem: SynthesisProblem
    mapping: Optional[Mapping]
    evaluation: Optional[Evaluation]
    nodes_explored: int
    optimal: bool
    evaluations: int = 0
    provenance: str = ""
    #: The cost this run *proved* no complete mapping can beat:
    #: ``-inf`` for heuristic/truncated runs (no proof), the optimal
    #: cost for complete exact runs, and — under shared-incumbent
    #: pruning — the lowest pruning threshold used, so a fleet of
    #: searches can combine proofs (a member that got pruned by a
    #: foreign incumbent still certifies everything below that floor).
    proof_floor: float = float("-inf")
    #: Worker-crash/evaluator-fault retries this result absorbed on
    #: its way through a process pool (0 for in-process runs).  Honest
    #: operational metadata: deliberately *outside* the canonical
    #: result payload, which stays byte-identical whether or not a
    #: crash was recovered along the way.
    retries: int = 0
    #: Peak retained open-frontier size of the run (0 for frontiers
    #: that keep their open set on the call stack, i.e. plain DFS).
    #: Operational metadata like :attr:`retries` — outside the
    #: canonical payload; the serve layer exports the daemon-wide
    #: maximum as a ``/stats`` gauge.
    open_high_water: int = 0
    #: Open subtrees dropped by ``max_open`` frontier eviction.  Any
    #: nonzero count that compromised the proof is already reflected
    #: in ``optimal``/``proof_floor``/provenance; the raw count is
    #: operational metadata outside the canonical payload.
    evicted_subtrees: int = 0

    @property
    def feasible(self) -> bool:
        """True if a feasible mapping was found."""
        return self.evaluation is not None and self.evaluation.feasible

    @property
    def cost(self) -> float:
        """Total cost of the best mapping (inf if none)."""
        if not self.feasible:
            return float("inf")
        return self.evaluation.total_cost

    def require_feasible(self) -> "ExplorationResult":
        """Raise :class:`SynthesisError` when nothing feasible was found."""
        if not self.feasible:
            raise SynthesisError(
                f"no feasible implementation for problem "
                f"{self.problem.name!r}"
            )
        return self


class _BudgetExceeded(Exception):
    """Internal: node/time budget ran out mid-search."""


#: Interned targets — immutable value objects, so search nodes reuse
#: them instead of constructing dataclass instances per candidate.
_HW_TARGET = Target.hw()
_SW_TARGETS: List[Target] = []


def _sw_target(processor: int) -> Target:
    while len(_SW_TARGETS) <= processor:
        _SW_TARGETS.append(Target.sw(len(_SW_TARGETS)))
    return _SW_TARGETS[processor]


def _targets_from_used(
    problem: SynthesisProblem, unit: str, used: List[int]
) -> List[Target]:
    """Symmetry-broken targets given the sorted used-processor list.

    Identical processors make ``sw:0 / sw:1`` swaps equivalent; only
    the first unused processor index is offered in addition to the
    already-populated ones.
    """
    cap = problem.architecture.max_processors
    allowed_cpus = [cpu for cpu in used if cpu < cap]
    fresh = (used[-1] + 1) if used else 0
    if fresh < cap and fresh not in allowed_cpus:
        allowed_cpus.append(fresh)
    entry = problem.entry(unit)
    result: List[Target] = []
    if entry.software is not None:
        result.extend(_sw_target(cpu) for cpu in allowed_cpus)
    if entry.hardware is not None:
        result.append(_HW_TARGET)
    if not result:
        raise SynthesisError(f"unit {unit!r} has no admissible target")
    return result


def _candidate_targets(
    problem: SynthesisProblem,
    unit: str,
    partial: TMapping[str, Target],
) -> Tuple[Target, ...]:
    """Admissible targets with processor-symmetry breaking."""
    used = sorted(
        {
            target.processor
            for target in partial.values()
            if target.is_software
        }
    )
    return tuple(_targets_from_used(problem, unit, used))


class Explorer:
    """Common interface of the optimizers."""

    def explore(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        """Search the mapping space of ``problem``.

        ``warm_start`` is an optional (possibly partial, possibly
        stale) mapping from a related problem — e.g. the neighboring
        selection of a variant space — used to seed the search.
        Explorers that cannot exploit it ignore it.
        """
        raise NotImplementedError


class SearchExplorer(Explorer):
    """Shared search scaffold.

    Owns candidate-target generation (with processor-symmetry
    breaking), search-state construction (incremental or reference),
    warm-start adaptation, node/evaluation accounting, and final
    re-evaluation of the best mapping by the reference oracle.
    """

    def __init__(
        self,
        incremental: bool = True,
        capacity_bound: bool = True,
        dynamic_pool: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self.incremental = incremental
        self.capacity_bound = capacity_bound
        self.dynamic_pool = dynamic_pool
        #: Evaluation backend of the search state.  Depth-first tree
        #: search is mutation-bound — one assign/unassign pair per
        #: node against at most one batch score per expansion — and
        #: the vectorized state pays NumPy scalar-indexing cost on
        #: every mutation, so ``None``/"auto" resolves to the scalar
        #: backend here (the measured end-to-end winner at bench
        #: scale).  Probe-heavy subclass configurations override the
        #: auto resolution before calling up (see
        #: :class:`BranchBoundExplorer`); an explicit ``backend=`` is
        #: always honored as given — both backends are byte-identical,
        #: so the choice is purely a performance one.  Direct
        #: :class:`SearchState` construction keeps auto = NumPy, where
        #: bulk ``score_candidates`` calls dominate.
        self.backend = (
            "python" if backend in (None, "auto") else backend
        )
        #: The backend argument exactly as given.  Composite explorers
        #: hand this (not the resolved :attr:`backend`) to members
        #: whose shape differs from their own, so each member resolves
        #: ``auto`` for its own configuration.
        self.backend_request = backend
        #: Optional *absolute* :func:`time.monotonic` deadline.  Not a
        #: constructor argument: callers that enforce a wall-clock
        #: deadline across many explorations (the serve engine's
        #: per-job budget threading into ``run_lineage``) set it on a
        #: per-lineage copy.  Deliberately outside every canonical
        #: job key — it is operational, like ``retries``.  Budgeted
        #: searches fold it into their :class:`_BudgetClock`;
        #: exhaustive and annealing runs poll it every 256 nodes /
        #: iterations and report a deadline-truncated, non-optimal
        #: result when it fires.
        self.deadline: Optional[float] = None

    # -- state ----------------------------------------------------------
    def _new_state(
        self,
        problem: SynthesisProblem,
        capacity_bound: Optional[bool] = None,
    ) -> _SearchStateT:
        if self.incremental:
            state = SearchState(
                problem,
                capacity_bound=(
                    self.capacity_bound
                    if capacity_bound is None
                    else capacity_bound
                ),
                dynamic_pool=self.dynamic_pool,
                backend=self.backend,
            )
        else:
            state = ReferenceSearchState(problem)
        for unit, target in problem.fixed.items():
            state.assign(unit, target)
        return state

    # -- candidates -----------------------------------------------------
    @staticmethod
    def candidate_targets(
        problem: SynthesisProblem,
        unit: str,
        partial: TMapping[str, Target],
    ) -> Tuple[Target, ...]:
        """Admissible targets of ``unit`` given the partial mapping."""
        return _candidate_targets(problem, unit, partial)

    def state_targets(
        self,
        problem: SynthesisProblem,
        unit: str,
        state: _SearchStateT,
    ) -> List[Target]:
        """Admissible targets read from the search state.

        Same symmetry-broken candidate list (and order) as
        :meth:`candidate_targets`, but the used-processor set comes
        from the state's bucket index — O(allocated processors)
        instead of a scan over every assigned unit.
        """
        return _targets_from_used(problem, unit, state.used_processors())

    # -- warm starts ----------------------------------------------------
    def _warm_assignment(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping],
    ) -> Optional[Dict[str, Target]]:
        """Adapt a warm-start mapping to this problem's unit set.

        Keeps every admissible target the warm mapping has for a
        problem unit, completes missing units (hardware first — it
        never violates capacity — else processor 0), and lets
        ``problem.fixed`` override.  Returns None when no warm start
        was given.
        """
        if warm_start is None:
            return None
        source = warm_start.restricted_to(problem.units).assignment
        assignment: Dict[str, Target] = {}
        for unit in problem.units:
            entry = problem.entry(unit)
            target = source.get(unit)
            if target is not None:
                if target.is_software and entry.software is not None:
                    assignment[unit] = target
                    continue
                if target.is_hardware and entry.hardware is not None:
                    assignment[unit] = target
                    continue
            if entry.hardware is not None:
                assignment[unit] = Target.hw()
            else:
                assignment[unit] = Target.sw(0)
        assignment.update(problem.fixed)
        return assignment

    def _warm_incumbent(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping],
    ) -> Tuple[Optional[Mapping], float]:
        """Reference-evaluated feasible incumbent from a warm start."""
        assignment = self._warm_assignment(problem, warm_start)
        if assignment is None:
            return None, float("inf")
        mapping = Mapping(assignment)
        result = evaluate(problem, mapping)
        if result.feasible:
            return mapping, result.total_cost
        return None, float("inf")

    # -- result assembly ------------------------------------------------
    def _finish(
        self,
        problem: SynthesisProblem,
        mapping: Optional[Mapping],
        nodes: int,
        evaluations: int,
        optimal: bool,
        provenance: str,
        proof_floor: float = float("-inf"),
        open_high_water: int = 0,
        evicted_subtrees: int = 0,
    ) -> ExplorationResult:
        """Re-evaluate the best mapping with the reference oracle."""
        evaluation = (
            evaluate(problem, mapping) if mapping is not None else None
        )
        return ExplorationResult(
            problem=problem,
            mapping=mapping,
            evaluation=evaluation,
            nodes_explored=nodes,
            optimal=optimal,
            evaluations=evaluations,
            provenance=provenance,
            proof_floor=proof_floor,
            open_high_water=open_high_water,
            evicted_subtrees=evicted_subtrees,
        )


class ExhaustiveExplorer(SearchExplorer):
    """Complete enumeration; optimal by construction.

    Ground truth for the other explorers, so it never prunes — every
    symmetry-distinct mapping is visited (``warm_start`` is ignored).
    An externally set :attr:`deadline` is the one thing that can stop
    it early; a truncated run honestly reports ``optimal=False`` with
    a ``(deadline-truncated)`` provenance and no proof floor.
    """

    def explore(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        free = problem.free_units
        # Enumeration never reads the lower bound — skip its upkeep.
        state = self._new_state(problem, capacity_bound=False)
        best: Optional[Mapping] = None
        best_cost = float("inf")
        evaluations = 0
        state_targets = self.state_targets
        clock = _BudgetClock(None, None, None, deadline=self.deadline)

        def recurse(index: int) -> None:
            nonlocal best, best_cost, evaluations
            clock.tick()
            if index == len(free):
                evaluations += 1
                feasible, cost = state.leaf()
                if feasible and cost < best_cost:
                    best, best_cost = state.to_mapping(), cost
                return
            unit = free[index]
            for target in state_targets(problem, unit, state):
                state.assign(unit, target)
                recurse(index + 1)
                state.unassign(unit)

        truncated = False
        try:
            recurse(0)
        except _BudgetExceeded:
            truncated = True
        return self._finish(
            problem,
            best,
            clock.nodes,
            evaluations,
            optimal=not truncated,
            provenance=(
                "exhaustive (deadline-truncated)"
                if truncated
                else "exhaustive"
            ),
            proof_floor=float("-inf") if truncated else best_cost,
        )


#: Refresh the fleet-wide shared incumbent every this-many nodes: the
#: read takes a cross-process lock, and a stale value is merely a
#: conservative (still valid) pruning threshold.
_SHARED_REFRESH_MASK = 63


class _BudgetClock:
    """Node accounting + budget/shared-incumbent upkeep.

    One implementation shared by every search frontier, so truncation
    semantics can never drift between them: ``tick()`` counts the
    entered node, raises :class:`_BudgetExceeded` on the first
    over-budget node (the boundary itself is inclusive), polls the
    deadline every 256 nodes, and refreshes the fleet-wide shared
    floor every :data:`_SHARED_REFRESH_MASK` + 1 nodes.
    ``shared_floor`` only ever decreases, so the last refresh is the
    tightest foreign threshold any pruning step used.

    ``deadline`` is an *absolute* :func:`time.monotonic` instant (the
    serve layer's in-lineage job deadline); it composes with the
    relative ``time_budget`` by taking whichever expires first, and
    shares the 256-node poll granularity.

    The clock also carries the run's resource-governance gauges:
    ``open_high_water`` (peak retained open-frontier size) and the
    :class:`~repro.synth.state.EvictionLog` of ``max_open`` frontier
    evictions, whose floor is what keeps ``proof_floor`` honest when
    memory pressure drops open subtrees.
    """

    __slots__ = (
        "nodes",
        "shared_floor",
        "open_high_water",
        "evictions",
        "_budget",
        "_deadline",
        "_shared",
    )

    def __init__(
        self, node_budget, time_budget, shared, deadline=None
    ) -> None:
        self.nodes = 0
        self._budget = node_budget
        relative = (
            time.monotonic() + time_budget
            if time_budget is not None
            else None
        )
        if relative is None:
            self._deadline = deadline
        elif deadline is None:
            self._deadline = relative
        else:
            self._deadline = min(relative, deadline)
        self._shared = shared
        self.shared_floor = (
            shared.get() if shared is not None else float("inf")
        )
        self.open_high_water = 0
        self.evictions = EvictionLog()

    def tick(self) -> None:
        self.nodes += 1
        if self._budget is not None and self.nodes > self._budget:
            raise _BudgetExceeded
        if (
            self._deadline is not None
            and (self.nodes & 255) == 0
            and time.monotonic() > self._deadline
        ):
            raise _BudgetExceeded
        if (
            self._shared is not None
            and (self.nodes & _SHARED_REFRESH_MASK) == 0
        ):
            self.shared_floor = self._shared.get()

    def note_open(self, count: int) -> None:
        """Track the peak retained open-frontier size."""
        if count > self.open_high_water:
            self.open_high_water = count


def _cap_frontier(entries, clock, max_open) -> None:
    """Deterministic worst-bound eviction of a sorted-tuple frontier.

    ``entries`` is a list of ``(bound, tie, ...)`` tuples (a heap or a
    beam buffer; ties are unique push counters, so sorting never
    compares payloads).  When the list exceeds the cap, it is sorted
    and the worst-bound tail evicted — a sorted list is a valid heap,
    so heap callers keep popping untouched.  Evicted bounds land in
    the clock's :class:`EvictionLog`, which is what keeps the run's
    ``proof_floor`` honest.

    The fault harness's ``search`` scope hooks in here: an ``evict``
    op forces the cap down at a chosen node, and an ``oom`` op
    simulates an allocation failure — answered by shedding the worst
    half of the frontier and carrying on, which *is* the production
    graceful-degradation path under real memory pressure.
    """
    cap = max_open
    try:
        forced = faults.on_search_frontier(clock.nodes)
    except MemoryError:
        forced = max(1, len(entries) // 2)
    if forced is not None:
        cap = forced if cap is None else min(cap, forced)
    if cap is not None and len(entries) > cap:
        entries.sort()
        clock.evictions.record(entry[0] for entry in entries[cap:])
        del entries[cap:]


def _cap_children(scored, clock, max_open, open_count):
    """LDS group-creation eviction: bound the total open children.

    Keeps at most ``max(1, max_open - open_count)`` of a new sibling
    group's (ascending-bound-sorted) children — always at least the
    cheapest child, so the dive can never starve — and records the
    evicted tail's bounds.  Evicted children are excluded for good:
    they never set ``limited`` and never force a wider LDS pass, so a
    capped run terminates exactly like an uncapped one, just with a
    possibly-degraded proof.
    """
    if max_open is None:
        return scored
    allowed = max_open - open_count
    if allowed < 1:
        allowed = 1
    if len(scored) <= allowed:
        return scored
    clock.evictions.record(entry[0] for entry in scored[allowed:])
    return scored[:allowed]


class BranchBoundExplorer(SearchExplorer):
    """Depth-first search with admissible lower-bound pruning.

    The incremental path additionally prunes on partial-mapping
    infeasibility (loads are monotone along a search path, so a
    violated partial has no feasible completion) — the optimum is
    unchanged, the tree is much smaller.

    ``node_budget`` / ``time_budget`` (seconds) truncate the search;
    a truncated run reports ``optimal=False`` and the best incumbent
    found so far.  ``warm_start`` seeds the incumbent, tightening
    pruning from the first node.  ``capacity_bound=False`` falls back
    to the capacity-blind basic bound (the pre-knapsack behavior) —
    benchmarks use it to measure the bound-tightness win.

    ``ordering`` picks the branching order (:mod:`repro.synth.ordering`):

    * ``"static"`` — fixed descending-hardware-cost unit order, targets
      in generation order (the historical behavior);
    * ``"density"`` — forced units first, flexible units by descending
      knapsack density; targets still in generation order;
    * ``"adaptive"`` (default) — density unit order with shallow-depth
      strong-branching re-sorts, plus value ordering while hunting the
      first incumbent: each unit's candidate targets are probed
      through the incremental bound and descended
      cheapest-bound-first, so the first dive lands a near-optimal
      leaf; children whose probed bound already meets the incumbent
      are skipped without becoming nodes.  Once an incumbent exists
      (found or warm-started) the deep probes stop — entry-check
      pruning against it is strictly cheaper.

    ``dynamic_pool=False`` freezes the capacity bound's per-interface
    cluster election to the static choice (the PR 3 pools).

    ``frontier`` picks the search *frontier* — which open node is
    expanded next — independently of ``ordering`` (which ranks a
    node's children):

    * ``"dfs"`` (default) — the depth-first walk; byte-identical to
      the pre-frontier behavior in results, node counts and
      provenance;
    * ``"best-first"`` — a priority queue keyed on each open node's
      incremental lower bound (push-order tie-break, so the expansion
      order is deterministic).  Nodes are snapshotted as decision
      paths and restored by :class:`~repro.synth.state.PathTrail`
      delta replay; the search stops — with a complete optimality
      proof — as soon as the cheapest open bound meets the incumbent,
      so it expands only nodes whose bound beats the optimum;
    * ``"lds"`` — limited discrepancy search: iteratively widened
      passes that follow the probed cheapest-bound child ordering
      (plus, under ``ordering="adaptive"``, the same shallow-depth
      strong-branching unit re-sorts the other frontiers use) and
      spend one discrepancy per rank a decision deviates from it.
      Bound-pruned children never consume the allowance; a pass the
      allowance never truncates is a complete bound-pruned search, so
      the run ends provably optimal;
    * ``"beam"`` — level-synchronous search: the whole open level is
      expanded cheapest-bound-first and its children become the next
      level.  Without ``max_open`` it is a complete bound-pruned
      breadth-first search (full optimality proof); with ``max_open``
      it is the classical width-limited beam whose eviction honesty
      is described below;
    * ``"hybrid"`` — a greedy depth-first dive (always following the
      cheapest probed child) seeds the incumbent, then a best-first
      pass — typically capped by ``max_open`` — finishes the proof.
      The dive costs at most one node per depth and lands near the
      optimum, so the following best-first frontier stays small: the
      bounded-memory way to both a good answer *and* a proof.

    ``max_open`` bounds the retained open frontier of the memory-bound
    frontiers (best-first, LDS, beam, hybrid; plain DFS keeps its
    frontier on the call stack and ignores the cap).  When the open
    set would exceed it, the worst-bound nodes are evicted
    *deterministically* and their bounds recorded: the run degrades
    gracefully instead of aborting, ``proof_floor`` drops to the
    minimum evicted bound (everything below it is still certified),
    and ``optimal`` survives exactly when the final cost meets that
    floor — otherwise the provenance says ``(memory-truncated)``
    rather than silently losing optimality.  Peak retained frontier
    size and eviction counts ride the result as
    ``open_high_water``/``evicted_subtrees``.

    Node/time budgets, warm starts, incumbent sharing, ``optimal``
    and ``proof_floor`` semantics are uniform across frontiers; a
    non-default frontier is recorded in the provenance tag (e.g.
    ``branch_and_bound[adaptive,best-first]``).

    ``shared_incumbent`` accepts an object with ``get()``/``offer(cost)``
    (e.g. :class:`repro.synth.parallel.SharedIncumbent`): the search
    prunes against the *fleet-wide* best cost published by concurrent
    searches and publishes its own improvements.  Every pruning
    threshold it ever uses is a then-current upper bound, so the search
    still proves there is no completion cheaper than
    ``min(own best, lowest foreign cost seen)``; ``optimal`` is only
    claimed when the returned cost itself meets that proof.
    """

    #: Duck-typing marker for the parallel dispatcher: worker-side
    #: copies of this explorer may be handed a shared incumbent.
    accepts_shared_incumbent = True

    def __init__(
        self,
        incremental: bool = True,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        capacity_bound: bool = True,
        ordering: str = "adaptive",
        dynamic_pool: bool = True,
        frontier: str = "dfs",
        shared_incumbent=None,
        backend: Optional[str] = None,
        max_open: Optional[int] = None,
    ) -> None:
        # Frontier-aware auto resolution: best-first and LDS probe the
        # whole sibling batch at every expansion (that is their
        # mechanism, not an ordering option), which is exactly the
        # shape the vectorized kernel wins — measured ~1.8-2.9x lower
        # probe cost per node and up to ~1.9x end-to-end on the wide
        # bench workload.  The DFS frontier stays scalar under auto:
        # it is mutation-bound and the scalar kernel wins there.
        if backend in (None, "auto") and HAS_NUMPY:
            if validate_frontier(frontier) != "dfs":
                backend = "numpy"
        super().__init__(
            incremental=incremental,
            capacity_bound=capacity_bound,
            dynamic_pool=dynamic_pool,
            backend=backend,
        )
        if node_budget is not None and node_budget < 1:
            raise SynthesisError("node_budget must be >= 1")
        if time_budget is not None and time_budget <= 0:
            raise SynthesisError("time_budget must be positive")
        if max_open is not None and max_open < 1:
            raise SynthesisError("max_open must be >= 1")
        self.node_budget = node_budget
        self.time_budget = time_budget
        self.ordering = validate_ordering(ordering)
        self.frontier = validate_frontier(frontier)
        self.shared_incumbent = shared_incumbent
        self.max_open = max_open

    def explore(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
        checkpoint=None,
    ) -> ExplorationResult:
        """Search the mapping space of ``problem``.

        ``checkpoint`` is an optional
        :class:`~repro.synth.checkpoint.Checkpointer`: the search then
        runs on the checkpointable stack drivers — byte-identical
        results and node counts — emitting resumable snapshots
        periodically and on budget exhaustion, and resuming from
        ``checkpoint.resume`` when set (see ``synth/checkpoint.py``).
        """
        if checkpoint is not None:
            from .checkpoint import drive

            return drive(self, problem, warm_start, checkpoint)
        if self.frontier == "best-first":
            return self._explore_heap(problem, warm_start, dive=False)
        if self.frontier == "hybrid":
            return self._explore_heap(problem, warm_start, dive=True)
        if self.frontier == "lds":
            return self._explore_lds(problem, warm_start)
        if self.frontier == "beam":
            return self._explore_beam(problem, warm_start)
        return self._explore_dfs(problem, warm_start)

    def _begin_search(self, problem, warm_start):
        """Shared search prologue of every frontier.

        Builds the unit order and search state, reference-evaluates
        the warm-start incumbent (publishing it to the fleet when
        sharing), and arms the budget clock.
        """
        free = unit_order(problem, problem.free_units, self.ordering)
        state = self._new_state(problem)
        best, best_cost = self._warm_incumbent(problem, warm_start)
        shared = self.shared_incumbent
        if shared is not None and best is not None:
            shared.offer(best_cost)
        clock = _BudgetClock(
            self.node_budget,
            self.time_budget,
            shared,
            deadline=self.deadline,
        )
        return free, state, best, best_cost, clock, shared

    def _finish_search(
        self,
        problem,
        best,
        best_cost,
        clock,
        evaluations,
        shared,
        warm_started,
        truncated,
    ) -> ExplorationResult:
        """Shared search epilogue: proof bookkeeping + provenance.

        Foreign thresholds can cut subtrees our own incumbent would
        have kept, and ``max_open`` eviction can drop open subtrees
        whose bounds were still below the returned cost; the
        per-problem optimality claim survives only when that cost
        meets every threshold used *and* every evicted bound.  An
        eviction whose bound the final cost does meet loses nothing —
        graceful degradation, not a silent lie.
        """
        evicted_floor = clock.evictions.floor
        proved = (
            not truncated
            and best_cost <= clock.shared_floor
            and best_cost <= evicted_floor
        )
        memory_truncated = not truncated and evicted_floor < best_cost
        return self._finish(
            problem,
            best,
            clock.nodes,
            evaluations,
            optimal=proved,
            provenance=self._provenance(
                warm_started, shared, truncated, proved, memory_truncated
            ),
            proof_floor=(
                float("-inf")
                if truncated
                else min(best_cost, clock.shared_floor, evicted_floor)
            ),
            open_high_water=clock.open_high_water,
            evicted_subtrees=clock.evictions.count,
        )

    def _provenance(
        self,
        warm_started: bool,
        shared,
        truncated: bool,
        proved: bool,
        memory_truncated: bool = False,
    ) -> str:
        """The uniform provenance string of every frontier.

        ``frontier="dfs"`` reproduces the pre-frontier strings byte
        for byte; non-default frontiers join the tag list (e.g.
        ``branch_and_bound[adaptive,lds]``).  ``(memory-truncated)``
        marks a run whose ``max_open`` evictions dropped a subtree the
        proof needed — the result may still be the optimum, but the
        run can no longer certify it.
        """
        tags = []
        if self.ordering != "static":
            tags.append(self.ordering)
        if self.frontier != "dfs":
            tags.append(self.frontier)
        provenance = "branch_and_bound"
        if tags:
            provenance += f"[{','.join(tags)}]"
        if warm_started:
            provenance += "+warm_start"
        if shared is not None:
            provenance += "+shared_incumbent"
            if not truncated and not proved and not memory_truncated:
                provenance += " (pruned by fleet incumbent)"
        if truncated:
            provenance += " (budget-truncated)"
        elif memory_truncated:
            provenance += " (memory-truncated)"
        return provenance

    def _explore_dfs(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        free, state, best, best_cost, clock, shared = (
            self._begin_search(problem, warm_start)
        )
        warm_started = best is not None
        evaluations = 0
        state_targets = self.state_targets
        prune_infeasible = state.can_prune_infeasible
        # Batch child expansion only pays when the backend scores the
        # whole sibling set in one vectorized pass.  A scalar backend's
        # batch probe is the same per-child loop *plus* an extra
        # assign/unassign pair per child (the explorer re-assigns the
        # child it just probed), so scalar states keep the original
        # compute-at-child-entry flow — same bounds, same node counts.
        batch_scoring = state.backend == "numpy"
        adaptive = self.ordering == "adaptive"
        total = len(free)

        def _leaf() -> None:
            nonlocal best, best_cost, evaluations
            evaluations += 1
            feasible, cost = state.leaf()
            if feasible and cost < best_cost:
                best, best_cost = state.to_mapping(), cost
                if shared is not None:
                    shared.offer(best_cost)

        def recurse(
            index: int,
            bound: Optional[float] = None,
            feasible: Optional[bool] = None,
        ) -> None:
            # ``bound``/``feasible`` are this exact state's reads,
            # precomputed by the parent's batch score — pure functions
            # of the state, so reusing them cannot change behavior,
            # only skip the per-child recomputation.
            clock.tick()
            shared_floor = clock.shared_floor
            limit = (
                best_cost if best_cost < shared_floor else shared_floor
            )
            if limit < float("inf"):
                if bound is None:
                    bound = state.lower_bound()
                if bound >= limit:
                    return
            if prune_infeasible:
                if feasible is None:
                    feasible = state.feasible
                if not feasible:
                    return
            if index == total:
                _leaf()
                return
            unit = free[index]
            targets = state_targets(problem, unit, state)
            if batch_scoring and limit < float("inf"):
                # One batch pass scores every child; each child still
                # becomes a node (no pre-pruning), it just skips its
                # own bound/feasibility recomputation.
                scored = state.score_candidates(unit, targets)
                for target, (child_bound, child_feasible) in zip(
                    targets, scored
                ):
                    state.assign(unit, target)
                    recurse(index + 1, child_bound, child_feasible)
                    state.unassign(unit)
            else:
                # Scalar backend, or no incumbent yet (bounds are
                # never compared): each child computes its own reads
                # at entry, exactly as before the batch kernel.
                for target in targets:
                    state.assign(unit, target)
                    recurse(index + 1)
                    state.unassign(unit)

        def recurse_adaptive(
            depth: int,
            checked: bool,
            bound: Optional[float] = None,
            feasible: Optional[bool] = None,
        ) -> None:
            # ``checked`` means the parent probed this exact state's
            # bound and feasibility and re-compared the probe against
            # the current incumbent just before descending, so the
            # entry checks would be redundant.
            clock.tick()
            if not checked:
                shared_floor = clock.shared_floor
                limit = (
                    best_cost
                    if best_cost < shared_floor
                    else shared_floor
                )
                if bound is None:
                    bound = state.lower_bound()
                if bound >= limit:
                    return
                if prune_infeasible:
                    if feasible is None:
                        feasible = state.feasible
                    if not feasible:
                        return
            if depth == total:
                _leaf()
                return
            assignment = state.assignment
            # Probing (strong branching + value ordering) serves the
            # incumbent hunt: it steers the first dive onto a
            # near-optimal leaf.  Once any incumbent exists (a found
            # leaf or a warm start) the probes stop paying — plain
            # density-order descent with entry-check pruning against
            # the incumbent is strictly cheaper per node; vectorized
            # backends additionally batch-score each expansion's
            # children so every child skips its own entry reads.
            if best is None and depth < STRONG_BRANCH_DEPTH:
                undecided = [u for u in free if u not in assignment]
                unit, scored = strong_branch(
                    state, problem, undecided, state_targets
                )
            elif best is None:
                unit = next(u for u in free if u not in assignment)
                scored = probe_targets(
                    state, unit, state_targets(problem, unit, state)
                )
            else:
                unit = next(u for u in free if u not in assignment)
                targets = state_targets(problem, unit, state)
                if batch_scoring:
                    for target, (child_bound, child_feasible) in zip(
                        targets, state.score_candidates(unit, targets)
                    ):
                        state.assign(unit, target)
                        recurse_adaptive(
                            depth + 1, False, child_bound, child_feasible
                        )
                        state.unassign(unit)
                else:
                    for target in targets:
                        state.assign(unit, target)
                        recurse_adaptive(depth + 1, False)
                        state.unassign(unit)
                return
            for bound, _index, target in scored:
                # Probed bounds are admissible for the child subtree
                # whenever they were computed, so comparing against the
                # *current* incumbent is sound — skipped children never
                # become nodes.
                if bound >= best_cost or bound >= clock.shared_floor:
                    continue
                state.assign(unit, target)
                recurse_adaptive(depth + 1, True)
                state.unassign(unit)

        truncated = False
        try:
            if adaptive:
                recurse_adaptive(0, False)
            else:
                recurse(0)
        except _BudgetExceeded:
            truncated = True
        return self._finish_search(
            problem,
            best,
            best_cost,
            clock,
            evaluations,
            shared,
            warm_started,
            truncated,
        )

    def _explore_heap(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
        dive: bool = False,
    ) -> ExplorationResult:
        """Priority-queue search over the incremental lower bound.

        Every open node rides the heap as ``(bound, tie, path)``: the
        bound probed when its parent pushed it, a monotone push
        counter (equal bounds pop in deterministic push order), and
        the decision path that :class:`PathTrail` replays to restore
        the node's search state.  Expanding the cheapest bound first
        means the moment the cheapest open bound meets the incumbent,
        *every* open node is prunable — the search returns with a
        complete optimality proof after expanding only nodes whose
        bound beats the optimum.

        ``dive=True`` is the ``hybrid`` frontier: a greedy depth-first
        dive runs first to seed the incumbent (best-first finds its
        first leaf late, so a capped heap otherwise evicts half the
        tree before it has any prune threshold), then the heap pass
        finishes the proof.  With ``max_open`` set, the heap is
        truncated to the cheapest ``max_open`` entries after every
        expansion — streaming top-K eviction is exact, an evicted
        entry could never have re-entered a smaller frontier.
        """
        free, state, best, best_cost, clock, shared = (
            self._begin_search(problem, warm_start)
        )
        warm_started = best is not None
        evaluations = 0
        state_targets = self.state_targets
        prune_infeasible = state.can_prune_infeasible
        adaptive = self.ordering == "adaptive"
        total = len(free)
        trail = PathTrail(state)
        pushes = 0
        truncated = False

        try:
            if dive and best is None:
                best, best_cost, evaluations = self._greedy_dive(
                    problem,
                    free,
                    state,
                    trail,
                    clock,
                    shared,
                    best,
                    best_cost,
                    evaluations,
                )
                trail.restore(())
            root_bound = (
                float("inf")
                if prune_infeasible and not state.feasible
                else state.lower_bound()
            )
            heap: List[tuple] = [(root_bound, pushes, ())]
            while heap:
                bound, _tie, path = heapq.heappop(heap)
                shared_floor = clock.shared_floor
                limit = (
                    best_cost if best_cost < shared_floor else shared_floor
                )
                if bound >= limit:
                    # The heap is bound-ordered: every other open node
                    # is at least as expensive, so nothing left can
                    # beat the incumbent — the proof is complete.  The
                    # popped node is never restored or expanded, so it
                    # does not count as a search node.
                    break
                clock.tick()
                trail.restore(path)
                if len(path) == total:
                    evaluations += 1
                    feasible, cost = state.leaf()
                    if feasible and cost < best_cost:
                        best, best_cost = state.to_mapping(), cost
                        if shared is not None:
                            shared.offer(best_cost)
                    continue
                assignment = state.assignment
                if adaptive and len(path) < STRONG_BRANCH_DEPTH:
                    undecided = [u for u in free if u not in assignment]
                    unit, scored = strong_branch(
                        state, problem, undecided, state_targets
                    )
                else:
                    unit = next(u for u in free if u not in assignment)
                    scored = probe_targets(
                        state, unit, state_targets(problem, unit, state)
                    )
                for child_bound, _index, target in scored:
                    # Probed child bounds are admissible for the child
                    # subtree; one already at the incumbent (or fleet
                    # floor) never enters the frontier.
                    if (
                        child_bound >= best_cost
                        or child_bound >= clock.shared_floor
                    ):
                        continue
                    pushes += 1
                    heapq.heappush(
                        heap,
                        (child_bound, pushes, path + ((unit, target),)),
                    )
                # A sorted list is a valid min-heap, so capping (which
                # sorts in place) preserves the pop order.
                _cap_frontier(heap, clock, self.max_open)
                clock.note_open(len(heap))
        except _BudgetExceeded:
            truncated = True
        return self._finish_search(
            problem,
            best,
            best_cost,
            clock,
            evaluations,
            shared,
            warm_started,
            truncated,
        )

    def _greedy_dive(
        self,
        problem: SynthesisProblem,
        free,
        state,
        trail,
        clock,
        shared,
        best,
        best_cost,
        evaluations,
    ):
        """Root-to-leaf dive along the cheapest probed child.

        The hybrid frontier's incumbent seed: one walk taking the
        best-looking child at every level — the same path a DFS
        explores first — so the subsequent (typically capped) heap
        pass starts with a strong prune threshold instead of an
        open-ended one.  A dead end (every child bound at or above
        the incumbent/fleet floor) abandons the dive; the heap pass
        still covers the whole space, so nothing is lost.
        """
        state_targets = self.state_targets
        prune_infeasible = state.can_prune_infeasible
        adaptive = self.ordering == "adaptive"
        total = len(free)
        if prune_infeasible and not state.feasible:
            return best, best_cost, evaluations
        path: tuple = ()
        while True:
            clock.tick()
            trail.restore(path)
            if len(path) == total:
                evaluations += 1
                feasible, cost = state.leaf()
                if feasible and cost < best_cost:
                    best, best_cost = state.to_mapping(), cost
                    if shared is not None:
                        shared.offer(best_cost)
                return best, best_cost, evaluations
            assignment = state.assignment
            if adaptive and len(path) < STRONG_BRANCH_DEPTH:
                undecided = [u for u in free if u not in assignment]
                unit, scored = strong_branch(
                    state, problem, undecided, state_targets
                )
            else:
                unit = next(u for u in free if u not in assignment)
                scored = probe_targets(
                    state, unit, state_targets(problem, unit, state)
                )
            bound, _index, target = scored[0]
            if bound >= best_cost or bound >= clock.shared_floor:
                return best, best_cost, evaluations
            path += ((unit, target),)

    def _explore_beam(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        """Level-synchronous beam search over the probed child bounds.

        Expands the tree one depth level at a time: the current
        level's nodes are visited in ascending ``(bound, push)`` order
        and their viable children accumulate into the next level's
        buffer, which sorts when the level rolls over.  Uncapped,
        every viable child survives, so the search is a complete
        branch-and-bound — level order changes *when* nodes expand,
        never whether.  With ``max_open`` the buffer is truncated to
        the cheapest ``max_open`` entries after every expansion
        (streaming top-K is exact: an evicted entry could never
        re-enter), bounding the beam width — and therefore memory —
        while :class:`EvictionLog` keeps the proof floor honest.
        """
        free, state, best, best_cost, clock, shared = (
            self._begin_search(problem, warm_start)
        )
        warm_started = best is not None
        evaluations = 0
        state_targets = self.state_targets
        prune_infeasible = state.can_prune_infeasible
        adaptive = self.ordering == "adaptive"
        total = len(free)
        trail = PathTrail(state)
        pushes = 0
        truncated = False
        root_bound = (
            float("inf")
            if prune_infeasible and not state.feasible
            else state.lower_bound()
        )
        level: List[tuple] = [(root_bound, pushes, ())]
        pos = 0
        next_buf: List[tuple] = []

        try:
            while True:
                if pos >= len(level):
                    if not next_buf:
                        break
                    next_buf.sort()
                    level, next_buf, pos = next_buf, [], 0
                bound, _tie, path = level[pos]
                pos += 1
                shared_floor = clock.shared_floor
                limit = (
                    best_cost if best_cost < shared_floor else shared_floor
                )
                if bound >= limit:
                    # The level is bound-sorted, so its remainder is
                    # prunable too; children already buffered for the
                    # next level keep their own pop-time check.
                    pos = len(level)
                    continue
                clock.tick()
                trail.restore(path)
                if len(path) == total:
                    evaluations += 1
                    feasible, cost = state.leaf()
                    if feasible and cost < best_cost:
                        best, best_cost = state.to_mapping(), cost
                        if shared is not None:
                            shared.offer(best_cost)
                    continue
                assignment = state.assignment
                if adaptive and len(path) < STRONG_BRANCH_DEPTH:
                    undecided = [u for u in free if u not in assignment]
                    unit, scored = strong_branch(
                        state, problem, undecided, state_targets
                    )
                else:
                    unit = next(u for u in free if u not in assignment)
                    scored = probe_targets(
                        state, unit, state_targets(problem, unit, state)
                    )
                for child_bound, _index, target in scored:
                    if (
                        child_bound >= best_cost
                        or child_bound >= clock.shared_floor
                    ):
                        continue
                    pushes += 1
                    next_buf.append(
                        (child_bound, pushes, path + ((unit, target),))
                    )
                _cap_frontier(next_buf, clock, self.max_open)
                clock.note_open(len(level) - pos + len(next_buf))
        except _BudgetExceeded:
            truncated = True
        return self._finish_search(
            problem,
            best,
            best_cost,
            clock,
            evaluations,
            shared,
            warm_started,
            truncated,
        )

    def _explore_lds(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        """Limited discrepancy search over the probed child ordering.

        Each pass walks the tree depth-first following the
        cheapest-probed-bound child order (with the adaptive mode's
        shallow strong-branching unit choice), spending ``rank``
        discrepancies to take a child ``rank`` places off that
        heuristic preference; a pass that cuts a *viable* child on
        its allowance sets ``limited`` and the allowance widens by
        one — bound-pruned children are excluded for good and never
        force a pass.  The run ends at the first pass the allowance
        never truncated: that pass was a complete bound-pruned
        search, so the usual optimality proof holds.  Node/budget
        accounting accumulates across passes — re-expansions are real
        work.

        With ``max_open`` set, each new sibling group is trimmed so
        the total count of open (not-yet-descended) children across
        the active recursion never exceeds the cap: the cheapest
        children survive, evicted ones are logged (they never set
        ``limited`` — a capped pass must still terminate) and the
        proof floor accounts for them.
        """
        free, state, best, best_cost, clock, shared = (
            self._begin_search(problem, warm_start)
        )
        warm_started = best is not None
        evaluations = 0
        state_targets = self.state_targets
        prune_infeasible = state.can_prune_infeasible
        adaptive = self.ordering == "adaptive"
        total = len(free)
        truncated = False
        limited = False
        open_count = 0

        def _leaf() -> None:
            nonlocal best, best_cost, evaluations
            evaluations += 1
            feasible, cost = state.leaf()
            if feasible and cost < best_cost:
                best, best_cost = state.to_mapping(), cost
                if shared is not None:
                    shared.offer(best_cost)

        def recurse(
            depth: int,
            allowance: int,
            bound: Optional[float] = None,
        ) -> None:
            # ``bound`` is the probed score of this exact state (from
            # the parent's batch probe) — reusing it skips the entry
            # recomputation; an ``inf`` probe (infeasibility-mapped)
            # returns here exactly where the feasibility check would.
            nonlocal limited, open_count
            clock.tick()
            shared_floor = clock.shared_floor
            limit = (
                best_cost if best_cost < shared_floor else shared_floor
            )
            if limit < float("inf"):
                if bound is None:
                    bound = state.lower_bound()
                if bound >= limit:
                    return
            if prune_infeasible and not state.feasible:
                return
            if depth == total:
                _leaf()
                return
            assignment = state.assignment
            if adaptive and depth < STRONG_BRANCH_DEPTH:
                undecided = [u for u in free if u not in assignment]
                unit, scored = strong_branch(
                    state, problem, undecided, state_targets
                )
            else:
                unit = next(u for u in free if u not in assignment)
                scored = probe_targets(
                    state, unit, state_targets(problem, unit, state)
                )
            scored = _cap_children(scored, clock, self.max_open, open_count)
            open_count += len(scored)
            clock.note_open(open_count)
            for rank, (bound, _index, target) in enumerate(scored):
                open_count -= 1
                # Bound-pruned children are excluded for good — they
                # never consume the allowance and never force another
                # pass (only a *viable* child cut by the allowance
                # does).
                if bound >= best_cost or bound >= clock.shared_floor:
                    continue
                if rank > allowance:
                    # A viable deeper discrepancy waits for the wider
                    # next pass.
                    limited = True
                    open_count -= len(scored) - rank - 1
                    break
                state.assign(unit, target)
                recurse(depth + 1, allowance - rank, bound)
                state.unassign(unit)

        allowance = 0
        try:
            while True:
                limited = False
                recurse(0, allowance)
                if not limited:
                    break
                allowance += 1
        except _BudgetExceeded:
            truncated = True
        return self._finish_search(
            problem,
            best,
            best_cost,
            clock,
            evaluations,
            shared,
            warm_started,
            truncated,
        )


class AnnealingExplorer(SearchExplorer):
    """Simulated annealing with an infeasibility penalty.

    Deterministic for a given ``seed``: repeated runs (and separate
    process invocations) produce byte-identical results — the integer
    cost kernel makes every move energy order-independent, so the
    trajectory no longer depends on how the state was mutated into
    place.  ``optimal`` is reported False: the result is a (usually
    excellent) heuristic solution.  A ``warm_start`` replaces the
    random initial configuration.

    ``shared_incumbent`` is publish-only: every improved feasible cost
    is offered to the fleet (so concurrent branch-and-bound searches
    can prune against it), but the annealing trajectory itself never
    reads the cell — the walk stays byte-deterministic for a seed.
    """

    accepts_shared_incumbent = True

    def __init__(
        self,
        seed: int = 0,
        iterations: int = 5000,
        initial_temperature: float = 10.0,
        cooling: float = 0.995,
        penalty: float = 1000.0,
        incremental: bool = True,
        shared_incumbent=None,
        backend: Optional[str] = None,
    ) -> None:
        # Annealing's hot loop is scalar single-move probing — arrays
        # buy it nothing — so ``auto`` resolves to the scalar backend
        # here; an explicit ``backend=`` is honored as given.
        super().__init__(
            incremental=incremental,
            backend="python" if backend is None else backend,
        )
        if iterations < 1:
            raise SynthesisError("iterations must be >= 1")
        if not 0 < cooling < 1:
            raise SynthesisError("cooling must be in (0, 1)")
        self.seed = seed
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.penalty = penalty
        self.shared_incumbent = shared_incumbent

    def _energy_of(
        self, problem: SynthesisProblem, result: Evaluation
    ) -> float:
        """Move energy of one (possibly probed) evaluation."""
        if result.feasible:
            return result.total_cost
        overload = 0.0
        capacity = problem.architecture.processor_capacity
        for load in result.utilizations:
            overload += max(0.0, load - capacity)
        return self.penalty * (1.0 + overload) + result.hardware_cost

    def _energy(self, state: _SearchStateT) -> Tuple[float, Evaluation]:
        result = state.evaluation()
        return self._energy_of(state.problem, result), result

    def explore(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        rng = random.Random(self.seed)
        free = list(problem.free_units)
        # The integer kernel makes every accept/reject energy
        # order-independent, so repeated runs (and separate processes)
        # replay the identical trajectory; annealing never reads the
        # lower bound, so its knapsack maintenance is skipped.
        state = self._new_state(problem, capacity_bound=False)
        warm = self._warm_assignment(problem, warm_start)
        if warm is not None:
            for unit in free:
                state.assign(unit, warm[unit])
        else:
            for unit in free:
                state.assign(
                    unit, rng.choice(self.state_targets(problem, unit, state))
                )
        current_energy, current_eval = self._energy(state)
        best_mapping: Optional[Mapping] = (
            state.to_mapping() if current_eval.feasible else None
        )
        best_energy = (
            current_energy if current_eval.feasible else float("inf")
        )
        shared = self.shared_incumbent
        if shared is not None and best_mapping is not None:
            shared.offer(best_energy)
        temperature = self.initial_temperature
        nodes = 1
        evaluations = 1
        deadline = self.deadline
        truncated = False

        for iteration in range(self.iterations):
            if not free:
                break
            if (
                deadline is not None
                and (iteration & 255) == 0
                and time.monotonic() > deadline
            ):
                # Same poll granularity as the exact frontiers: the
                # serve deadline cuts the walk mid-run instead of
                # letting it finish all remaining iterations.
                truncated = True
                break
            unit = rng.choice(free)
            old = state.assignment[unit]
            options = [
                t
                for t in self.state_targets(problem, unit, state)
                if t != old
            ]
            if not options:
                continue
            # Probe-then-commit through the batch evaluation API:
            # rejected proposals never mutate the state.  The probed
            # evaluation is byte-identical to reassign-and-evaluate
            # (same integer accumulators), so the accept/reject
            # trajectory — including the rng stream, which only draws
            # on uphill energies — is unchanged.
            proposal = rng.choice(options)
            evaluation = state.probe_move(unit, proposal)
            energy = self._energy_of(problem, evaluation)
            nodes += 1
            evaluations += 1
            accept = energy <= current_energy or rng.random() < math.exp(
                (current_energy - energy) / max(temperature, 1e-9)
            )
            if accept:
                state.reassign(unit, proposal)
                current_energy = energy
                if evaluation.feasible and energy < best_energy:
                    best_mapping = state.to_mapping()
                    best_energy = energy
                    if shared is not None:
                        shared.offer(best_energy)
            temperature *= self.cooling

        provenance = f"annealing(seed={self.seed})"
        if truncated:
            provenance += " (deadline-truncated)"
        return self._finish(
            problem,
            best_mapping,
            nodes,
            evaluations,
            optimal=False,
            provenance=provenance,
        )


class PortfolioExplorer(SearchExplorer):
    """Race annealing against budgeted branch-and-bound.

    Annealing runs first; its best feasible mapping seeds
    branch-and-bound as the incumbent, tightening pruning from node
    one.  Branch-and-bound runs under the configured node/time budget;
    if it completes, the portfolio result is provably optimal.  The
    returned :class:`ExplorationResult` carries provenance naming the
    winning member and each member's cost.
    """

    def __init__(
        self,
        node_budget: Optional[int] = 200_000,
        time_budget: Optional[float] = None,
        seed: int = 0,
        iterations: int = 4000,
        incremental: bool = True,
        backend: Optional[str] = None,
        max_open: Optional[int] = None,
    ) -> None:
        super().__init__(incremental=incremental, backend=backend)
        self.node_budget = node_budget
        self.time_budget = time_budget
        self.seed = seed
        self.iterations = iterations
        self.max_open = max_open

    def explore(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        annealing = AnnealingExplorer(
            seed=self.seed,
            iterations=self.iterations,
            incremental=self.incremental,
            backend=self.backend,
        )
        annealing.deadline = self.deadline
        heuristic = annealing.explore(problem, warm_start=warm_start)
        exact_member = BranchBoundExplorer(
            incremental=self.incremental,
            node_budget=self.node_budget,
            time_budget=self.time_budget,
            backend=self.backend,
            max_open=self.max_open,
        )
        exact_member.deadline = self.deadline
        exact = exact_member.explore(
            problem,
            warm_start=heuristic.mapping
            if heuristic.feasible
            else warm_start,
        )
        members = [("annealing", heuristic), ("branch_and_bound", exact)]
        winner_name, winner = min(
            members, key=lambda item: (item[1].cost, item[1].optimal is False)
        )
        provenance = (
            f"portfolio[{winner_name}]: "
            + ", ".join(
                f"{name} cost={result.cost:g}" for name, result in members
            )
            + (
                " (branch_and_bound complete)"
                if exact.optimal
                else " (branch_and_bound budget-truncated)"
            )
        )
        return ExplorationResult(
            problem=problem,
            mapping=winner.mapping,
            evaluation=winner.evaluation,
            nodes_explored=heuristic.nodes_explored + exact.nodes_explored,
            optimal=exact.optimal,
            evaluations=heuristic.evaluations + exact.evaluations,
            provenance=provenance,
            # The exact member searched the whole space (the annealing
            # result only seeded its incumbent), so its certificate is
            # the portfolio's certificate — without this, a complete
            # run would claim optimal=True with proof_floor at -inf.
            proof_floor=exact.proof_floor,
            open_high_water=exact.open_high_water,
            evicted_subtrees=exact.evicted_subtrees,
        )
