"""Design-space exploration.

Three interchangeable optimizers over :class:`SynthesisProblem`:

* :class:`ExhaustiveExplorer` — enumerates every mapping (with
  processor-symmetry breaking); ground truth for the others.
* :class:`BranchBoundExplorer` — depth-first search pruned by the
  admissible bound of :func:`repro.synth.cost.lower_bound`; provably
  optimal, far fewer nodes.
* :class:`AnnealingExplorer` — simulated annealing for spaces where
  enumeration is hopeless; returns the best feasible mapping found.

The synthesis *flows* (paper reproduction) are optimizer-agnostic —
bench X3 demonstrates all three find the same optimum on the Table 1
space.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SynthesisError
from .cost import Evaluation, evaluate, lower_bound
from .mapping import Mapping, SynthesisProblem, Target


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    problem: SynthesisProblem
    mapping: Optional[Mapping]
    evaluation: Optional[Evaluation]
    nodes_explored: int
    optimal: bool

    @property
    def feasible(self) -> bool:
        """True if a feasible mapping was found."""
        return self.evaluation is not None and self.evaluation.feasible

    @property
    def cost(self) -> float:
        """Total cost of the best mapping (inf if none)."""
        if not self.feasible:
            return float("inf")
        return self.evaluation.total_cost

    def require_feasible(self) -> "ExplorationResult":
        """Raise :class:`SynthesisError` when nothing feasible was found."""
        if not self.feasible:
            raise SynthesisError(
                f"no feasible implementation for problem "
                f"{self.problem.name!r}"
            )
        return self


class Explorer:
    """Common interface of the optimizers."""

    def explore(self, problem: SynthesisProblem) -> ExplorationResult:
        """Search the mapping space of ``problem``."""
        raise NotImplementedError


def _candidate_targets(
    problem: SynthesisProblem,
    unit: str,
    partial: Dict[str, Target],
) -> Tuple[Target, ...]:
    """Admissible targets with processor-symmetry breaking.

    Identical processors make ``sw:0 / sw:1`` swaps equivalent; only
    the first unused processor index is offered in addition to the
    already-populated ones.
    """
    used = sorted(
        {
            target.processor
            for target in partial.values()
            if target.is_software
        }
    )
    cap = problem.architecture.max_processors
    allowed_cpus = [cpu for cpu in used if cpu < cap]
    fresh = (max(used) + 1) if used else 0
    if fresh < cap and fresh not in allowed_cpus:
        allowed_cpus.append(fresh)
    entry = problem.entry(unit)
    result: List[Target] = []
    if entry.software is not None:
        result.extend(Target.sw(cpu) for cpu in allowed_cpus)
    if entry.hardware is not None:
        result.append(Target.hw())
    if not result:
        raise SynthesisError(f"unit {unit!r} has no admissible target")
    return tuple(result)


class ExhaustiveExplorer(Explorer):
    """Complete enumeration; optimal by construction."""

    def explore(self, problem: SynthesisProblem) -> ExplorationResult:
        free = problem.free_units
        best: Optional[Mapping] = None
        best_eval: Optional[Evaluation] = None
        nodes = 0

        def recurse(index: int, partial: Dict[str, Target]) -> None:
            nonlocal best, best_eval, nodes
            nodes += 1
            if index == len(free):
                mapping = Mapping(dict(partial))
                result = evaluate(problem, mapping)
                if result.feasible and (
                    best_eval is None
                    or result.total_cost < best_eval.total_cost
                ):
                    best, best_eval = mapping, result
                return
            unit = free[index]
            for target in _candidate_targets(problem, unit, partial):
                partial[unit] = target
                recurse(index + 1, partial)
                del partial[unit]

        recurse(0, dict(problem.fixed))
        return ExplorationResult(
            problem=problem,
            mapping=best,
            evaluation=best_eval,
            nodes_explored=nodes,
            optimal=True,
        )


class BranchBoundExplorer(Explorer):
    """Depth-first search with admissible lower-bound pruning."""

    def explore(self, problem: SynthesisProblem) -> ExplorationResult:
        # Deciding expensive units first tightens the bound early.
        free = sorted(
            problem.free_units,
            key=lambda u: -(
                problem.entry(u).hardware.cost
                if problem.entry(u).hardware
                else 0.0
            ),
        )
        best: Optional[Mapping] = None
        best_eval: Optional[Evaluation] = None
        nodes = 0

        def recurse(index: int, partial: Dict[str, Target]) -> None:
            nonlocal best, best_eval, nodes
            nodes += 1
            if (
                best_eval is not None
                and lower_bound(problem, partial) >= best_eval.total_cost
            ):
                return
            if index == len(free):
                mapping = Mapping(dict(partial))
                result = evaluate(problem, mapping)
                if result.feasible and (
                    best_eval is None
                    or result.total_cost < best_eval.total_cost
                ):
                    best, best_eval = mapping, result
                return
            unit = free[index]
            for target in _candidate_targets(problem, unit, partial):
                partial[unit] = target
                recurse(index + 1, partial)
                del partial[unit]

        recurse(0, dict(problem.fixed))
        return ExplorationResult(
            problem=problem,
            mapping=best,
            evaluation=best_eval,
            nodes_explored=nodes,
            optimal=True,
        )


class AnnealingExplorer(Explorer):
    """Simulated annealing with an infeasibility penalty.

    Deterministic for a given ``seed``.  ``optimal`` is reported False:
    the result is a (usually excellent) heuristic solution.
    """

    def __init__(
        self,
        seed: int = 0,
        iterations: int = 5000,
        initial_temperature: float = 10.0,
        cooling: float = 0.995,
        penalty: float = 1000.0,
    ) -> None:
        if iterations < 1:
            raise SynthesisError("iterations must be >= 1")
        if not 0 < cooling < 1:
            raise SynthesisError("cooling must be in (0, 1)")
        self.seed = seed
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.penalty = penalty

    def _energy(
        self, problem: SynthesisProblem, mapping: Mapping
    ) -> Tuple[float, Evaluation]:
        result = evaluate(problem, mapping)
        if result.feasible:
            return result.total_cost, result
        overload = 0.0
        capacity = problem.architecture.processor_capacity
        for load in result.utilizations:
            overload += max(0.0, load - capacity)
        return self.penalty * (1.0 + overload) + result.hardware_cost, result

    def explore(self, problem: SynthesisProblem) -> ExplorationResult:
        rng = random.Random(self.seed)
        free = list(problem.free_units)
        current: Dict[str, Target] = dict(problem.fixed)
        for unit in free:
            current[unit] = rng.choice(
                _candidate_targets(problem, unit, current)
            )
        current_mapping = Mapping(dict(current))
        current_energy, current_eval = self._energy(problem, current_mapping)
        best_mapping, best_eval = (
            (current_mapping, current_eval)
            if current_eval.feasible
            else (None, None)
        )
        best_energy = current_energy if current_eval.feasible else float("inf")
        temperature = self.initial_temperature
        nodes = 1

        for _ in range(self.iterations):
            if not free:
                break
            unit = rng.choice(free)
            old = current[unit]
            options = [
                t
                for t in _candidate_targets(problem, unit, current)
                if t != old
            ]
            if not options:
                continue
            current[unit] = rng.choice(options)
            candidate = Mapping(dict(current))
            energy, evaluation = self._energy(problem, candidate)
            nodes += 1
            accept = energy <= current_energy or rng.random() < math.exp(
                (current_energy - energy) / max(temperature, 1e-9)
            )
            if accept:
                current_energy = energy
                if evaluation.feasible and energy < best_energy:
                    best_mapping, best_eval = candidate, evaluation
                    best_energy = energy
            else:
                current[unit] = old
            temperature *= self.cooling

        return ExplorationResult(
            problem=problem,
            mapping=best_mapping,
            evaluation=best_eval,
            nodes_explored=nodes,
            optimal=False,
        )
