"""Synthesis substrate: libraries, cost model, DSE and the paper's flows.

The decision space is hardware/software co-synthesis over the units of
a (variant) model graph; the variant-aware flow exploits run-time
mutual exclusion of clusters when costing shared processors — the
mechanism behind Table 1's "With variants" row.
"""

from .architecture import ArchitectureTemplate
from .backend import BACKENDS, HAS_NUMPY, resolve_backend
from .baselines import (
    BoundApplication,
    IncrementalResult,
    incremental_flow,
    incremental_order_spread,
    serialization_flow,
)
from .cost import (
    Evaluation,
    bucket_by_processor,
    evaluate,
    lower_bound,
    memory_of_units,
    processor_memory,
    processor_utilization,
    utilization_of_units,
)
from .design_time import (
    design_time_of_units,
    independent_design_time,
    sharing_saving,
    variant_aware_design_time,
)
from .explorer import (
    AnnealingExplorer,
    BranchBoundExplorer,
    ExhaustiveExplorer,
    ExplorationResult,
    Explorer,
    PortfolioExplorer,
    SearchExplorer,
)
from .library import (
    ComponentEntry,
    ComponentLibrary,
    HardwareOption,
    ImplKind,
    SoftwareOption,
)
from .mapping import (
    Mapping,
    SynthesisProblem,
    Target,
    VariantOrigin,
    origin_from_name,
    origins_of_graph,
    problem_for_graph,
    units_of_graph,
)
from .methods import (
    ApplicationResult,
    ProblemFamily,
    SelectionResult,
    SpaceExploration,
    explore_space,
    independent_flow,
    superposition_flow,
    synthesize_application,
    variant_aware_flow,
    variant_units,
)
from .ordering import (
    ORDERINGS,
    density_order,
    hardware_cost_order,
    unit_order,
)
from .parallel import (
    DEFAULT_LINEAGE_SIZE,
    Lineage,
    LocalIncumbent,
    ParallelSpaceExplorer,
    RacingPortfolioExplorer,
    SelectionTask,
    SharedIncumbent,
    attach_incumbent,
    parallel_map,
    shard_lineages,
    tasks_from_space,
)
from .results import FlowOutcome, collapse_units, to_table_row
from .state import IncrementalEvaluator, ReferenceSearchState, SearchState
from .schedule import (
    Schedule,
    ScheduledTask,
    durations_from_graph,
    list_schedule,
)

__all__ = [
    "AnnealingExplorer",
    "ApplicationResult",
    "ArchitectureTemplate",
    "BACKENDS",
    "BoundApplication",
    "BranchBoundExplorer",
    "ComponentEntry",
    "ComponentLibrary",
    "DEFAULT_LINEAGE_SIZE",
    "Evaluation",
    "ExhaustiveExplorer",
    "ExplorationResult",
    "Explorer",
    "FlowOutcome",
    "HAS_NUMPY",
    "HardwareOption",
    "ImplKind",
    "IncrementalEvaluator",
    "IncrementalResult",
    "Lineage",
    "LocalIncumbent",
    "Mapping",
    "ORDERINGS",
    "ParallelSpaceExplorer",
    "PortfolioExplorer",
    "ProblemFamily",
    "RacingPortfolioExplorer",
    "ReferenceSearchState",
    "Schedule",
    "ScheduledTask",
    "SearchExplorer",
    "SearchState",
    "SelectionResult",
    "SelectionTask",
    "SharedIncumbent",
    "SoftwareOption",
    "SpaceExploration",
    "SynthesisProblem",
    "Target",
    "VariantOrigin",
    "attach_incumbent",
    "bucket_by_processor",
    "collapse_units",
    "density_order",
    "design_time_of_units",
    "durations_from_graph",
    "evaluate",
    "explore_space",
    "hardware_cost_order",
    "incremental_flow",
    "incremental_order_spread",
    "independent_design_time",
    "independent_flow",
    "list_schedule",
    "lower_bound",
    "memory_of_units",
    "origin_from_name",
    "origins_of_graph",
    "parallel_map",
    "problem_for_graph",
    "processor_memory",
    "processor_utilization",
    "resolve_backend",
    "serialization_flow",
    "shard_lineages",
    "sharing_saving",
    "superposition_flow",
    "synthesize_application",
    "tasks_from_space",
    "to_table_row",
    "unit_order",
    "units_of_graph",
    "utilization_of_units",
    "variant_aware_design_time",
    "variant_aware_flow",
    "variant_units",
]
