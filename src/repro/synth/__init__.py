"""Synthesis substrate: libraries, cost model, DSE and the paper's flows.

The decision space is hardware/software co-synthesis over the units of
a (variant) model graph; the variant-aware flow exploits run-time
mutual exclusion of clusters when costing shared processors — the
mechanism behind Table 1's "With variants" row.
"""

from .architecture import ArchitectureTemplate
from .baselines import (
    IncrementalResult,
    incremental_flow,
    incremental_order_spread,
    serialization_flow,
)
from .cost import (
    Evaluation,
    evaluate,
    lower_bound,
    processor_memory,
    processor_utilization,
)
from .design_time import (
    design_time_of_units,
    independent_design_time,
    sharing_saving,
    variant_aware_design_time,
)
from .explorer import (
    AnnealingExplorer,
    BranchBoundExplorer,
    ExhaustiveExplorer,
    ExplorationResult,
    Explorer,
)
from .library import (
    ComponentEntry,
    ComponentLibrary,
    HardwareOption,
    ImplKind,
    SoftwareOption,
)
from .mapping import (
    Mapping,
    SynthesisProblem,
    Target,
    VariantOrigin,
    origin_from_name,
    origins_of_graph,
    problem_for_graph,
    units_of_graph,
)
from .methods import (
    ApplicationResult,
    independent_flow,
    superposition_flow,
    synthesize_application,
    variant_aware_flow,
    variant_units,
)
from .results import FlowOutcome, collapse_units, to_table_row
from .schedule import (
    Schedule,
    ScheduledTask,
    durations_from_graph,
    list_schedule,
)

__all__ = [
    "AnnealingExplorer",
    "ApplicationResult",
    "ArchitectureTemplate",
    "BranchBoundExplorer",
    "ComponentEntry",
    "ComponentLibrary",
    "Evaluation",
    "ExhaustiveExplorer",
    "ExplorationResult",
    "Explorer",
    "FlowOutcome",
    "HardwareOption",
    "ImplKind",
    "IncrementalResult",
    "Mapping",
    "Schedule",
    "ScheduledTask",
    "SoftwareOption",
    "SynthesisProblem",
    "Target",
    "VariantOrigin",
    "collapse_units",
    "design_time_of_units",
    "durations_from_graph",
    "evaluate",
    "incremental_flow",
    "incremental_order_spread",
    "independent_design_time",
    "independent_flow",
    "list_schedule",
    "lower_bound",
    "origin_from_name",
    "origins_of_graph",
    "problem_for_graph",
    "processor_memory",
    "processor_utilization",
    "serialization_flow",
    "sharing_saving",
    "superposition_flow",
    "synthesize_application",
    "to_table_row",
    "units_of_graph",
    "variant_aware_design_time",
    "variant_aware_flow",
    "variant_units",
]
