"""Static list scheduling of one graph iteration under a mapping.

A lightweight scheduler used to sanity-check that a mapping's timing
story holds: software units bound to the same processor serialize,
hardware units run on dedicated resources, and precedence follows the
channel structure.  Returns the schedule and its makespan; synthesis
flows use utilization (rate-based feasibility), this gives the
latency-based view for tests and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping as TMapping, Optional

from ..errors import SchedulingError
from ..spi.analysis import topological_order
from ..spi.graph import ModelGraph
from .mapping import Mapping, Target


@dataclass(frozen=True)
class ScheduledTask:
    """One unit's slot in the static schedule."""

    unit: str
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Schedule:
    """A complete static schedule."""

    tasks: List[ScheduledTask] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Completion time of the last task."""
        return max((task.end for task in self.tasks), default=0.0)

    def task_of(self, unit: str) -> ScheduledTask:
        """The scheduled slot of one unit."""
        for task in self.tasks:
            if task.unit == unit:
                return task
        raise SchedulingError(f"unit {unit!r} is not scheduled")

    def on_resource(self, resource: str) -> List[ScheduledTask]:
        """All tasks on one resource, by start time."""
        return sorted(
            (task for task in self.tasks if task.resource == resource),
            key=lambda task: task.start,
        )

    def verify_no_overlap(self) -> bool:
        """True if no two tasks overlap on any shared resource."""
        by_resource: Dict[str, List[ScheduledTask]] = {}
        for task in self.tasks:
            by_resource.setdefault(task.resource, []).append(task)
        for tasks in by_resource.values():
            ordered = sorted(tasks, key=lambda task: task.start)
            for first, second in zip(ordered, ordered[1:]):
                if second.start < first.end - 1e-12:
                    return False
        return True


def durations_from_graph(graph: ModelGraph) -> Dict[str, float]:
    """Worst-case execution time per non-virtual process."""
    return {
        name: process.latency_bounds().hi
        for name, process in graph.processes.items()
        if not process.virtual
    }


def resource_of(unit: str, target: Target) -> str:
    """Resource name for a unit under its target."""
    if target.is_software:
        return f"cpu{target.processor}"
    return f"hw:{unit}"


def list_schedule(
    graph: ModelGraph,
    mapping: Mapping,
    durations: Optional[TMapping[str, float]] = None,
) -> Schedule:
    """Greedy list schedule of one iteration (each unit fires once).

    Precedence: a unit starts after all its (non-virtual) predecessors
    finish.  Resources: one unit at a time per resource.  Feedback
    loops are broken at back edges (single-iteration view); graphs with
    no topological order over their non-virtual part are rejected.
    """
    durations = dict(durations or durations_from_graph(graph))
    order = topological_order(graph)
    if order is None:
        raise SchedulingError(
            "graph has inter-process feedback; single-iteration list "
            "scheduling needs an acyclic process structure"
        )
    units = [
        name
        for name in order
        if not graph.process(name).virtual
    ]
    missing = [u for u in units if u not in durations]
    if missing:
        raise SchedulingError(f"no duration for units {missing}")

    finish: Dict[str, float] = {}
    resource_free: Dict[str, float] = {}
    tasks: List[ScheduledTask] = []
    for unit in units:
        target = mapping.target_of(unit)
        resource = resource_of(unit, target)
        ready = 0.0
        for predecessor in graph.predecessors(unit):
            if predecessor in finish:
                ready = max(ready, finish[predecessor])
        start = max(ready, resource_free.get(resource, 0.0))
        end = start + durations[unit]
        finish[unit] = end
        resource_free[resource] = end
        tasks.append(
            ScheduledTask(unit=unit, resource=resource, start=start, end=end)
        )
    return Schedule(tasks=tasks)
