"""Literature baselines the paper positions itself against (§1).

* :func:`serialization_flow` — after Kim, Karri, Potkonjak (paper ref
  [6]): "all variants [...] are enumerated and serialized into a single
  large task which is synthesized [...] such that all timing
  constraints of all variants are met".  A single joint problem, but
  *without* the mutual-exclusion insight: all variants are treated as
  potentially concurrent load.
* :func:`incremental_flow` — after Kavalade, Subrahmanyam (paper ref
  [5]): "separate representations but serialize the design process by
  incrementally synthesizing the hardware architecture for one variant
  (application) at a time".  Decisions made for earlier applications
  are frozen; later applications only decide their new units.  "Both
  groups report a dominant influence of the serialization order on
  result quality" — bench X2 reproduces that spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SynthesisError
from ..spi.graph import ModelGraph
from ..variants.vgraph import VariantGraph
from .architecture import ArchitectureTemplate
from .design_time import design_time_of_units
from .explorer import BranchBoundExplorer, ExplorationResult, Explorer
from .library import ComponentLibrary
from .mapping import (
    Mapping as SynthMapping,
    SynthesisProblem,
    Target,
    problem_for_graph,
    units_of_graph,
)
from .methods import variant_units
from .results import FlowOutcome


def serialization_flow(
    vgraph: VariantGraph,
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
) -> FlowOutcome:
    """Joint synthesis of all variants serialized into one task.

    Identical decision space to the variant-aware flow but with
    ``use_exclusion=False``: the serialized task must sustain every
    variant, so software loads add up instead of combining as a
    per-interface maximum.
    """
    units, origins = variant_units(vgraph)
    problem = SynthesisProblem(
        name=f"{vgraph.name}.serialized",
        units=units,
        library=library,
        architecture=architecture,
        origins=origins,
        use_exclusion=False,
    )
    chosen = explorer if explorer is not None else BranchBoundExplorer()
    exploration = chosen.explore(problem).require_feasible()
    mapping = exploration.mapping
    evaluation = exploration.evaluation
    return FlowOutcome(
        flow="serialization[6]",
        software_parts=mapping.software_units(),
        hardware_parts=mapping.hardware_units(),
        software_cost=evaluation.software_cost,
        hardware_cost=evaluation.hardware_cost,
        total_cost=evaluation.total_cost,
        design_time=design_time_of_units(library, units),
        notes="all variants serialized into one task (no exclusion credit)",
    )


@dataclass
class IncrementalResult:
    """Outcome of one incremental run plus its per-step trail."""

    order: Tuple[str, ...]
    outcome: FlowOutcome
    steps: List[ExplorationResult]


def incremental_flow(
    apps: Sequence[Tuple[str, ModelGraph]],
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
) -> IncrementalResult:
    """Synthesize one application at a time, freezing shared decisions.

    ``apps`` is an *ordered* sequence — the order is the point: shared
    units are decided by the first application that contains them and
    later applications must live with those choices.
    """
    if not apps:
        raise SynthesisError("incremental flow needs at least one application")
    chosen = explorer if explorer is not None else BranchBoundExplorer()

    frozen: Dict[str, Target] = {}
    steps: List[ExplorationResult] = []
    considered_units: List[str] = []
    for name, graph in apps:
        app_units = units_of_graph(graph)
        fixed = {
            unit: frozen[unit] for unit in app_units if unit in frozen
        }
        problem = problem_for_graph(
            name,
            graph,
            library,
            architecture,
            fixed=fixed,
        )
        exploration = chosen.explore(problem).require_feasible()
        steps.append(exploration)
        for unit in app_units:
            if unit not in frozen:
                frozen[unit] = exploration.mapping.target_of(unit)
                considered_units.append(unit)

    software = tuple(
        sorted(u for u, t in frozen.items() if t.is_software)
    )
    hardware = tuple(
        sorted(u for u, t in frozen.items() if t.is_hardware)
    )
    processors = len(
        {t.processor for t in frozen.values() if t.is_software}
    )
    hardware_cost = sum(
        library.entry(unit).hardware.cost for unit in hardware
    )
    software_cost = processors * architecture.processor_cost
    order = tuple(name for name, _ in apps)
    outcome = FlowOutcome(
        flow=f"incremental[5]({'>'.join(order)})",
        software_parts=software,
        hardware_parts=hardware,
        software_cost=software_cost,
        hardware_cost=hardware_cost,
        total_cost=software_cost + hardware_cost,
        design_time=design_time_of_units(library, considered_units),
        notes="one application at a time, shared decisions frozen",
    )
    return IncrementalResult(order=order, outcome=outcome, steps=steps)


def incremental_order_spread(
    apps: Mapping[str, ModelGraph],
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
) -> Dict[Tuple[str, ...], IncrementalResult]:
    """Run the incremental flow under every application order.

    The spread of total costs across orders quantifies the "dominant
    influence of the serialization order" the paper cites as motivation.
    """
    import itertools

    results: Dict[Tuple[str, ...], IncrementalResult] = {}
    names = sorted(apps)
    for order in itertools.permutations(names):
        sequence = [(name, apps[name]) for name in order]
        results[tuple(order)] = incremental_flow(
            sequence, library, architecture, explorer
        )
    return results
