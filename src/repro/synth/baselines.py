"""Literature baselines the paper positions itself against (§1).

* :func:`serialization_flow` — after Kim, Karri, Potkonjak (paper ref
  [6]): "all variants [...] are enumerated and serialized into a single
  large task which is synthesized [...] such that all timing
  constraints of all variants are met".  A single joint problem, but
  *without* the mutual-exclusion insight: all variants are treated as
  potentially concurrent load.
* :func:`incremental_flow` — after Kavalade, Subrahmanyam (paper ref
  [5]): "separate representations but serialize the design process by
  incrementally synthesizing the hardware architecture for one variant
  (application) at a time".  Decisions made for earlier applications
  are frozen; later applications only decide their new units.  "Both
  groups report a dominant influence of the serialization order on
  result quality" — bench X2 reproduces that spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SynthesisError
from ..spi.graph import ModelGraph
from ..variants.vgraph import VariantGraph
from .architecture import ArchitectureTemplate
from .design_time import design_time_of_units
from .explorer import BranchBoundExplorer, ExplorationResult, Explorer
from .library import ComponentLibrary
from .mapping import (
    Mapping as SynthMapping,
    SynthesisProblem,
    Target,
    VariantOrigin,
    origins_of_graph,
    units_of_graph,
)
from .methods import variant_units
from .results import FlowOutcome


def serialization_flow(
    vgraph: VariantGraph,
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
) -> FlowOutcome:
    """Joint synthesis of all variants serialized into one task.

    Identical decision space to the variant-aware flow but with
    ``use_exclusion=False``: the serialized task must sustain every
    variant, so software loads add up instead of combining as a
    per-interface maximum.
    """
    units, origins = variant_units(vgraph)
    problem = SynthesisProblem(
        name=f"{vgraph.name}.serialized",
        units=units,
        library=library,
        architecture=architecture,
        origins=origins,
        use_exclusion=False,
    )
    chosen = explorer if explorer is not None else BranchBoundExplorer()
    exploration = chosen.explore(problem).require_feasible()
    mapping = exploration.mapping
    evaluation = exploration.evaluation
    return FlowOutcome(
        flow="serialization[6]",
        software_parts=mapping.software_units(),
        hardware_parts=mapping.hardware_units(),
        software_cost=evaluation.software_cost,
        hardware_cost=evaluation.hardware_cost,
        total_cost=evaluation.total_cost,
        design_time=design_time_of_units(library, units),
        notes="all variants serialized into one task (no exclusion credit)",
    )


@dataclass
class IncrementalResult:
    """Outcome of one incremental run plus its per-step trail."""

    order: Tuple[str, ...]
    outcome: FlowOutcome
    steps: List[ExplorationResult]


@dataclass(frozen=True)
class BoundApplication:
    """One application prebound to picklable synthesis inputs.

    The flows bind each graph exactly once (units + variant origins)
    and from then on ride the batch problem machinery — no re-binding
    per permutation, and the bound form crosses process boundaries.
    """

    name: str
    units: Tuple[str, ...]
    origins: Tuple[Tuple[str, "VariantOrigin"], ...]

    @staticmethod
    def from_graph(name: str, graph: ModelGraph) -> "BoundApplication":
        return BoundApplication(
            name=name,
            units=units_of_graph(graph),
            origins=tuple(sorted(origins_of_graph(graph).items())),
        )


def _bind_sequence(
    apps: Sequence[Tuple[str, ModelGraph]]
) -> List[BoundApplication]:
    return [
        app
        if isinstance(app, BoundApplication)
        else BoundApplication.from_graph(app[0], app[1])
        for app in apps
    ]


def incremental_flow(
    apps: Sequence[Tuple[str, ModelGraph]],
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
) -> IncrementalResult:
    """Synthesize one application at a time, freezing shared decisions.

    ``apps`` is an *ordered* sequence — the order is the point: shared
    units are decided by the first application that contains them and
    later applications must live with those choices.  Entries may be
    ``(name, graph)`` pairs or prebound :class:`BoundApplication`\\ s;
    each step seeds the next as a warm-start incumbent (the frozen
    shared units make it near-feasible), shrinking the search without
    changing the exact optimum of each step.
    """
    if not apps:
        raise SynthesisError("incremental flow needs at least one application")
    chosen = explorer if explorer is not None else BranchBoundExplorer()

    bound = _bind_sequence(apps)
    frozen: Dict[str, Target] = {}
    steps: List[ExplorationResult] = []
    considered_units: List[str] = []
    previous_best: Optional[SynthMapping] = None
    for app in bound:
        fixed = {
            unit: frozen[unit] for unit in app.units if unit in frozen
        }
        problem = SynthesisProblem(
            name=app.name,
            units=app.units,
            library=library,
            architecture=architecture,
            origins=dict(app.origins),
            fixed=fixed,
        )
        exploration = chosen.explore(
            problem, warm_start=previous_best
        ).require_feasible()
        steps.append(exploration)
        previous_best = exploration.mapping
        for unit in app.units:
            if unit not in frozen:
                frozen[unit] = exploration.mapping.target_of(unit)
                considered_units.append(unit)

    software = tuple(
        sorted(u for u, t in frozen.items() if t.is_software)
    )
    hardware = tuple(
        sorted(u for u, t in frozen.items() if t.is_hardware)
    )
    processors = len(
        {t.processor for t in frozen.values() if t.is_software}
    )
    hardware_cost = sum(
        library.entry(unit).hardware.cost for unit in hardware
    )
    software_cost = processors * architecture.processor_cost
    order = tuple(app.name for app in bound)
    outcome = FlowOutcome(
        flow=f"incremental[5]({'>'.join(order)})",
        software_parts=software,
        hardware_parts=hardware,
        software_cost=software_cost,
        hardware_cost=hardware_cost,
        total_cost=software_cost + hardware_cost,
        design_time=design_time_of_units(library, considered_units),
        notes="one application at a time, shared decisions frozen",
    )
    return IncrementalResult(order=order, outcome=outcome, steps=steps)


def _explore_order(
    order: Tuple[str, ...],
    bound: Mapping[str, BoundApplication],
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Explorer,
) -> IncrementalResult:
    """One permutation of the incremental flow (picklable worker)."""
    return incremental_flow(
        [bound[name] for name in order], library, architecture, explorer
    )


def incremental_order_spread(
    apps: Mapping[str, ModelGraph],
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    explorer: Optional[Explorer] = None,
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, ...], IncrementalResult]:
    """Run the incremental flow under every application order.

    The spread of total costs across orders quantifies the "dominant
    influence of the serialization order" the paper cites as
    motivation.  Each application is bound exactly once (not once per
    permutation); the permutations are independent, so ``jobs`` runs
    them over a process pool with a deterministic merge order.
    """
    import functools
    import itertools

    from .parallel import parallel_map

    names = sorted(apps)
    bound = {
        name: BoundApplication.from_graph(name, apps[name])
        for name in names
    }
    chosen = explorer if explorer is not None else BranchBoundExplorer()
    orders = [tuple(order) for order in itertools.permutations(names)]
    results = parallel_map(
        functools.partial(
            _explore_order,
            bound=bound,
            library=library,
            architecture=architecture,
            explorer=chosen,
        ),
        orders,
        jobs=jobs if jobs is not None else 1,
    )
    return dict(zip(orders, results))
