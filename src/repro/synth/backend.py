"""Evaluation-backend selection for :class:`~repro.synth.state.SearchState`.

The integer kernel (PR 3) made every aggregate an order-independent
``int64``-sized accumulator, so the per-processor bookkeeping can live
either in plain Python dicts (the scalar reference kernel) or in
NumPy structure-of-arrays columns with vectorized batch candidate
scoring.  Both backends are byte-identical by construction — the
scalar kernel stays the oracle — so selection is purely a performance
choice:

* ``"numpy"`` — structure-of-arrays state with vectorized
  ``score_candidates``; requires NumPy.
* ``"python"`` — the pure-Python scalar kernel; always available.
* ``None`` / ``"auto"`` — ``"numpy"`` when NumPy is importable, else
  ``"python"``.

NumPy is an *optional* extra (``pip install repro[fast]``): this
module is the only place it is imported, and the import is guarded so
``repro`` works without it.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SynthesisError

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy
except ImportError:  # pragma: no cover
    numpy = None

#: Whether the NumPy backend is available in this environment.
HAS_NUMPY = numpy is not None

#: Recognized backend names (``None``/``"auto"`` resolve to one of these).
BACKENDS = ("numpy", "python")


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a backend request to a concrete backend name.

    ``None`` and ``"auto"`` pick ``"numpy"`` when available and fall
    back to ``"python"`` otherwise.  Requesting ``"numpy"`` explicitly
    without NumPy installed is an error (silent fallback would make a
    benchmark lie); unknown names are errors too.
    """
    if backend is None or backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "python":
        return "python"
    if backend == "numpy":
        if not HAS_NUMPY:
            raise SynthesisError(
                "backend 'numpy' requested but numpy is not installed; "
                "install the 'fast' extra or use backend='python'"
            )
        return "numpy"
    raise SynthesisError(
        f"unknown backend {backend!r}; expected one of "
        f"{BACKENDS + ('auto',)}"
    )
