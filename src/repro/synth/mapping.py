"""Synthesis problems and mappings (allocation + binding).

A :class:`SynthesisProblem` is the decision space: a set of synthesis
units (non-virtual processes), their implementation options, the
architecture envelope, and — the paper's key structural ingredient —
the **variant origins**: which interface/cluster each unit was
instantiated from.  Units from different clusters of the same interface
are mutually exclusive at run time, which the cost model exploits
("since the clusters γ1 and γ2 are mutually exclusive at run-time, the
available processor performance is not exceeded", §5).

A :class:`Mapping` assigns each unit a target: hardware, or a software
slot on one of the processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterable, Mapping as TMapping, Optional, Tuple

from ..errors import SynthesisError
from ..spi.graph import ModelGraph
from .architecture import ArchitectureTemplate
from .library import ComponentEntry, ComponentLibrary, ImplKind


@dataclass(frozen=True)
class Target:
    """Where one unit is implemented: HW, or SW on processor ``processor``."""

    kind: ImplKind
    processor: int = 0

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise SynthesisError("processor index must be >= 0")

    @staticmethod
    def hw() -> "Target":
        """Hardware target."""
        return Target(ImplKind.HARDWARE)

    @staticmethod
    def sw(processor: int = 0) -> "Target":
        """Software target on the given processor."""
        return Target(ImplKind.SOFTWARE, processor)

    @property
    def is_software(self) -> bool:
        return self.kind is ImplKind.SOFTWARE

    @property
    def is_hardware(self) -> bool:
        return self.kind is ImplKind.HARDWARE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_hardware:
            return "hw"
        return f"sw:{self.processor}"


@dataclass(frozen=True)
class VariantOrigin:
    """Which interface/cluster a synthesis unit came from."""

    interface: str
    cluster: str


def origin_from_name(name: str) -> Optional[VariantOrigin]:
    """Parse ``<interface>.<cluster>.<process>`` namespacing.

    Static binding (:meth:`VariantGraph.bind`) produces exactly this
    pattern; common-part processes have undotted names and map to None.
    Nested interfaces yield longer paths; the outermost pair is used,
    which is correct because outer exclusivity implies inner.
    """
    parts = name.split(".")
    if len(parts) >= 3:
        return VariantOrigin(interface=parts[0], cluster=parts[1])
    return None


@dataclass(frozen=True)
class SynthesisProblem:
    """One co-synthesis decision space."""

    name: str
    units: Tuple[str, ...]
    library: ComponentLibrary
    architecture: ArchitectureTemplate
    origins: TMapping[str, VariantOrigin] = field(default_factory=dict)
    fixed: TMapping[str, Target] = field(default_factory=dict)
    use_exclusion: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "units", tuple(self.units))
        if not self.units:
            raise SynthesisError(
                f"problem {self.name!r} has no synthesis units"
            )
        if len(set(self.units)) != len(self.units):
            raise SynthesisError(
                f"problem {self.name!r} lists duplicate units"
            )
        for unit in self.units:
            self.library.entry(unit)  # raises if missing
        object.__setattr__(
            self, "origins", MappingProxyType(dict(self.origins))
        )
        object.__setattr__(self, "fixed", MappingProxyType(dict(self.fixed)))
        unknown = set(self.origins) - set(self.units)
        if unknown:
            raise SynthesisError(
                f"problem {self.name!r}: origins for unknown units "
                f"{sorted(unknown)}"
            )
        unknown_fixed = set(self.fixed) - set(self.units)
        if unknown_fixed:
            raise SynthesisError(
                f"problem {self.name!r}: fixed targets for unknown units "
                f"{sorted(unknown_fixed)}"
            )

    def __reduce__(self):
        # The origins/fixed mapping proxies are not picklable; rebuild
        # from plain dicts so problems can cross process boundaries
        # (the parallel explorers ship problems to pool workers).
        return (
            SynthesisProblem,
            (
                self.name,
                self.units,
                self.library,
                self.architecture,
                dict(self.origins),
                dict(self.fixed),
                self.use_exclusion,
            ),
        )

    @property
    def free_units(self) -> Tuple[str, ...]:
        """Units the explorer may still decide."""
        return tuple(u for u in self.units if u not in self.fixed)

    def entry(self, unit: str) -> ComponentEntry:
        """Library entry for one unit."""
        return self.library.entry(unit)

    def variant_group(self, unit: str) -> Optional[Tuple[str, str]]:
        """The ``(interface, cluster)`` a unit was instantiated from.

        None for common-part units.  This is the grouping key of the
        memory rule (production variants combine as a per-interface
        maximum) regardless of ``use_exclusion``.
        """
        origin = self.origins.get(unit)
        if origin is None:
            return None
        return (origin.interface, origin.cluster)

    def exclusion_group(self, unit: str) -> Optional[Tuple[str, str]]:
        """The unit's run-time concurrency group for utilization.

        None means always-concurrent load: common-part units, and every
        unit when ``use_exclusion`` is off (the superposition /
        serialization assumption).
        """
        if not self.use_exclusion:
            return None
        return self.variant_group(unit)

    def targets_for(self, unit: str) -> Tuple[Target, ...]:
        """All admissible targets of one unit under this architecture."""
        entry = self.entry(unit)
        result = []
        if entry.software is not None:
            for cpu in range(self.architecture.max_processors):
                result.append(Target.sw(cpu))
        if entry.hardware is not None:
            result.append(Target.hw())
        if not result:
            raise SynthesisError(
                f"unit {unit!r} has no admissible target under "
                f"{self.architecture.name!r}"
            )
        return tuple(result)

    def total_effort(self) -> float:
        """Design effort of considering every unit once."""
        return self.library.total_effort(self.units)


@dataclass(frozen=True)
class Mapping:
    """A complete assignment of units to targets."""

    assignment: TMapping[str, Target]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "assignment", MappingProxyType(dict(self.assignment))
        )

    def __reduce__(self):
        # MappingProxyType is not picklable; rebuild from a plain dict.
        return (Mapping, (dict(self.assignment),))

    def target_of(self, unit: str) -> Target:
        """The target of one unit."""
        try:
            return self.assignment[unit]
        except KeyError:
            raise SynthesisError(f"mapping does not cover unit {unit!r}") from None

    def software_units(self) -> Tuple[str, ...]:
        """Units implemented in software (sorted)."""
        return tuple(
            sorted(
                unit
                for unit, target in self.assignment.items()
                if target.is_software
            )
        )

    def hardware_units(self) -> Tuple[str, ...]:
        """Units implemented in hardware (sorted)."""
        return tuple(
            sorted(
                unit
                for unit, target in self.assignment.items()
                if target.is_hardware
            )
        )

    def processors_used(self) -> Tuple[int, ...]:
        """Distinct processor indices hosting software (sorted)."""
        return tuple(
            sorted(
                {
                    target.processor
                    for target in self.assignment.values()
                    if target.is_software
                }
            )
        )

    def restricted_to(self, units: Iterable[str]) -> "Mapping":
        """The sub-mapping covering only ``units`` (missing ones skipped).

        The warm-start handoff between neighboring selections of a
        variant space: the common part and unchanged clusters keep
        their targets, stale cluster units drop out.
        """
        assignment = self.assignment
        return Mapping(
            {
                unit: assignment[unit]
                for unit in units
                if unit in assignment
            }
        )

    def merged_with(self, other: "Mapping") -> "Mapping":
        """Union of two mappings; conflicting assignments must agree."""
        merged: Dict[str, Target] = dict(self.assignment)
        for unit, target in other.assignment.items():
            if unit in merged and merged[unit] != target:
                raise SynthesisError(
                    f"mapping conflict for unit {unit!r}: "
                    f"{merged[unit]!r} vs {target!r}"
                )
            merged[unit] = target
        return Mapping(merged)

    def __len__(self) -> int:
        return len(self.assignment)


def units_of_graph(graph: ModelGraph) -> Tuple[str, ...]:
    """The synthesis units of a bound graph: non-virtual processes."""
    return tuple(
        sorted(
            name
            for name, process in graph.processes.items()
            if not process.virtual
        )
    )


def origins_of_graph(graph: ModelGraph) -> Dict[str, VariantOrigin]:
    """Variant origins parsed from the graph's namespaced unit names."""
    origins: Dict[str, VariantOrigin] = {}
    for unit in units_of_graph(graph):
        origin = origin_from_name(unit)
        if origin is not None:
            origins[unit] = origin
    return origins


def problem_for_graph(
    name: str,
    graph: ModelGraph,
    library: ComponentLibrary,
    architecture: ArchitectureTemplate,
    use_exclusion: bool = True,
    fixed: TMapping[str, Target] = (),
) -> SynthesisProblem:
    """Build the synthesis problem of one bound model graph."""
    return SynthesisProblem(
        name=name,
        units=units_of_graph(graph),
        library=library,
        architecture=architecture,
        origins=origins_of_graph(graph),
        fixed=dict(fixed) if not isinstance(fixed, tuple) else {},
        use_exclusion=use_exclusion,
    )
