"""The design-time model of paper §5.

"When synthesizing n systems individually, a process that occurs in all
applications, i.e. that is not variant (or application) dependent, has
to be considered n times.  In the proposed approach, such processes
need to be considered only once during the synthesis of all
applications.  This decreases the total number of synthesis decisions
to be made.  As a result, we expect a shorter overall design time."

Design time is therefore modeled as the sum of per-unit synthesis
efforts over all units *considered*, with multiplicity:

* independent / superposition flows consider each application's full
  unit set, so shared units count once per application;
* the variant-aware flow considers every distinct unit exactly once.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .library import ComponentLibrary


def design_time_of_units(
    library: ComponentLibrary, units: Iterable[str]
) -> float:
    """Effort of considering each listed unit once (with multiplicity)."""
    return sum(library.entry(unit).effort for unit in units)


def independent_design_time(
    library: ComponentLibrary,
    apps: Mapping[str, Sequence[str]],
) -> float:
    """Total effort of synthesizing every application separately."""
    return sum(
        design_time_of_units(library, units) for units in apps.values()
    )


def variant_aware_design_time(
    library: ComponentLibrary,
    apps: Mapping[str, Sequence[str]],
) -> float:
    """Total effort when every distinct unit is considered once."""
    distinct = set()
    for units in apps.values():
        distinct.update(units)
    return design_time_of_units(library, sorted(distinct))


def sharing_saving(
    library: ComponentLibrary,
    apps: Mapping[str, Sequence[str]],
) -> float:
    """Design-time saving of the variant-aware flow vs. independent.

    Equals the effort of all shared units times (multiplicity - 1) —
    the structural identity behind Table 1's 140 vs. 118.
    """
    return independent_design_time(library, apps) - variant_aware_design_time(
        library, apps
    )
