"""Checkpoint/resume for in-flight branch-and-bound searches.

A multi-minute proof search that dies at 99% used to restart from
node one.  This module serializes the *live* search state of a
:class:`~repro.synth.explorer.BranchBoundExplorer` — incumbent, proof
floor, node/evaluation counts, and the open frontier — to a versioned
JSON blob, and drives checkpoint-capable twins of the three search
frontiers that can resume from one.

The open frontier serializes as **decision paths** (PR 5's
:class:`~repro.synth.state.PathTrail` snapshot form): a search node is
its ``(unit, target)`` assignments from the root, nothing more.  That
works because the integer cost kernel makes every aggregate
order-independent and pool elections are pure functions of the
committed loads — a node restored by delta replay reads byte-identical
bounds and feasibility however the search got there.  No evaluator
state, Fenwick pool, or numpy array ever touches disk.

Equivalence contract (property-tested against the exhaustive oracle):

* With no resume, a checkpoint-driven search returns byte-identical
  results — same best mapping, proven cost, node and evaluation
  counts — as the plain recursive/heap drivers in ``explorer.py``.
* A search killed by its budget at an *arbitrary* node, then resumed
  from the emitted checkpoint, reaches the same proven optimum as an
  uninterrupted run, and the resumed run's final node count equals the
  uninterrupted one's (node budgets are **totals across segments**:
  the clock resumes from the recorded count).

The depth-first and LDS drivers replay the recursive control flow with
an explicit stack whose entries are either open *nodes* or resumable
*sibling groups* — a group re-applies the recursion's loop-time
incumbent checks when it is popped, not when it was pushed, which is
what keeps node counts identical when an earlier sibling's subtree
improves the incumbent in between.

What is **not** byte-identical after a resume: provenance strings
(a truncated segment reports itself truncated) and wall-clock timing.
Shared-incumbent runs checkpoint the fleet floor they last saw, but
their node counts are timing-dependent with or without checkpoints.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SynthesisError
from .mapping import Mapping, SynthesisProblem, Target
from .ordering import STRONG_BRANCH_DEPTH, probe_targets, strong_branch
from .state import EvictionLog, PathTrail

#: Blob format version.  Bump on any change to the payload shape; a
#: mismatched resume is refused, never misread.  Version 2 added the
#: resource-governance fields (eviction gauges, the beam/hybrid
#: frontier states) — version-1 blobs predate ``max_open`` and cannot
#: express what a capped search dropped, so they are refused.
CHECKPOINT_VERSION = 2

_INF = float("inf")


# ----------------------------------------------------------------------
# Encoding helpers (JSON-safe targets, paths, infinities)
# ----------------------------------------------------------------------
def _encode_target(target: Target) -> str:
    return "hw" if target.is_hardware else f"sw:{target.processor}"


def _decode_target(text: str) -> Target:
    if text == "hw":
        return Target.hw()
    if text.startswith("sw:"):
        return Target.sw(int(text[3:]))
    raise SynthesisError(f"unknown target encoding {text!r}")


def _encode_path(path: Tuple[Tuple[str, Target], ...]) -> List[List[str]]:
    return [[unit, _encode_target(target)] for unit, target in path]


def _decode_path(rows: List[List[str]]) -> Tuple[Tuple[str, Target], ...]:
    return tuple((unit, _decode_target(text)) for unit, text in rows)


def _encode_num(value: Optional[float]):
    """JSON-safe number: ``inf`` crosses as the string ``"inf"``."""
    if value is None:
        return None
    if value == _INF:
        return "inf"
    if value == -_INF:
        return "-inf"
    return value


def _decode_num(value) -> Optional[float]:
    if value is None:
        return None
    if value == "inf":
        return _INF
    if value == "-inf":
        return -_INF
    return float(value)


def problem_fingerprint(problem: SynthesisProblem) -> str:
    """A stable content hash of everything the search depends on.

    Resuming a checkpoint against a *different* problem would silently
    produce garbage (paths replayed onto the wrong units); the
    fingerprint turns that into a refusal.  Covers the unit set, the
    per-unit implementation options, the architecture envelope, the
    fixed targets, and the exclusion semantics.
    """
    payload = {
        "name": problem.name,
        "units": list(problem.units),
        "fixed": {
            unit: _encode_target(target)
            for unit, target in sorted(problem.fixed.items())
        },
        "architecture": repr(problem.architecture),
        "entries": {
            unit: repr(problem.entry(unit)) for unit in problem.units
        },
        "use_exclusion": problem.use_exclusion,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The checkpoint blob
# ----------------------------------------------------------------------
@dataclass
class SearchCheckpoint:
    """One serialized moment of an in-flight (or finished) search."""

    frontier: str
    ordering: str
    fingerprint: str
    nodes: int
    evaluations: int
    best_cost: float
    best_mapping: Optional[Dict[str, str]]
    warm_started: bool
    shared_floor: float
    complete: bool
    frontier_state: Dict[str, object]
    version: int = CHECKPOINT_VERSION
    #: Eviction gauges: a resumed capped search must keep reporting
    #: the subtrees its earlier segments dropped, or its proof floor
    #: would silently forget them across the resume boundary.
    open_high_water: int = 0
    evicted_subtrees: int = 0
    evicted_floor: float = _INF

    def to_payload(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "frontier": self.frontier,
            "ordering": self.ordering,
            "fingerprint": self.fingerprint,
            "nodes": self.nodes,
            "evaluations": self.evaluations,
            "best_cost": _encode_num(self.best_cost),
            "best_mapping": self.best_mapping,
            "warm_started": self.warm_started,
            "shared_floor": _encode_num(self.shared_floor),
            "complete": self.complete,
            "frontier_state": self.frontier_state,
            "open_high_water": self.open_high_water,
            "evicted_subtrees": self.evicted_subtrees,
            "evicted_floor": _encode_num(self.evicted_floor),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SearchCheckpoint":
        if not isinstance(payload, dict):
            raise SynthesisError("checkpoint payload must be an object")
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise SynthesisError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        return cls(
            frontier=payload["frontier"],
            ordering=payload["ordering"],
            fingerprint=payload["fingerprint"],
            nodes=int(payload["nodes"]),
            evaluations=int(payload["evaluations"]),
            best_cost=_decode_num(payload["best_cost"]),
            best_mapping=payload["best_mapping"],
            warm_started=bool(payload["warm_started"]),
            shared_floor=_decode_num(payload["shared_floor"]),
            complete=bool(payload["complete"]),
            frontier_state=payload["frontier_state"],
            version=version,
            open_high_water=int(payload.get("open_high_water", 0)),
            evicted_subtrees=int(payload.get("evicted_subtrees", 0)),
            evicted_floor=_decode_num(
                payload.get("evicted_floor", "inf")
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchCheckpoint":
        return cls.from_payload(json.loads(text))

    def save(self, path: str) -> None:
        """Atomic write: tmp file + fsync + rename.

        A crash mid-save leaves either the old checkpoint or the new
        one, never a torn blob — resuming from a half-written
        checkpoint is the one failure mode this layer must not have.
        """
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(
            prefix=".checkpoint-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self.to_json() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(cls, path: str) -> "SearchCheckpoint":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


class Checkpointer:
    """Checkpoint policy + sink handed to ``explore(checkpoint=)``.

    Parameters
    ----------
    path:
        Atomic save target of every emitted checkpoint (optional).
    every_nodes:
        Emit a checkpoint each time this many *new* nodes have been
        expanded since the last emission (0 = only on completion and
        budget exhaustion, which are always emitted).
    sink:
        Callback receiving every emitted :class:`SearchCheckpoint`
        (tests use this to capture mid-flight snapshots).
    resume:
        A :class:`SearchCheckpoint` (or a path to one) to resume
        from.  The search continues exactly where the checkpoint
        stopped; node budgets count the recorded nodes, so a budget
        is a total across segments.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        every_nodes: int = 0,
        sink: Optional[Callable[[SearchCheckpoint], None]] = None,
        resume: Optional[object] = None,
    ) -> None:
        if every_nodes < 0:
            raise SynthesisError("every_nodes must be >= 0")
        if isinstance(resume, (str, os.PathLike)):
            resume = SearchCheckpoint.load(os.fspath(resume))
        if resume is not None and not isinstance(resume, SearchCheckpoint):
            raise SynthesisError(
                "resume must be a SearchCheckpoint or a path to one"
            )
        self.path = path
        self.every_nodes = every_nodes
        self.sink = sink
        self.resume = resume
        #: The most recently emitted checkpoint (or the resume source
        #: until the first emission).
        self.latest: Optional[SearchCheckpoint] = resume
        self._last_nodes = resume.nodes if resume is not None else 0

    def due(self, nodes: int) -> bool:
        return (
            self.every_nodes > 0
            and nodes - self._last_nodes >= self.every_nodes
        )

    def emit(self, checkpoint: SearchCheckpoint) -> None:
        self.latest = checkpoint
        self._last_nodes = checkpoint.nodes
        if self.sink is not None:
            self.sink(checkpoint)
        if self.path is not None:
            checkpoint.save(self.path)


# ----------------------------------------------------------------------
# Driver scaffolding
# ----------------------------------------------------------------------
@dataclass
class _Search:
    """The live search context shared by the three drivers."""

    explorer: object
    problem: SynthesisProblem
    free: List[str]
    state: object
    trail: PathTrail
    clock: object
    shared: object
    best: Optional[Mapping]
    best_cost: float
    evaluations: int
    warm_started: bool
    fingerprint: str
    adaptive: bool = field(init=False)
    prune_infeasible: bool = field(init=False)
    batch_scoring: bool = field(init=False)
    total: int = field(init=False)

    def __post_init__(self) -> None:
        self.adaptive = self.explorer.ordering == "adaptive"
        self.prune_infeasible = self.state.can_prune_infeasible
        self.batch_scoring = self.state.backend == "numpy"
        self.total = len(self.free)

    def offer_leaf(self) -> None:
        """Evaluate the restored full assignment as a leaf."""
        self.evaluations += 1
        feasible, cost = self.state.leaf()
        if feasible and cost < self.best_cost:
            self.best, self.best_cost = self.state.to_mapping(), cost
            if self.shared is not None:
                self.shared.offer(self.best_cost)

    def limit(self) -> float:
        floor = self.clock.shared_floor
        return self.best_cost if self.best_cost < floor else floor

    def snapshot(
        self,
        frontier_state: Dict[str, object],
        nodes: int,
        complete: bool,
    ) -> SearchCheckpoint:
        return SearchCheckpoint(
            frontier=self.explorer.frontier,
            ordering=self.explorer.ordering,
            fingerprint=self.fingerprint,
            nodes=nodes,
            evaluations=self.evaluations,
            best_cost=self.best_cost,
            best_mapping=(
                {
                    unit: _encode_target(target)
                    for unit, target in sorted(
                        self.best.assignment.items()
                    )
                }
                if self.best is not None
                else None
            ),
            warm_started=self.warm_started,
            shared_floor=self.clock.shared_floor,
            complete=complete,
            frontier_state=frontier_state,
            open_high_water=self.clock.open_high_water,
            evicted_subtrees=self.clock.evictions.count,
            evicted_floor=self.clock.evictions.floor,
        )


def _begin(explorer, problem, warm_start, ck: Checkpointer) -> _Search:
    """Shared prologue: plain search setup + resume reconciliation."""
    free, state, best, best_cost, clock, shared = explorer._begin_search(
        problem, warm_start
    )
    fingerprint = problem_fingerprint(problem)
    search = _Search(
        explorer=explorer,
        problem=problem,
        free=free,
        state=state,
        trail=PathTrail(state),
        clock=clock,
        shared=shared,
        best=best,
        best_cost=best_cost,
        evaluations=0,
        warm_started=best is not None,
        fingerprint=fingerprint,
    )
    resume = ck.resume
    if resume is None:
        return search
    if resume.frontier != explorer.frontier:
        raise SynthesisError(
            f"checkpoint was taken on frontier {resume.frontier!r}, "
            f"cannot resume on {explorer.frontier!r}"
        )
    if resume.ordering != explorer.ordering:
        raise SynthesisError(
            f"checkpoint was taken under ordering {resume.ordering!r}, "
            f"cannot resume under {explorer.ordering!r}"
        )
    if resume.fingerprint != fingerprint:
        raise SynthesisError(
            f"checkpoint does not belong to problem {problem.name!r} "
            f"(problem fingerprint mismatch)"
        )
    clock.nodes = resume.nodes
    clock.open_high_water = resume.open_high_water
    clock.evictions = EvictionLog(
        resume.evicted_subtrees, resume.evicted_floor
    )
    search.evaluations = resume.evaluations
    search.warm_started = resume.warm_started
    if resume.best_cost < search.best_cost:
        search.best_cost = resume.best_cost
        search.best = (
            Mapping(
                {
                    unit: _decode_target(text)
                    for unit, text in resume.best_mapping.items()
                }
            )
            if resume.best_mapping is not None
            else None
        )
        if shared is not None and search.best is not None:
            shared.offer(search.best_cost)
    # The recorded floor only ever tightens the live one; min keeps
    # both segments' pruning thresholds honest.
    if resume.shared_floor < clock.shared_floor:
        clock.shared_floor = resume.shared_floor
    return search


def drive(explorer, problem, warm_start, ck: Checkpointer):
    """Run one checkpointed exploration; the ``explore()`` twin."""
    search = _begin(explorer, problem, warm_start, ck)
    if explorer.frontier == "best-first":
        truncated = _drive_best_first(search, ck)
    elif explorer.frontier == "hybrid":
        truncated = _drive_hybrid(search, ck)
    elif explorer.frontier == "lds":
        truncated = _drive_lds(search, ck)
    elif explorer.frontier == "beam":
        truncated = _drive_beam(search, ck)
    else:
        truncated = _drive_dfs(search, ck)
    return explorer._finish_search(
        problem,
        search.best,
        search.best_cost,
        search.clock,
        search.evaluations,
        search.shared,
        search.warm_started,
        truncated,
    )


# ----------------------------------------------------------------------
# Depth-first driver (stack of nodes + resumable sibling groups)
# ----------------------------------------------------------------------
# Stack entry shapes (bottom -> top, popped LIFO):
#   ("node", path, checked, bound, feasible)
#       An open node to enter: tick, entry checks (skipped when the
#       parent probe already ``checked`` it), then leaf or expansion.
#   ("group", path, unit, scored, pos)
#       A probed sibling set mid-iteration: popping it re-applies the
#       recursion's loop-time incumbent filter from ``pos`` on, pushes
#       the next viable child plus its own continuation, and otherwise
#       ends the group.  This is what keeps incumbent improvements made
#       *inside* an earlier sibling's subtree visible to later siblings
#       exactly as in the recursive driver.


def _encode_dfs_stack(stack) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for entry in stack:
        if entry[0] == "node":
            _, path, checked, bound, feasible = entry
            rows.append(
                {
                    "kind": "node",
                    "path": _encode_path(path),
                    "checked": checked,
                    "bound": _encode_num(bound),
                    "feasible": feasible,
                }
            )
        else:
            _, path, unit, scored, pos = entry
            rows.append(
                {
                    "kind": "group",
                    "path": _encode_path(path),
                    "unit": unit,
                    "scored": [
                        [_encode_num(bound), _encode_target(target)]
                        for bound, target in scored
                    ],
                    "pos": pos,
                }
            )
    return rows


def _decode_dfs_stack(rows) -> List[tuple]:
    stack: List[tuple] = []
    for row in rows:
        if row["kind"] == "node":
            stack.append(
                (
                    "node",
                    _decode_path(row["path"]),
                    bool(row["checked"]),
                    _decode_num(row["bound"]),
                    row["feasible"],
                )
            )
        else:
            stack.append(
                (
                    "group",
                    _decode_path(row["path"]),
                    row["unit"],
                    tuple(
                        (_decode_num(bound), _decode_target(target))
                        for bound, target in row["scored"]
                    ),
                    int(row["pos"]),
                )
            )
    return stack


def _probe_children(search: _Search, path) -> Tuple[str, tuple]:
    """The probed (unit, scored-children) of the restored state."""
    state, problem = search.state, search.problem
    assignment = state.assignment
    if search.adaptive and len(path) < STRONG_BRANCH_DEPTH:
        undecided = [u for u in search.free if u not in assignment]
        unit, scored = strong_branch(
            state, problem, undecided, search.explorer.state_targets
        )
    else:
        unit = next(u for u in search.free if u not in assignment)
        scored = probe_targets(
            state,
            unit,
            search.explorer.state_targets(problem, unit, state),
        )
    return unit, tuple((bound, target) for bound, _i, target in scored)


def _push_plain_children(search: _Search, stack, path, unit) -> None:
    """Push entry-checked children (the incumbent-exists descent)."""
    state = search.state
    targets = search.explorer.state_targets(search.problem, unit, state)
    if search.batch_scoring and search.limit() < _INF:
        scored = state.score_candidates(unit, targets)
        children = [
            (target, bound, feasible)
            for target, (bound, feasible) in zip(targets, scored)
        ]
    else:
        children = [(target, None, None) for target in targets]
    for target, bound, feasible in reversed(children):
        stack.append(
            ("node", path + ((unit, target),), False, bound, feasible)
        )


def _drive_dfs(search: _Search, ck: Checkpointer) -> bool:
    from .explorer import _BudgetExceeded

    resume = ck.resume
    if resume is not None:
        stack = _decode_dfs_stack(resume.frontier_state["stack"])
    else:
        stack = [("node", (), False, None, None)]

    def expand(path, checked, bound, feasible) -> None:
        state = search.state
        if search.adaptive:
            # Mirrors ``recurse_adaptive``: entry checks only when the
            # parent's probe did not already vet this exact state (the
            # adaptive entry computes the bound unconditionally);
            # probing — and hence sibling groups — only while hunting
            # the first incumbent.
            if not checked:
                limit = search.limit()
                if bound is None:
                    bound = state.lower_bound()
                if bound >= limit:
                    return
                if search.prune_infeasible:
                    if feasible is None:
                        feasible = state.feasible
                    if not feasible:
                        return
            if len(path) == search.total:
                search.offer_leaf()
                return
            if search.best is None:
                unit, scored = _probe_children(search, path)
                stack.append(("group", path, unit, scored, 0))
                return
            assignment = state.assignment
            unit = next(u for u in search.free if u not in assignment)
            _push_plain_children(search, stack, path, unit)
            return
        # Mirrors the non-adaptive ``recurse``: the bound is only
        # read once an incumbent (or fleet floor) exists.
        limit = search.limit()
        if limit < _INF:
            if bound is None:
                bound = state.lower_bound()
            if bound >= limit:
                return
        if search.prune_infeasible:
            if feasible is None:
                feasible = state.feasible
            if not feasible:
                return
        if len(path) == search.total:
            search.offer_leaf()
            return
        _push_plain_children(search, stack, path, search.free[len(path)])

    truncated = False
    entry = None
    try:
        while stack:
            entry = stack.pop()
            if entry[0] == "group":
                _, path, unit, scored, pos = entry
                floor = search.clock.shared_floor
                for rank in range(pos, len(scored)):
                    bound, target = scored[rank]
                    if bound >= search.best_cost or bound >= floor:
                        continue
                    stack.append(("group", path, unit, scored, rank + 1))
                    stack.append(
                        (
                            "node",
                            path + ((unit, target),),
                            True,
                            bound,
                            None,
                        )
                    )
                    break
            else:
                _, path, checked, bound, feasible = entry
                search.clock.tick()
                search.trail.restore(path)
                expand(path, checked, bound, feasible)
            if ck.due(search.clock.nodes):
                ck.emit(
                    search.snapshot(
                        {"stack": _encode_dfs_stack(stack)},
                        search.clock.nodes,
                        complete=False,
                    )
                )
    except _BudgetExceeded:
        # The in-flight node was counted by tick() but never expanded;
        # push it back and record the pre-tick count so the resumed
        # run's total matches an uninterrupted one exactly.
        truncated = True
        stack.append(entry)
        ck.emit(
            search.snapshot(
                {"stack": _encode_dfs_stack(stack)},
                search.clock.nodes - 1,
                complete=False,
            )
        )
    else:
        ck.emit(
            search.snapshot(
                {"stack": []}, search.clock.nodes, complete=True
            )
        )
    return truncated


# ----------------------------------------------------------------------
# Limited discrepancy driver
# ----------------------------------------------------------------------
# Same stack machinery as DFS, with two extra slots: every entry
# carries its remaining discrepancy allowance, and the frontier state
# records the pass-wide ``allowance`` / ``limited`` flags that decide
# whether another widened pass runs.
#   ("node", path, allowance, bound)
#   ("group", path, unit, scored, pos, allowance)


def _encode_lds_stack(stack) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for entry in stack:
        if entry[0] == "node":
            _, path, allowance, bound = entry
            rows.append(
                {
                    "kind": "node",
                    "path": _encode_path(path),
                    "allowance": allowance,
                    "bound": _encode_num(bound),
                }
            )
        else:
            _, path, unit, scored, pos, allowance = entry
            rows.append(
                {
                    "kind": "group",
                    "path": _encode_path(path),
                    "unit": unit,
                    "scored": [
                        [_encode_num(bound), _encode_target(target)]
                        for bound, target in scored
                    ],
                    "pos": pos,
                    "allowance": allowance,
                }
            )
    return rows


def _decode_lds_stack(rows) -> List[tuple]:
    stack: List[tuple] = []
    for row in rows:
        if row["kind"] == "node":
            stack.append(
                (
                    "node",
                    _decode_path(row["path"]),
                    int(row["allowance"]),
                    _decode_num(row["bound"]),
                )
            )
        else:
            stack.append(
                (
                    "group",
                    _decode_path(row["path"]),
                    row["unit"],
                    tuple(
                        (_decode_num(bound), _decode_target(target))
                        for bound, target in row["scored"]
                    ),
                    int(row["pos"]),
                    int(row["allowance"]),
                )
            )
    return stack


def _drive_lds(search: _Search, ck: Checkpointer) -> bool:
    from .explorer import _BudgetExceeded, _cap_children

    resume = ck.resume
    if resume is not None:
        frontier = resume.frontier_state
        stack = _decode_lds_stack(frontier["stack"])
        allowance = int(frontier["allowance"])
        limited = bool(frontier["limited"])
    else:
        allowance = 0
        limited = False
        stack = [("node", (), allowance, None)]
    # Open (not-yet-descended) children across the active groups — the
    # quantity the recursive driver's ``max_open`` cap reads.  The
    # stack *is* the recursion, so the count reconstructs exactly from
    # each group's remaining slice; a resumed segment therefore caps
    # at the same points the uninterrupted run would.
    open_count = sum(
        len(entry[3]) - entry[4] for entry in stack if entry[0] == "group"
    )

    def lds_state() -> Dict[str, object]:
        return {
            "stack": _encode_lds_stack(stack),
            "allowance": allowance,
            "limited": limited,
        }

    truncated = False
    entry = None
    try:
        while True:
            while stack:
                entry = stack.pop()
                if entry[0] == "group":
                    _, path, unit, scored, pos, group_allowance = entry
                    open_count -= len(scored) - pos
                    floor = search.clock.shared_floor
                    for rank in range(pos, len(scored)):
                        bound, target = scored[rank]
                        if bound >= search.best_cost or bound >= floor:
                            # Bound-pruned children are excluded for
                            # good: no allowance spent, no wider pass
                            # forced.
                            continue
                        if rank > group_allowance:
                            limited = True
                            break
                        stack.append(
                            (
                                "group",
                                path,
                                unit,
                                scored,
                                rank + 1,
                                group_allowance,
                            )
                        )
                        open_count += len(scored) - (rank + 1)
                        stack.append(
                            (
                                "node",
                                path + ((unit, target),),
                                group_allowance - rank,
                                bound,
                            )
                        )
                        break
                else:
                    _, path, node_allowance, bound = entry
                    search.clock.tick()
                    search.trail.restore(path)
                    state = search.state
                    limit = search.limit()
                    viable = True
                    if limit < _INF:
                        if bound is None:
                            bound = state.lower_bound()
                        if bound >= limit:
                            viable = False
                    if viable and search.prune_infeasible:
                        viable = state.feasible
                    if viable:
                        if len(path) == search.total:
                            search.offer_leaf()
                        else:
                            unit, scored = _probe_children(search, path)
                            scored = _cap_children(
                                scored,
                                search.clock,
                                search.explorer.max_open,
                                open_count,
                            )
                            open_count += len(scored)
                            search.clock.note_open(open_count)
                            stack.append(
                                (
                                    "group",
                                    path,
                                    unit,
                                    scored,
                                    0,
                                    node_allowance,
                                )
                            )
                if ck.due(search.clock.nodes):
                    ck.emit(
                        search.snapshot(
                            lds_state(),
                            search.clock.nodes,
                            complete=False,
                        )
                    )
            if not limited:
                break
            allowance += 1
            limited = False
            stack.append(("node", (), allowance, None))
    except _BudgetExceeded:
        truncated = True
        stack.append(entry)
        ck.emit(
            search.snapshot(
                lds_state(),
                search.clock.nodes - 1,
                complete=False,
            )
        )
    else:
        ck.emit(
            search.snapshot(
                lds_state(),
                search.clock.nodes,
                complete=True,
            )
        )
    return truncated


# ----------------------------------------------------------------------
# Best-first / hybrid / beam drivers (path-shaped frontiers)
# ----------------------------------------------------------------------
def _encode_heap(heap) -> List[List[object]]:
    return [
        [_encode_num(bound), tie, _encode_path(path)]
        for bound, tie, path in heap
    ]


def _decode_entries(rows) -> List[tuple]:
    """Decode ``(bound, tie, path)`` entries preserving list order."""
    return [
        (_decode_num(bound), int(tie), _decode_path(path))
        for bound, tie, path in rows
    ]


def _decode_heap(rows) -> List[tuple]:
    heap = _decode_entries(rows)
    heapq.heapify(heap)
    return heap


def _heap_loop(search: _Search, ck: Checkpointer, heap, pushes, make_state):
    """The heap pump shared by the best-first and hybrid drivers.

    ``make_state(heap, pushes)`` builds the frontier_state dict of an
    emitted checkpoint (the hybrid driver wraps it with its phase
    tag).  Returns the truncation flag.
    """
    from .explorer import _BudgetExceeded, _cap_frontier

    truncated = False
    popped = None
    try:
        while heap:
            popped = heapq.heappop(heap)
            bound, _tie, path = popped
            if bound >= search.limit():
                # Bound-ordered heap: nothing left can beat the
                # incumbent, the proof is complete.
                break
            search.clock.tick()
            search.trail.restore(path)
            if len(path) == search.total:
                search.offer_leaf()
            else:
                unit, scored = _probe_children(search, path)
                floor = search.clock.shared_floor
                for child_bound, target in scored:
                    if (
                        child_bound >= search.best_cost
                        or child_bound >= floor
                    ):
                        continue
                    pushes += 1
                    heapq.heappush(
                        heap,
                        (child_bound, pushes, path + ((unit, target),)),
                    )
                _cap_frontier(
                    heap, search.clock, search.explorer.max_open
                )
                search.clock.note_open(len(heap))
            if ck.due(search.clock.nodes):
                ck.emit(
                    search.snapshot(
                        make_state(heap, pushes),
                        search.clock.nodes,
                        complete=False,
                    )
                )
    except _BudgetExceeded:
        truncated = True
        heapq.heappush(heap, popped)
        ck.emit(
            search.snapshot(
                make_state(heap, pushes),
                search.clock.nodes - 1,
                complete=False,
            )
        )
    else:
        ck.emit(
            search.snapshot(
                make_state([], pushes),
                search.clock.nodes,
                complete=True,
            )
        )
    return truncated


def _drive_best_first(search: _Search, ck: Checkpointer) -> bool:
    state = search.state
    resume = ck.resume
    if resume is not None:
        frontier = resume.frontier_state
        heap = _decode_heap(frontier["heap"])
        pushes = int(frontier["pushes"])
    else:
        pushes = 0
        root_bound = (
            _INF
            if search.prune_infeasible and not state.feasible
            else state.lower_bound()
        )
        heap = [(root_bound, pushes, ())]

    def bf_state(heap_now, pushes_now) -> Dict[str, object]:
        return {"heap": _encode_heap(heap_now), "pushes": pushes_now}

    return _heap_loop(search, ck, heap, pushes, bf_state)


def _drive_hybrid(search: _Search, ck: Checkpointer) -> bool:
    """Dive-then-best-first: the dive is its own checkpoint phase.

    A checkpoint emitted mid-dive records ``{"phase": "dive", "path"}``
    — the single open node of the walk; one emitted afterwards records
    the usual heap shape under ``{"phase": "heap"}``.  Resume re-enters
    whichever phase the blob froze.
    """
    state = search.state
    resume = ck.resume
    pushes = 0
    heap = None
    dive_path = None
    if resume is not None:
        frontier = resume.frontier_state
        if frontier["phase"] == "heap":
            heap = _decode_heap(frontier["heap"])
            pushes = int(frontier["pushes"])
        else:
            dive_path = _decode_path(frontier["path"])
    elif search.best is None and not (
        search.prune_infeasible and not state.feasible
    ):
        dive_path = ()

    if dive_path is not None:
        if _hybrid_dive(search, ck, dive_path):
            return True
        search.trail.restore(())
    if heap is None:
        root_bound = (
            _INF
            if search.prune_infeasible and not state.feasible
            else state.lower_bound()
        )
        heap = [(root_bound, pushes, ())]

    def hybrid_state(heap_now, pushes_now) -> Dict[str, object]:
        return {
            "phase": "heap",
            "heap": _encode_heap(heap_now),
            "pushes": pushes_now,
        }

    return _heap_loop(search, ck, heap, pushes, hybrid_state)


def _hybrid_dive(search: _Search, ck: Checkpointer, path) -> bool:
    """The hybrid frontier's incumbent-seeding greedy dive."""
    from .explorer import _BudgetExceeded

    def dive_state(path_now) -> Dict[str, object]:
        return {"phase": "dive", "path": _encode_path(path_now)}

    try:
        while True:
            search.clock.tick()
            search.trail.restore(path)
            if len(path) == search.total:
                search.offer_leaf()
                return False
            unit, scored = _probe_children(search, path)
            bound, target = scored[0]
            if (
                bound >= search.best_cost
                or bound >= search.clock.shared_floor
            ):
                return False
            path += ((unit, target),)
            if ck.due(search.clock.nodes):
                ck.emit(
                    search.snapshot(
                        dive_state(path),
                        search.clock.nodes,
                        complete=False,
                    )
                )
    except _BudgetExceeded:
        ck.emit(
            search.snapshot(
                dive_state(path),
                search.clock.nodes - 1,
                complete=False,
            )
        )
        return True


def _drive_beam(search: _Search, ck: Checkpointer) -> bool:
    """Level-synchronous beam driver; the two buffers checkpoint
    verbatim (``level``/``pos``/``next`` plus the push counter)."""
    from .explorer import _BudgetExceeded, _cap_frontier

    state = search.state
    resume = ck.resume
    if resume is not None:
        frontier = resume.frontier_state
        level = _decode_entries(frontier["level"])
        pos = int(frontier["pos"])
        next_buf = _decode_entries(frontier["next"])
        pushes = int(frontier["pushes"])
    else:
        pushes = 0
        pos = 0
        root_bound = (
            _INF
            if search.prune_infeasible and not state.feasible
            else state.lower_bound()
        )
        level = [(root_bound, pushes, ())]
        next_buf = []

    def beam_state(pos_now) -> Dict[str, object]:
        return {
            "level": _encode_heap(level),
            "pos": pos_now,
            "next": _encode_heap(next_buf),
            "pushes": pushes,
        }

    truncated = False
    try:
        while True:
            if pos >= len(level):
                if not next_buf:
                    break
                next_buf.sort()
                level, next_buf, pos = next_buf, [], 0
            bound, _tie, path = level[pos]
            pos += 1
            if bound >= search.limit():
                # The level is bound-sorted: its remainder prunes too.
                pos = len(level)
            else:
                search.clock.tick()
                search.trail.restore(path)
                if len(path) == search.total:
                    search.offer_leaf()
                else:
                    unit, scored = _probe_children(search, path)
                    floor = search.clock.shared_floor
                    for child_bound, target in scored:
                        if (
                            child_bound >= search.best_cost
                            or child_bound >= floor
                        ):
                            continue
                        pushes += 1
                        next_buf.append(
                            (
                                child_bound,
                                pushes,
                                path + ((unit, target),),
                            )
                        )
                    _cap_frontier(
                        next_buf, search.clock, search.explorer.max_open
                    )
                    search.clock.note_open(
                        len(level) - pos + len(next_buf)
                    )
            if ck.due(search.clock.nodes):
                ck.emit(
                    search.snapshot(
                        beam_state(pos),
                        search.clock.nodes,
                        complete=False,
                    )
                )
    except _BudgetExceeded:
        # The in-flight entry is level[pos - 1]: rewind one slot and
        # record the pre-tick node count, as every driver does.
        truncated = True
        ck.emit(
            search.snapshot(
                beam_state(pos - 1),
                search.clock.nodes - 1,
                complete=False,
            )
        )
    else:
        ck.emit(
            search.snapshot(
                {"level": [], "pos": 0, "next": [], "pushes": pushes},
                search.clock.nodes,
                complete=True,
            )
        )
    return truncated
