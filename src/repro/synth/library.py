"""Implementation libraries for synthesis.

Every synthesis unit (a non-virtual process of a bound model graph) has
implementation options: a software realization — characterized by the
processor share it needs — and/or a hardware realization (an ASIC or
coprocessor block) with its silicon cost.  The per-unit design
``effort`` feeds the design-time model of paper §5: "when synthesizing
n systems individually, a process that occurs in all applications has
to be considered n times".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import SynthesisError
from ..spi.graph import ModelGraph


class ImplKind(enum.Enum):
    """The two implementation targets of the co-synthesis problem."""

    SOFTWARE = "sw"
    HARDWARE = "hw"


@dataclass(frozen=True)
class SoftwareOption:
    """A software realization on a core processor.

    ``utilization`` is the fraction of one processor's capacity the
    process needs to sustain its required rate (WCET / period in
    classical terms).
    """

    utilization: float
    memory: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.utilization:
            raise SynthesisError("software utilization must be >= 0")
        if self.memory < 0:
            raise SynthesisError("software memory must be >= 0")


@dataclass(frozen=True)
class HardwareOption:
    """A dedicated hardware realization (ASIC / coprocessor block)."""

    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise SynthesisError("hardware cost must be >= 0")


@dataclass(frozen=True)
class ComponentEntry:
    """Implementation options and design effort for one synthesis unit."""

    name: str
    software: Optional[SoftwareOption] = None
    hardware: Optional[HardwareOption] = None
    effort: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SynthesisError("component name must be non-empty")
        if self.software is None and self.hardware is None:
            raise SynthesisError(
                f"component {self.name!r} needs at least one implementation "
                f"option"
            )
        if self.effort < 0:
            raise SynthesisError(
                f"component {self.name!r}: effort must be >= 0"
            )

    @property
    def targets(self) -> Tuple[ImplKind, ...]:
        """The admissible implementation targets."""
        result = []
        if self.software is not None:
            result.append(ImplKind.SOFTWARE)
        if self.hardware is not None:
            result.append(ImplKind.HARDWARE)
        return tuple(result)


class ComponentLibrary:
    """A name-indexed set of component entries."""

    def __init__(self, entries: Iterable[ComponentEntry] = ()) -> None:
        self._entries: Dict[str, ComponentEntry] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: ComponentEntry) -> ComponentEntry:
        """Register an entry; names must be unique."""
        if entry.name in self._entries:
            raise SynthesisError(
                f"library already has an entry for {entry.name!r}"
            )
        self._entries[entry.name] = entry
        return entry

    def component(
        self,
        name: str,
        sw_utilization: Optional[float] = None,
        hw_cost: Optional[float] = None,
        effort: float = 1.0,
        sw_memory: float = 0.0,
    ) -> ComponentEntry:
        """Shorthand: declare an entry from plain numbers."""
        return self.add(
            ComponentEntry(
                name=name,
                software=(
                    SoftwareOption(sw_utilization, memory=sw_memory)
                    if sw_utilization is not None
                    else None
                ),
                hardware=(
                    HardwareOption(hw_cost) if hw_cost is not None else None
                ),
                effort=effort,
            )
        )

    def entry(self, name: str) -> ComponentEntry:
        """Look up an entry by exact unit name."""
        try:
            return self._entries[name]
        except KeyError:
            raise SynthesisError(
                f"library has no entry for synthesis unit {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> Tuple[str, ...]:
        """All registered unit names, sorted."""
        return tuple(sorted(self._entries))

    def for_graph(self, graph: ModelGraph) -> Dict[str, ComponentEntry]:
        """Entries for every non-virtual process of ``graph``.

        Raises :class:`SynthesisError` listing all missing units at once
        so libraries can be fixed in one pass.
        """
        units = [
            name
            for name, process in sorted(graph.processes.items())
            if not process.virtual
        ]
        missing = [name for name in units if name not in self._entries]
        if missing:
            raise SynthesisError(
                f"library lacks entries for synthesis units: {missing}"
            )
        return {name: self._entries[name] for name in units}

    def total_effort(self, names: Iterable[str]) -> float:
        """Sum of design efforts over ``names``."""
        return sum(self.entry(name).effort for name in names)
