"""Process-parallel variant-space exploration and racing portfolios.

The variant-space representation makes each selection's mapping
problem independent — only the warm-start chaining of
:func:`~repro.synth.methods.explore_space` couples neighbors.  This
module exploits that:

* :func:`shard_lineages` splits a space's selections into contiguous
  **warm-start lineages**: within a lineage each exploration seeds the
  next (the PR-1 chaining), across lineages there is no coupling, so
  lineages are embarrassingly parallel.
* :class:`ParallelSpaceExplorer` dispatches lineages over a
  ``multiprocessing`` pool using a **selection-index task protocol**:
  the (picklable) :class:`~repro.synth.methods.ProblemFamily` and
  :class:`~repro.variants.variant_space.VariantSpace` ship **once per
  worker** (fork-inherited on Linux, pickled once by the pool
  initializer elsewhere), and each lineage crosses the process
  boundary as a tiny :class:`LineageShard` — ``(start_index, count)``
  into the space's canonical selection enumeration.  Workers
  re-enumerate their shard locally (:func:`tasks_for_range`, binding
  only their own selections), rebuild each
  :class:`~repro.synth.mapping.SynthesisProblem` (and through it the
  delta-cost :class:`~repro.synth.state.SearchState`), and stream
  lineage results back; the parent merges them in lineage-index
  order, so the output is **byte-identical for every jobs count** —
  ``jobs`` changes wall-clock only, never results.  The lineage
  decomposition is controlled solely by ``lineage_size``; with an
  exact explorer the per-selection costs also equal the unsharded
  sequential chain's.  Pre-materialized task lists (e.g. the
  independent flow's applications, which have no backing space) keep
  the per-task shipping path via :meth:`ParallelSpaceExplorer.explore_tasks`.
* :class:`RacingPortfolioExplorer` runs annealing and budgeted
  branch-and-bound as **racing** process members on one problem:
  the first member to return a *provably optimal* result cancels the
  rest; otherwise the cheapest finisher wins (deterministic member-
  order tie-break).  Provenance records each member's fate, including
  cancellation.
* :func:`parallel_map` is the shared order-preserving process map with
  worker-crash surfacing, reused by the flows (e.g.
  :func:`~repro.synth.baselines.incremental_order_spread`).
* :class:`SharedIncumbent` (and its in-process twin
  :class:`LocalIncumbent`) is the opt-in **cross-lineage incumbent
  channel**: one ``multiprocessing.Value`` holding the fleet-wide best
  cost, published by every worker's search and read back as an extra
  pruning threshold.  ``share_incumbent=True`` on
  :class:`ParallelSpaceExplorer`/:func:`~repro.synth.methods.explore_space`
  (across selections) and on :class:`RacingPortfolioExplorer` (between
  racing members on one problem) turns it on; the default stays off
  because fleet pruning makes per-search *node counts* — never the
  proven best cost — timing-dependent.

A worker exception never vanishes into the pool: it is captured with
its traceback and re-raised in the parent as a
:class:`~repro.errors.SynthesisError` naming the lineage/member.
"""

from __future__ import annotations

import collections
import copy
import heapq
import multiprocessing
import queue as queue_module
from multiprocessing import connection as mp_connection
import random
import sys
import time
import traceback
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import faults
from ..errors import SynthesisError
from ..variants.variant_space import VariantSpace
from .explorer import (
    AnnealingExplorer,
    BranchBoundExplorer,
    ExplorationResult,
    Explorer,
    SearchExplorer,
)
from .mapping import (
    Mapping,
    SynthesisProblem,
    VariantOrigin,
    origins_of_graph,
    units_of_graph,
)
from .ordering import validate_frontier

#: Selections per warm-start lineage.  The lineage decomposition — not
#: the worker count — defines the result, so this default is
#: deliberately independent of ``jobs``.
DEFAULT_LINEAGE_SIZE = 4


def _mp_context(name: Optional[str] = None):
    """The multiprocessing context.

    Prefers ``fork`` on Linux (cheap, no re-import); everywhere else
    the platform default stands — macOS lists ``fork`` as available
    but defaults to ``spawn`` because forking its runtime is unsafe.
    """
    if name is not None:
        return multiprocessing.get_context(name)
    if (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    ):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context(None)


# ----------------------------------------------------------------------
# Incumbent sharing
# ----------------------------------------------------------------------
class LocalIncumbent:
    """In-process best-cost cell — the ``jobs=1``/sequential twin of
    :class:`SharedIncumbent`, so single-process runs share incumbents
    across lineages through the identical interface."""

    __slots__ = ("_cost",)

    def __init__(self) -> None:
        self._cost = float("inf")

    def get(self) -> float:
        """The best cost published so far (``inf`` when none)."""
        return self._cost

    def offer(self, cost: float) -> bool:
        """Publish a cost; True when it improved the incumbent."""
        if cost < self._cost:
            self._cost = cost
            return True
        return False


class SharedIncumbent:
    """Fleet-wide best-cost cell over multiprocessing shared memory.

    One ``multiprocessing.Value('d')`` guarded by its lock: workers
    ``offer()`` every improvement and read the floor with ``get()``.
    The cell is monotone non-increasing, so a stale read is always a
    *valid* (merely conservative) pruning threshold — searches refresh
    it periodically instead of locking per node.  Shared ctypes may
    only cross process boundaries by inheritance, so the cell travels
    through pool initializers / ``Process`` arguments, never through
    task queues.
    """

    __slots__ = ("_cell",)

    def __init__(self, ctx=None) -> None:
        context = ctx if ctx is not None else multiprocessing
        self._cell = context.Value("d", float("inf"))

    def get(self) -> float:
        """The fleet-wide best cost published so far."""
        with self._cell.get_lock():
            return self._cell.value

    def offer(self, cost: float) -> bool:
        """Publish a cost; True when it improved the fleet incumbent."""
        with self._cell.get_lock():
            if cost < self._cell.value:
                self._cell.value = cost
                return True
        return False


def attach_incumbent(explorer: Explorer, incumbent) -> Explorer:
    """A shallow copy of ``explorer`` wired to the incumbent cell.

    Explorers opt in via the ``accepts_shared_incumbent`` marker
    (branch-and-bound prunes against the cell, annealing publishes to
    it); anything else is returned unchanged.  The copy keeps the
    caller's explorer reusable without a lingering cell reference.
    """
    if incumbent is None or not getattr(
        explorer, "accepts_shared_incumbent", False
    ):
        return explorer
    clone = copy.copy(explorer)
    clone.shared_incumbent = incumbent
    return clone


# ----------------------------------------------------------------------
# Tasks and lineages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectionTask:
    """One selection's synthesis problem, reduced to picklable parts.

    The parent binds the graph (cheap) and keeps only what a worker
    needs to rebuild the problem from the shared family: the unit
    names and their variant origins.
    """

    index: int
    selection: Tuple[Tuple[str, str], ...]
    name: str
    units: Tuple[str, ...]
    origins: Tuple[Tuple[str, VariantOrigin], ...]


@dataclass(frozen=True)
class Lineage:
    """A contiguous run of selections chained by warm starts."""

    index: int
    tasks: Tuple[SelectionTask, ...]


@dataclass(frozen=True)
class LineageShard:
    """One lineage as indices into the canonical selection enumeration.

    The shared-memory task protocol: instead of pickling every
    selection's unit/origin tuples, the parent sends this constant-size
    triple and the worker re-enumerates ``[start, start + count)`` from
    its fork-inherited (or initializer-shipped) family + space — see
    :func:`tasks_for_range`.
    """

    index: int
    start: int
    count: int


def tasks_for_range(
    family, space: VariantSpace, start: int, count: Optional[int] = None
) -> List[SelectionTask]:
    """Bind one contiguous selection range into picklable tasks.

    Decodes each index directly via
    :meth:`VariantSpace.selection_at` (mixed-radix, O(axes) per
    selection — no skip-enumeration of the space's prefix), so a
    worker materializing its shard does O(count) work however deep
    into a 10^5-selection space the shard starts.  The decoded order —
    and with it the task indices and application names — is identical
    to :meth:`VariantSpace.selections`, which is what keeps the index
    protocol byte-compatible with shipping the tasks themselves.
    """
    stop = space.count() if count is None else start + count
    tasks: List[SelectionTask] = []
    for index in range(start, stop):
        selection = space.selection_at(index)
        graph = space.vgraph.bind(
            selection, name=f"{family.name}.app{index + 1}"
        )
        tasks.append(
            SelectionTask(
                index=index,
                selection=VariantSpace.selection_key(selection),
                name=graph.name,
                units=units_of_graph(graph),
                origins=tuple(sorted(origins_of_graph(graph).items())),
            )
        )
    return tasks


def tasks_from_space(family, space: VariantSpace) -> List[SelectionTask]:
    """Bind every consistent selection into a picklable task list."""
    return tasks_for_range(family, space, 0)


def shard_lineages(
    tasks: Sequence[SelectionTask], lineage_size: int
) -> List[Lineage]:
    """Contiguous, deterministic lineage decomposition."""
    if lineage_size < 1:
        raise SynthesisError("lineage_size must be >= 1")
    return [
        Lineage(
            index=start // lineage_size,
            tasks=tuple(tasks[start : start + lineage_size]),
        )
        for start in range(0, len(tasks), lineage_size)
    ]


def shard_indices(total: int, lineage_size: int) -> List[LineageShard]:
    """The index-protocol twin of :func:`shard_lineages`."""
    if lineage_size < 1:
        raise SynthesisError("lineage_size must be >= 1")
    return [
        LineageShard(
            index=start // lineage_size,
            start=start,
            count=min(lineage_size, total - start),
        )
        for start in range(0, total, lineage_size)
    ]


def run_lineage(
    family,
    explorer: Explorer,
    warm_start: bool,
    lineage,
    seed: Optional[Mapping] = None,
    deadline: Optional[float] = None,
):
    """Explore one lineage with warm-start chaining.

    The single shared implementation of the batch semantics: the
    sequential path runs it inline, pool workers run it remotely —
    which is what makes the parallel output byte-identical.

    ``seed`` optionally provides an external incumbent mapping (for
    example from the serve layer's cross-request warm cache) used
    before the lineage has produced a feasible result of its own.
    The default ``None`` preserves the historical behavior exactly.
    For exact explorers a seed only tightens pruning — the proven
    cost is unchanged — though node counts may differ from an
    unseeded run.

    ``deadline`` (absolute ``time.monotonic`` instant) stops the
    lineage between tasks once it passes, returning the tasks finished
    so far.  A task that was still running when the deadline hit is
    dropped rather than kept: its explorer was deadline-truncated
    mid-proof, and the serve layer's resumable-partial contract
    re-runs incomplete tasks anyway — a suspect result is worth less
    than an honest "not done".
    """
    from .methods import SelectionResult

    results: List[SelectionResult] = []
    previous_best: Optional[Mapping] = seed
    for task in lineage.tasks:
        if deadline is not None and time.monotonic() >= deadline:
            break
        problem = family.problem_for_units(
            task.name, task.units, origins=task.origins
        )
        warm = previous_best if warm_start else seed
        exploration = explorer.explore(problem, warm_start=warm)
        if deadline is not None and time.monotonic() >= deadline:
            break
        results.append(
            SelectionResult(
                selection=dict(task.selection),
                problem=problem,
                exploration=exploration,
                warm_started=warm is not None,
            )
        )
        if exploration.feasible:
            previous_best = exploration.mapping
    return results


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------
#: Per-worker shared setup, installed once by the pool initializer so
#: the family/explorer are shipped per worker, not per lineage.
_WORKER_STATE: Dict[str, object] = {}


def _init_space_worker(
    family, explorer, warm_start, space=None, incumbent=None
) -> None:
    _WORKER_STATE["family"] = family
    _WORKER_STATE["explorer"] = attach_incumbent(explorer, incumbent)
    _WORKER_STATE["warm_start"] = warm_start
    _WORKER_STATE["space"] = space


def _explore_lineage_remote(lineage: Lineage):
    try:
        results = run_lineage(
            _WORKER_STATE["family"],
            _WORKER_STATE["explorer"],
            _WORKER_STATE["warm_start"],
            lineage,
        )
        return lineage.index, None, results
    except Exception as exc:  # surfaced in the parent
        detail = (
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )
        return lineage.index, detail, None


def _explore_shard_remote(shard: LineageShard):
    """Index-protocol worker: re-enumerate the shard, then explore it."""
    try:
        family = _WORKER_STATE["family"]
        tasks = tasks_for_range(
            family, _WORKER_STATE["space"], shard.start, shard.count
        )
        results = run_lineage(
            family,
            _WORKER_STATE["explorer"],
            _WORKER_STATE["warm_start"],
            Lineage(index=shard.index, tasks=tuple(tasks)),
        )
        return shard.index, None, results
    except Exception as exc:  # surfaced in the parent
        detail = (
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )
        return shard.index, detail, None


def _init_map_worker(fn) -> None:
    _WORKER_STATE["map_fn"] = fn


def _apply_indexed(packed):
    index, item = packed
    try:
        return index, None, _WORKER_STATE["map_fn"](item)
    except Exception as exc:
        detail = (
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )
        return index, detail, None


def _supervised_worker(
    worker_id, initializer, initargs, worker_fn, conn
) -> None:
    """Resident worker loop of the crash-tolerant supervisor.

    Pulls ``(index, attempt, payload)`` tasks from its *private* duplex
    pipe (``None`` = shut down), runs the fault-injection hook and then
    the worker function, and reports ``(worker_id, index, attempt,
    error, result)`` on the same pipe.  Every exception — including an
    injected one — becomes an error report; a hard death (``os._exit``,
    segfault, OOM kill) is detected by the parent via process liveness
    instead.

    The pipe is deliberately a raw :func:`multiprocessing.Pipe`, not a
    ``multiprocessing.Queue``: a queue's shared write lock is held by a
    background feeder thread, so a worker dying at the wrong instant
    leaves the lock acquired forever and deadlocks every *surviving*
    worker's result delivery.  With one private pipe per worker —
    written from the worker's main thread, no feeder, no shared lock —
    a crash can only ever break the crashed worker's own channel, which
    the parent observes as EOF and reaps.
    """
    initializer(*initargs)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        index, attempt, payload = task
        try:
            faults.on_pool_task(index, attempt)
            _, error, result = worker_fn(payload)
        except Exception as exc:
            error = (
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            )
            result = None
        conn.send((worker_id, index, attempt, error, result))


def _retry_delay(
    attempt: int, backoff: float, cap: float, rng: random.Random
) -> float:
    """Capped exponential backoff with deterministic seeded jitter."""
    return min(cap, backoff * (2.0 ** attempt)) * (0.5 + rng.random())


def _run_supervised(
    worker_fn,
    initializer,
    initargs,
    payloads: Sequence,
    jobs: int,
    ctx,
    max_retries: int,
    retry_backoff: float,
    retry_backoff_cap: float,
    retry_seed: int,
    error_for: Callable[[int, str], str],
) -> Tuple[Dict[int, object], Dict[int, int]]:
    """Dispatch ``payloads`` over a crash-tolerant process fleet.

    The replacement for ``Pool.imap_unordered``: a ``multiprocessing``
    pool aborts wholesale when any worker dies hard, so recovery needs
    manually supervised processes.  Each worker gets a *private* duplex
    pipe — the parent therefore always knows exactly which task a
    dead worker held (no claim-message race against ``os._exit``) and
    re-dispatches it to survivors with capped exponential backoff +
    seeded jitter, up to ``max_retries`` per task.  A task failing
    beyond its budget (or outliving every worker) raises
    :class:`SynthesisError` via ``error_for(index, detail)``.

    No channel is shared between workers (see
    :func:`_supervised_worker`), so one worker's death — at any instant
    — cannot wedge another worker's result delivery.

    Returns ``(results by task index, retry counts by task index)`` —
    callers merge by index, so scheduling and recovery never reorder
    results.
    """
    n_workers = min(jobs, len(payloads))
    conns: Dict[int, object] = {}
    workers: Dict[int, object] = {}
    for wid in range(n_workers):
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_supervised_worker,
            args=(wid, initializer, initargs, worker_fn, child_conn),
        )
        process.daemon = True
        process.start()
        child_conn.close()
        conns[wid] = parent_conn
        workers[wid] = process

    pending = set(range(len(payloads)))
    collected: Dict[int, object] = {}
    retries: Dict[int, int] = {}
    busy: Dict[int, Tuple[int, int]] = {}
    idle = collections.deque(sorted(workers))
    ready = collections.deque((i, 0) for i in range(len(payloads)))
    delayed: List[Tuple[float, int, int]] = []
    rng = random.Random(retry_seed)

    def fail_task(index: int, attempt: int, detail: str) -> None:
        if attempt >= max_retries:
            raise SynthesisError(error_for(index, detail))
        retries[index] = attempt + 1
        delay = _retry_delay(
            attempt, retry_backoff, retry_backoff_cap, rng
        )
        heapq.heappush(
            delayed, (time.monotonic() + delay, index, attempt + 1)
        )

    def handle(message) -> None:
        wid, index, attempt, error, result = message
        if busy.get(wid) == (index, attempt):
            del busy[wid]
            idle.append(wid)
        if index not in pending:
            return
        if error is None:
            collected[index] = result
            pending.discard(index)
        else:
            fail_task(index, attempt, error)

    def reap_dead() -> None:
        dead = [w for w, p in workers.items() if not p.is_alive()]
        if not dead:
            return
        # A dying worker may have flushed its final report before the
        # end: drain everything in flight first, so an already-done
        # task is never retried as a phantom crash.
        for conn in conns.values():
            try:
                while conn.poll(0):
                    handle(conn.recv())
            except (EOFError, OSError):
                pass
        for wid in dead:
            process = workers.pop(wid)
            conns.pop(wid).close()
            if wid in idle:
                idle.remove(wid)
            claim = busy.pop(wid, None)
            if claim is not None:
                index, attempt = claim
                if index in pending:
                    fail_task(
                        index,
                        attempt,
                        f"worker process died while running this "
                        f"task (exit code {process.exitcode})",
                    )
        if not workers and pending:
            raise SynthesisError(
                error_for(
                    min(pending),
                    f"every worker process died ({n_workers} started, "
                    f"0 left) with tasks outstanding",
                )
            )

    try:
        while pending:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heapq.heappop(delayed)
                ready.append((index, attempt))
            while idle and ready:
                wid = idle.popleft()
                index, attempt = ready.popleft()
                busy[wid] = (index, attempt)
                try:
                    conns[wid].send(
                        (index, attempt, payloads[index])
                    )
                except (BrokenPipeError, OSError):
                    # The worker died between dispatches; the claim
                    # stays on it and reap_dead fails the task over.
                    pass
            ready_conns = mp_connection.wait(
                list(conns.values()), timeout=0.05
            )
            saw_eof = not ready_conns
            for conn in ready_conns:
                try:
                    handle(conn.recv())
                except (EOFError, OSError):
                    # EOF = that worker died; its pipe stays readable
                    # forever, so reap it now rather than spin.
                    saw_eof = True
            if saw_eof:
                reap_dead()
    finally:
        for wid, process in workers.items():
            if process.is_alive():
                try:
                    conns[wid].send(None)
                except (BrokenPipeError, OSError, ValueError):
                    pass
        for process in workers.values():
            process.join(timeout=1.0)
        for process in workers.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for conn in conns.values():
            conn.close()
    return collected, retries


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
    mp_context: Optional[str] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.05,
    retry_backoff_cap: float = 1.0,
    retry_seed: int = 0,
):
    """Order-preserving process map with worker-crash recovery.

    ``fn`` must be picklable (a module-level callable or a
    ``functools.partial`` of one); it is shipped once per worker via
    the pool initializer, so a closed-over library/explorer is not
    re-pickled per item.  Results stream back unordered and are merged
    by item index, so the output order never depends on scheduling.

    ``max_retries`` re-dispatches a failed item — a worker exception
    *or* a hard worker death — up to that many times per item, with
    ``retry_backoff``-seconds capped exponential backoff and
    deterministic ``retry_seed``-keyed jitter.  A failure beyond the
    budget is re-raised in the parent as :class:`SynthesisError`
    naming the item and carrying the worker traceback (or the dead
    worker's exit code).  Retries only apply to the pool path: with
    ``jobs=1`` the map runs in-process, where an exception is the
    caller's own.
    """
    if jobs < 1:
        raise SynthesisError("jobs must be >= 1")
    if max_retries < 0:
        raise SynthesisError("max_retries must be >= 0")
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    collected, _retries = _run_supervised(
        worker_fn=_apply_indexed,
        initializer=_init_map_worker,
        initargs=(fn,),
        payloads=list(enumerate(items)),
        jobs=jobs,
        ctx=_mp_context(mp_context),
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        retry_backoff_cap=retry_backoff_cap,
        retry_seed=retry_seed,
        error_for=lambda index, detail: (
            f"parallel worker failed on item {index}: {detail}"
        ),
    )
    return [collected[index] for index in range(len(items))]


# ----------------------------------------------------------------------
# Parallel space exploration
# ----------------------------------------------------------------------
class ParallelSpaceExplorer:
    """Batch-explore a variant space over a process pool.

    Parameters
    ----------
    explorer:
        The per-problem optimizer (must be picklable; every built-in
        explorer is).  Defaults to :class:`BranchBoundExplorer`.
    jobs:
        Worker processes.  ``jobs=1`` runs the identical lineage
        machinery in-process — results are byte-identical for every
        jobs count because only the lineage decomposition (not the
        worker count) defines them.
    lineage_size:
        Selections per warm-start lineage.  Larger lineages reuse more
        warm starts; smaller ones expose more parallelism.
    warm_start:
        Chain warm starts within each lineage (off = every selection
        explored cold, matching ``explore_space(warm_start=False)``).
    share_incumbent:
        Publish every lineage's best cost through a
        :class:`SharedIncumbent` cell so all workers' branch-and-bound
        searches prune against the **fleet-wide** best (workers only
        keep exploring selections that could still beat it).  The best
        selection and its proven-optimal cost are unchanged; *node
        counts* become timing-dependent, which is why the default
        (``False``) keeps the byte-identical-for-every-jobs contract.
    frontier:
        Search frontier of the *default* branch-and-bound explorer
        (``"dfs"``/``"best-first"``/``"lds"``); ignored when an
        explicit ``explorer`` is passed.  Every frontier keeps the
        byte-identical-for-every-jobs contract — frontier expansion
        order is deterministic, and lineages stay the unit of work.
    mp_context:
        Multiprocessing start method (default: ``fork`` if available).
    max_retries:
        Re-dispatch a lineage whose worker crashed (hard death or
        evaluator exception) up to this many times, with
        ``retry_backoff``-seconds capped exponential backoff and
        deterministic ``retry_seed``-keyed jitter.  Lineages are pure
        functions of the space, so a re-run returns byte-identical
        results and the lineage-order merge keeps the output unchanged
        at any jobs count; recovered retry counts are recorded on each
        :class:`~repro.synth.explorer.ExplorationResult` (``retries``)
        — honest provenance *outside* the canonical result payload.
        Crashes beyond the budget still raise, naming the shard.
    """

    def __init__(
        self,
        explorer: Optional[Explorer] = None,
        jobs: int = 1,
        lineage_size: int = DEFAULT_LINEAGE_SIZE,
        warm_start: bool = True,
        share_incumbent: bool = False,
        frontier: str = "dfs",
        mp_context: Optional[str] = None,
        backend: Optional[str] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 1.0,
        retry_seed: int = 0,
    ) -> None:
        if jobs < 1:
            raise SynthesisError("jobs must be >= 1")
        if lineage_size < 1:
            raise SynthesisError("lineage_size must be >= 1")
        if max_retries < 0:
            raise SynthesisError("max_retries must be >= 0")
        self.explorer = (
            explorer
            if explorer is not None
            else BranchBoundExplorer(
                frontier=validate_frontier(frontier), backend=backend
            )
        )
        self.jobs = jobs
        self.lineage_size = lineage_size
        self.warm_start = warm_start
        self.share_incumbent = share_incumbent
        self.mp_context = mp_context
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.retry_seed = retry_seed

    def _sequential_explorer(self) -> Explorer:
        """The in-process explorer, incumbent-wired when sharing.

        A :class:`LocalIncumbent` spanning the sequential lineage loop
        gives ``jobs=1`` the same cross-lineage pruning semantics as
        the pool path — deterministically, since there is no timing.
        """
        if not self.share_incumbent:
            return self.explorer
        return attach_incumbent(self.explorer, LocalIncumbent())

    def explore(self, family, space: VariantSpace):
        """Explore every consistent selection; deterministic output.

        Uses the selection-index task protocol: lineages cross the
        process boundary as ``(start, count)`` shards and workers
        re-enumerate them from the once-shipped family + space.
        """
        from .methods import SpaceExploration

        shards = shard_indices(space.count(), self.lineage_size)
        if self.jobs == 1 or len(shards) <= 1:
            # In-process: nothing to ship, so enumerate the space once
            # and shard the task list directly (the worker-side
            # re-enumeration would redo it per shard).
            explorer = self._sequential_explorer()
            lineages = shard_lineages(
                tasks_from_space(family, space), self.lineage_size
            )
            per_lineage = [
                run_lineage(family, explorer, self.warm_start, lin)
                for lin in lineages
            ]
        else:
            per_lineage = self._run_index_pool(family, space, shards)
        results = [result for chunk in per_lineage for result in chunk]
        return SpaceExploration(family=family, results=results)

    def explore_tasks(self, family, tasks: Sequence[SelectionTask]):
        """Run a prepared task list through the lineage machinery.

        The per-task shipping path, for task lists with no backing
        :class:`VariantSpace` to re-enumerate from (e.g. the
        independent flow's prebound applications).
        """
        lineages = shard_lineages(list(tasks), self.lineage_size)
        if self.jobs == 1 or len(lineages) <= 1:
            explorer = self._sequential_explorer()
            per_lineage = [
                run_lineage(family, explorer, self.warm_start, lin)
                for lin in lineages
            ]
        else:
            per_lineage = self._run_pool(family, lineages)
        return [result for chunk in per_lineage for result in chunk]

    def _run_index_pool(
        self, family, space: VariantSpace, shards: List[LineageShard]
    ):
        return self._collect_over_pool(
            worker=_explore_shard_remote,
            payloads=shards,
            initargs=(family, self.explorer, self.warm_start, space),
            describe=lambda index: (
                f"selections {shards[index].start}.."
                f"{shards[index].start + shards[index].count - 1}"
            ),
        )

    def _run_pool(self, family, lineages: List[Lineage]):
        return self._collect_over_pool(
            worker=_explore_lineage_remote,
            payloads=lineages,
            initargs=(family, self.explorer, self.warm_start, None),
            describe=lambda index: (
                f"selections {[t.name for t in lineages[index].tasks]}"
            ),
        )

    def _collect_over_pool(self, worker, payloads, initargs, describe):
        """Shared supervised-fleet loop of both task protocols.

        Streams results back unordered, re-dispatches crashed
        lineages to surviving workers (``max_retries``), surfaces an
        unrecovered worker error as :class:`SynthesisError` naming the
        lineage *and its shard*, and merges in lineage-index order so
        neither scheduling nor recovery ever shows in the output.
        With ``share_incumbent`` a :class:`SharedIncumbent` cell rides
        the worker initializer (shared ctypes must cross by
        inheritance) into every worker's explorer.
        """
        ctx = _mp_context(self.mp_context)
        if self.share_incumbent:
            initargs = initargs + (SharedIncumbent(ctx),)
        collected, retries = _run_supervised(
            worker_fn=worker,
            initializer=_init_space_worker,
            initargs=initargs,
            payloads=payloads,
            jobs=self.jobs,
            ctx=ctx,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            retry_backoff_cap=self.retry_backoff_cap,
            retry_seed=self.retry_seed,
            error_for=lambda index, detail: (
                f"exploration worker failed on lineage {index} "
                f"({describe(index)}): {detail}"
            ),
        )
        for index, count in retries.items():
            for sel_result in collected[index]:
                sel_result.exploration.retries = count
        return [collected[index] for index in range(len(payloads))]


# ----------------------------------------------------------------------
# Racing portfolio
# ----------------------------------------------------------------------
def _race_member(result_queue, name, explorer, problem, warm_start):
    try:
        result = explorer.explore(problem, warm_start=warm_start)
        result_queue.put((name, None, result))
    except Exception as exc:
        detail = (
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )
        result_queue.put((name, detail, None))


class RacingPortfolioExplorer(SearchExplorer):
    """Race portfolio members as parallel processes.

    Unlike the sequential :class:`~repro.synth.explorer.PortfolioExplorer`
    (annealing first, its best seeding branch-and-bound), the racing
    mode runs the members *independently and concurrently*:

    * the first member to return a **provably optimal** result wins
      immediately and the remaining members are cancelled;
    * if no member proves optimality, every member finishes and the
      cheapest result wins (ties broken by member order, so the
      returned mapping is deterministic).

    Only branch-and-bound can prove optimality (annealing always
    reports ``optimal=False``), so a proof-cancelled race returns a
    deterministic result as well; which losers got as far as finishing
    is timing-dependent and recorded in the provenance only.

    With ``parallel=False`` the members run sequentially in member
    order with the same first-to-prove-optimal early exit — the
    single-core fallback with identical result semantics.

    With ``share_incumbent=True`` the members race *cooperatively*:
    annealing publishes every improved feasible cost to a
    :class:`SharedIncumbent` cell and branch-and-bound prunes against
    it, so the exact member proves the same optimum over a (typically
    much) smaller tree.  The winning cost is unchanged; per-member
    node counts become timing-dependent, so the default stays off.

    ``frontier`` (``"dfs"`` default) adds a second exact member when
    non-default: a branch-and-bound search on that frontier racing
    the DFS member under the same budgets — on spaces where the first
    dive is misled, the best-first member typically proves the
    optimum first and cancels the rest.  Both exact members prove the
    identical optimal *cost*; under ``parallel=True`` which one
    finishes its proof first (and therefore whose optimal mapping is
    returned) is timing-dependent, exactly like the existing
    cancellation provenance.
    """

    def __init__(
        self,
        node_budget: Optional[int] = 200_000,
        time_budget: Optional[float] = None,
        seed: int = 0,
        iterations: int = 4000,
        incremental: bool = True,
        parallel: bool = True,
        share_incumbent: bool = False,
        frontier: str = "dfs",
        mp_context: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(incremental=incremental, backend=backend)
        self.node_budget = node_budget
        self.time_budget = time_budget
        self.seed = seed
        self.iterations = iterations
        self.parallel = parallel
        self.share_incumbent = share_incumbent
        self.frontier = validate_frontier(frontier)
        self.mp_context = mp_context

    def members(self) -> Tuple[Tuple[str, Explorer], ...]:
        """The racing members, in deterministic tie-break order."""
        members = [
            (
                "branch_and_bound",
                BranchBoundExplorer(
                    incremental=self.incremental,
                    node_budget=self.node_budget,
                    time_budget=self.time_budget,
                    backend=self.backend,
                ),
            ),
        ]
        if self.frontier != "dfs":
            members.append(
                (
                    f"branch_and_bound_{self.frontier.replace('-', '_')}",
                    BranchBoundExplorer(
                        incremental=self.incremental,
                        node_budget=self.node_budget,
                        time_budget=self.time_budget,
                        frontier=self.frontier,
                        # The raw request, not the resolved backend:
                        # under ``auto`` a probe-heavy frontier member
                        # picks the vectorized backend even though the
                        # DFS member resolves to the scalar one.
                        backend=self.backend_request,
                    ),
                )
            )
        members.append(
            (
                "annealing",
                AnnealingExplorer(
                    seed=self.seed,
                    iterations=self.iterations,
                    incremental=self.incremental,
                    backend=self.backend,
                ),
            )
        )
        return tuple(members)

    def explore(
        self,
        problem: SynthesisProblem,
        warm_start: Optional[Mapping] = None,
    ) -> ExplorationResult:
        members = self.members()
        # Daemonic pool workers may not spawn children; inside one
        # (e.g. racing per selection under ParallelSpaceExplorer) the
        # race degrades to the sequential early-exit with identical
        # result semantics.
        in_daemon = multiprocessing.current_process().daemon
        if self.parallel and not in_daemon:
            finished, cancelled = self._race_processes(
                members, problem, warm_start
            )
        else:
            finished, cancelled = self._race_sequential(
                members, problem, warm_start
            )
        return self._assemble(problem, members, finished, cancelled)

    # -- member execution ----------------------------------------------
    def _race_sequential(self, members, problem, warm_start):
        if self.share_incumbent:
            incumbent = LocalIncumbent()
            members = [
                (name, attach_incumbent(explorer, incumbent))
                for name, explorer in members
            ]
        finished: Dict[str, ExplorationResult] = {}
        cancelled: List[str] = []
        proven = False
        for name, explorer in members:
            if proven:
                cancelled.append(name)
                continue
            result = explorer.explore(problem, warm_start=warm_start)
            finished[name] = result
            if result.optimal:
                proven = True
        return finished, cancelled

    def _race_processes(self, members, problem, warm_start):
        ctx = _mp_context(self.mp_context)
        if self.share_incumbent:
            incumbent = SharedIncumbent(ctx)
            members = [
                (name, attach_incumbent(explorer, incumbent))
                for name, explorer in members
            ]
        result_queue = ctx.Queue()
        processes = {}
        for name, explorer in members:
            process = ctx.Process(
                target=_race_member,
                args=(result_queue, name, explorer, problem, warm_start),
            )
            process.daemon = True
            process.start()
            processes[name] = process
        finished: Dict[str, ExplorationResult] = {}

        def consume(message) -> bool:
            """Record one member message; True = optimality proved."""
            name, error, result = message
            if error is not None:
                raise SynthesisError(
                    f"racing portfolio member {name!r} failed on "
                    f"problem {problem.name!r}: {error}"
                )
            finished[name] = result
            return result.optimal

        try:
            proved = False
            while len(finished) < len(members) and not proved:
                try:
                    proved = consume(result_queue.get(timeout=0.05))
                    continue
                except queue_module.Empty:
                    pass
                if any(
                    processes[n].is_alive()
                    for n, _ in members
                    if n not in finished
                ):
                    continue
                # Every unfinished member has exited.  A result may
                # still be in flight (put just after our get timed
                # out), so drain the queue before judging them dead.
                while len(finished) < len(members) and not proved:
                    try:
                        proved = consume(result_queue.get(timeout=0.25))
                    except queue_module.Empty:
                        pending = [
                            n for n, _ in members if n not in finished
                        ]
                        raise SynthesisError(
                            f"racing portfolio member(s) {pending} "
                            f"died without reporting a result on "
                            f"problem {problem.name!r}"
                        )
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            for process in processes.values():
                process.join()
            result_queue.close()
        cancelled = [n for n, _ in members if n not in finished]
        return finished, cancelled

    # -- result assembly ------------------------------------------------
    def _assemble(self, problem, members, finished, cancelled):
        if not finished:
            raise SynthesisError(
                f"racing portfolio produced no result for problem "
                f"{problem.name!r}"
            )
        proved = [
            name for name, _ in members
            if name in finished and finished[name].optimal
        ]
        if proved:
            winner_name = proved[0]
        else:
            winner_name = min(
                (name for name, _ in members if name in finished),
                key=lambda name: (
                    finished[name].cost,
                    [n for n, _ in members].index(name),
                ),
            )
        winner = finished[winner_name]
        # Combine the members' proofs: a branch-and-bound member that
        # was pruned by a foreign (shared-incumbent) cost still
        # certifies that nothing beats the lowest threshold it used,
        # so a heuristic winner matching that floor is fleet-proved.
        proof_floor = max(
            (r.proof_floor for r in finished.values()),
            default=float("-inf"),
        )
        fleet_proved = (
            not winner.optimal
            and winner.feasible
            and winner.cost <= proof_floor
        )
        parts = []
        for name, _ in members:
            if name in finished:
                result = finished[name]
                note = " (proved optimal)" if result.optimal else ""
                parts.append(f"{name} cost={result.cost:g}{note}")
            else:
                parts.append(f"{name} cancelled")
        provenance = (
            f"racing_portfolio[{winner_name}]: " + ", ".join(parts)
        )
        if fleet_proved:
            provenance += " (fleet-proved optimal)"
        return ExplorationResult(
            problem=problem,
            mapping=winner.mapping,
            evaluation=winner.evaluation,
            nodes_explored=sum(
                r.nodes_explored for r in finished.values()
            ),
            optimal=winner.optimal or fleet_proved,
            evaluations=sum(r.evaluations for r in finished.values()),
            provenance=provenance,
            proof_floor=proof_floor,
        )
