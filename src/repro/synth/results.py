"""Result records and Table-1-style row formatting.

A :class:`FlowOutcome` is the uniform record all synthesis flows
produce; :func:`to_table_row` renders it in the shape of the paper's
Table 1 (software parts, processor cost, hardware parts, ASIC cost,
total, design time), collapsing namespaced cluster units to cluster
labels the way the paper writes "γ1" for the whole cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FlowOutcome:
    """Outcome of one synthesis flow on one (set of) application(s)."""

    flow: str
    software_parts: Tuple[str, ...]
    hardware_parts: Tuple[str, ...]
    software_cost: float
    hardware_cost: float
    total_cost: float
    design_time: float
    feasible: bool = True
    notes: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports."""
        return {
            "flow": self.flow,
            "software_parts": list(self.software_parts),
            "hardware_parts": list(self.hardware_parts),
            "software_cost": self.software_cost,
            "hardware_cost": self.hardware_cost,
            "total_cost": self.total_cost,
            "design_time": self.design_time,
            "feasible": self.feasible,
        }


def collapse_units(
    units: Sequence[str],
    labels: Optional[Mapping[str, str]] = None,
) -> Tuple[str, ...]:
    """Group cluster units under their cluster name for display.

    Units named ``<iface>.<cluster>.<process>`` are summarized as
    ``<iface>.<cluster>`` (then relabeled via ``labels`` if given); a
    cluster split across software and hardware therefore shows up on
    both sides of a table row.  Unclustered units pass through (with
    labeling).
    """
    labels = dict(labels or {})
    clusters: Dict[str, List[str]] = {}
    plain: List[str] = []
    for unit in units:
        parts = unit.split(".")
        if len(parts) >= 3:
            clusters.setdefault(".".join(parts[:2]), []).append(unit)
        else:
            plain.append(unit)
    collapsed: List[str] = []
    for cluster in sorted(clusters):
        collapsed.append(labels.get(cluster, cluster))
    for unit in sorted(plain):
        collapsed.append(labels.get(unit, unit))
    return tuple(sorted(collapsed))


def to_table_row(
    outcome: FlowOutcome,
    labels: Optional[Mapping[str, str]] = None,
) -> Dict[str, object]:
    """One Table-1 row: parts collapsed, costs and design time plain."""
    return {
        "flow": outcome.flow,
        "software": ", ".join(collapse_units(outcome.software_parts, labels)),
        "sw_cost": round(outcome.software_cost, 6),
        "hardware": ", ".join(collapse_units(outcome.hardware_parts, labels)),
        "hw_cost": round(outcome.hardware_cost, 6),
        "total": round(outcome.total_cost, 6),
        "design_time": round(outcome.design_time, 6),
    }
