"""Deterministic, seeded fault injection for the chaos test suite.

Fault tolerance that is only exercised when real hardware misbehaves
is fault tolerance that rots.  This module lets the test suite (and
only the test suite) inject faults *on purpose* at deterministic
points: kill worker processes at a chosen task, delay a lineage,
raise inside an evaluator, or tear the serve journal's tail mid-write.

A **fault plan** is a seed plus a list of operation records:

``{"op": "kill",  "scope": "pool",    "index": 2, "attempt": 0}``
    The worker running pool task 2 (first attempt) dies hard
    (``os._exit``) — exercises crash detection + shard re-dispatch.
``{"op": "raise", "scope": "pool",    "index": 1, "attempt": 0}``
    The evaluator raises on task 1's first attempt — exercises
    retry-on-exception.
``{"op": "delay", "scope": "pool",    "index": 0, "seconds": 0.1}``
    Sleep before running the task — exercises scheduling races.
``{"op": "delay", "scope": "serve",   "lineage": 1, "seconds": 0.2}``
    Sleep before a serve job's lineage (``"lineage": null`` = every
    lineage) — drives deterministic timeouts and SIGKILL windows.
``{"op": "torn-tail", "scope": "journal", "at": 3, "fraction": 0.5}``
    The journal's 4th append writes only half its bytes and the
    journal goes dead — simulates a crash mid-``write``.
``{"op": "evict", "scope": "search", "at_node": 50, "keep": 4}``
    From search node 50 on, force the capped frontiers down to 4 open
    entries (tighter of this and the explorer's own ``max_open``) —
    exercises worst-bound eviction and proof-floor accounting without
    needing a problem big enough to overflow a real cap.
``{"op": "oom", "scope": "search", "at_node": 50}``
    Raise :class:`MemoryError` at the frontier hook of node 50 — the
    search answers by shedding the worst half of the open frontier,
    exactly its degraded-mode response to real allocation failure.

Plans are activated either in-process via :func:`install` (the module
global is fork-inherited, so pool workers see it) or through the
``REPRO_FAULTS`` environment variable holding the plan as JSON (for
daemon subprocesses).  Matching is by explicit indices — **never** by
timing or randomness — so a chaos test replays the identical failure
every run; the ``seed`` field keys any jitter a hook wants to apply.

Production code paths call the ``on_*`` hooks unconditionally; with no
plan installed they return immediately (one dict lookup), so the
instrumentation is free when faults are off.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Environment variable holding a JSON fault plan (test-only).
ENV_VAR = "REPRO_FAULTS"

_VALID_OPS = frozenset({"kill", "raise", "delay", "torn-tail", "evict", "oom"})
_VALID_SCOPES = frozenset({"pool", "serve", "journal", "search"})


class FaultInjected(RuntimeError):
    """An exception raised on purpose by a ``raise`` fault op."""


@dataclass
class FaultPlan:
    """A seeded, deterministic list of fault operations."""

    seed: int = 0
    ops: List[Dict[str, object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for op in self.ops:
            kind = op.get("op")
            if kind not in _VALID_OPS:
                raise ValueError(f"unknown fault op {kind!r}")
            scope = op.get("scope")
            if scope not in _VALID_SCOPES:
                raise ValueError(f"unknown fault scope {scope!r}")

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        return cls(
            seed=int(payload.get("seed", 0)),
            ops=list(payload.get("ops", [])),
        )

    def to_json(self) -> str:
        return json.dumps({"seed": self.seed, "ops": self.ops})

    def matching(self, scope: str, **keys: object):
        """The ops of ``scope`` whose keys match (absent key = any)."""
        for op in self.ops:
            if op.get("scope") != scope:
                continue
            if all(
                op.get(name) is None or op.get(name) == value
                for name, value in keys.items()
            ):
                yield op


#: The installed plan.  ``_UNSET`` means "not resolved yet": the first
#: hook call falls back to parsing :data:`ENV_VAR`.  Fork-started
#: workers inherit whichever is set, so one :func:`install` covers the
#: whole process tree on Linux; spawned daemons use the env var.
_UNSET = object()
_plan: object = _UNSET

#: Journal tear ops that already fired (they are one-shot by nature:
#: the torn append kills the journal).
_fired: set = set()


def install(plan: Optional[FaultPlan]) -> None:
    """Install a fault plan for this process (and its forks)."""
    global _plan
    _plan = plan
    _fired.clear()


def clear() -> None:
    """Remove any installed plan and re-arm env resolution."""
    global _plan
    _plan = _UNSET
    _fired.clear()


def active() -> Optional[FaultPlan]:
    """The currently active plan, resolving the env var lazily."""
    global _plan
    if _plan is _UNSET:
        text = os.environ.get(ENV_VAR)
        _plan = FaultPlan.from_json(text) if text else None
    return _plan  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Hooks (called unconditionally by production code)
# ----------------------------------------------------------------------
def on_pool_task(index: int, attempt: int) -> None:
    """Pool-worker hook, called before running task ``index``.

    ``delay`` sleeps, ``raise`` raises :class:`FaultInjected` (caught
    and surfaced like any evaluator error), ``kill`` exits the worker
    process hard — no cleanup, no goodbye message — which is exactly
    what a segfault or OOM kill looks like to the supervisor.
    """
    plan = active()
    if plan is None:
        return
    for op in plan.matching("pool", index=index, attempt=attempt):
        kind = op["op"]
        if kind == "delay":
            time.sleep(float(op.get("seconds", 0.01)))
        elif kind == "raise":
            raise FaultInjected(
                str(
                    op.get(
                        "message",
                        f"injected evaluator fault at task {index}",
                    )
                )
            )
        elif kind == "kill":
            os._exit(int(op.get("exitcode", 137)))


def on_serve_lineage(lineage_index: int) -> None:
    """Serve-engine hook, called before running one job lineage."""
    plan = active()
    if plan is None:
        return
    for op in plan.matching("serve", lineage=lineage_index):
        if op["op"] == "delay":
            time.sleep(float(op.get("seconds", 0.01)))


def on_search_frontier(nodes: int) -> Optional[int]:
    """Search hook, called at every capped-frontier expansion.

    Returns an extra frontier cap to apply at this expansion (the
    caller takes the tighter of this and its own ``max_open``), or
    ``None`` to leave the frontier alone.  ``evict`` ops force a cap
    once the node counter reaches ``at_node`` (absent = always);
    ``oom`` ops raise :class:`MemoryError` exactly once when the
    counter reaches or passes ``at_node`` — callers treat that as a
    real allocation failure and shed frontier mass.
    """
    plan = active()
    if plan is None:
        return None
    cap: Optional[int] = None
    for position, op in enumerate(plan.ops):
        if op.get("scope") != "search":
            continue
        kind = op.get("op")
        at_node = op.get("at_node")
        if at_node is not None and nodes < int(at_node):  # type: ignore[arg-type]
            continue
        if kind == "evict":
            keep = int(op.get("keep", 1))  # type: ignore[arg-type]
            if cap is None or keep < cap:
                cap = max(1, keep)
        elif kind == "oom":
            if position in _fired:
                continue
            _fired.add(position)
            raise MemoryError(
                f"injected allocation failure at search node {nodes}"
            )
    return cap


def journal_tear(append_index: int) -> Optional[float]:
    """Journal hook: fraction of bytes to write for this append.

    Returns ``None`` for a normal append, or a fraction in ``(0, 1)``
    meaning "write only this much of the record, then go dead" —
    the on-disk result is exactly a crash between ``write`` and
    ``fsync``.  Each tear op fires at most once.
    """
    plan = active()
    if plan is None:
        return None
    for position, op in enumerate(plan.ops):
        if op.get("scope") != "journal" or op.get("op") != "torn-tail":
            continue
        if op.get("at") is not None and op.get("at") != append_index:
            continue
        if position in _fired:
            continue
        _fired.add(position)
        return float(op.get("fraction", 0.5))
    return None
