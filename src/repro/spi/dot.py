"""Graphviz DOT export for SPI graphs (and variant graphs).

The paper's figures are model diagrams; this module regenerates them as
DOT text so `dot -Tpng` can render the same pictures.  Processes are
drawn as boxes, channels as ellipses (registers double-lined), virtual
elements dashed, and — when exporting a variant graph — interfaces as
octagons containing their cluster alternatives as subgraph clusters.
"""

from __future__ import annotations

from typing import List, Optional

from .graph import ModelGraph


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def graph_to_dot(graph: ModelGraph, title: Optional[str] = None) -> str:
    """Render a plain model graph as DOT text."""
    lines: List[str] = [f"digraph {_quote(title or graph.name)} {{"]
    lines.append("  rankdir=LR;")
    for name, process in sorted(graph.processes.items()):
        style = ' style="dashed"' if process.virtual else ""
        label = name
        if len(process.modes) > 1:
            label = f"{name}\\n({len(process.modes)} modes)"
        lines.append(
            f"  {_quote(name)} [shape=box label={_quote(label)}{style}];"
        )
    for name, channel in sorted(graph.channels.items()):
        peripheries = ' peripheries=2' if channel.kind.value == "register" else ""
        style = ' style="dashed"' if channel.virtual else ""
        lines.append(
            f"  {_quote(name)} [shape=ellipse{peripheries}{style}];"
        )
    for source, target in graph.edges():
        lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def variant_graph_to_dot(vgraph, title: Optional[str] = None) -> str:
    """Render a variant graph: base elements plus interface clusters.

    Accepts a :class:`repro.variants.vgraph.VariantGraph`; typed loosely
    to keep :mod:`repro.spi` free of upward dependencies.
    """
    base = vgraph.base
    lines: List[str] = [f"digraph {_quote(title or vgraph.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  compound=true;")
    for name, process in sorted(base.processes.items()):
        style = ' style="dashed"' if process.virtual else ""
        lines.append(f"  {_quote(name)} [shape=box{style}];")
    for name, channel in sorted(base.channels.items()):
        peripheries = ' peripheries=2' if channel.kind.value == "register" else ""
        lines.append(f"  {_quote(name)} [shape=ellipse{peripheries}];")
    for source, target in base.edges():
        lines.append(f"  {_quote(source)} -> {_quote(target)};")

    for iface_name, interface in sorted(vgraph.interfaces.items()):
        lines.append(f"  subgraph cluster_{iface_name} {{")
        lines.append(f"    label={_quote('interface ' + iface_name)};")
        lines.append("    style=dashed;")
        anchor = f"{iface_name}__anchor"
        lines.append(
            f"    {_quote(anchor)} [shape=octagon label={_quote(iface_name)}];"
        )
        for cluster_name, cluster in sorted(interface.clusters.items()):
            sub = f"cluster_{iface_name}_{cluster_name}"
            lines.append(f"    subgraph {sub} {{")
            lines.append(f"      label={_quote('variant ' + cluster_name)};")
            lines.append("      style=solid;")
            for pname in sorted(cluster.graph.processes):
                node = f"{iface_name}.{cluster_name}.{pname}"
                lines.append(f"      {_quote(node)} [shape=box];")
            for cname in sorted(cluster.graph.channels):
                node = f"{iface_name}.{cluster_name}.{cname}"
                lines.append(f"      {_quote(node)} [shape=ellipse];")
            for source, target in cluster.graph.edges():
                s = f"{iface_name}.{cluster_name}.{source}"
                t = f"{iface_name}.{cluster_name}.{target}"
                lines.append(f"      {_quote(s)} -> {_quote(t)};")
            lines.append("    }")
        lines.append("  }")
        for port, channel in sorted(vgraph.port_bindings(iface_name).items()):
            if vgraph.is_input_port(iface_name, port):
                lines.append(f"  {_quote(channel)} -> {_quote(anchor)};")
            else:
                lines.append(f"  {_quote(anchor)} -> {_quote(channel)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
