"""Periodic RTOS task models → SPI.

A periodic task releases a job every ``period`` time units; the job
executes between ``bcet`` and ``wcet`` and must finish within
``deadline`` of its release.  The SPI embedding (paper §2 lists "real
time operating system's process models" among the captured models):

* each task becomes a process with latency interval ``[bcet, wcet]``,
* job releases are tokens on an activation queue written by a virtual
  periodic timer source,
* the deadline becomes a :class:`repro.spi.timing.DeadlineConstraint`
  on the task process (checked constructively, no simulation needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ...errors import ModelError
from ..builder import GraphBuilder
from ..graph import ModelGraph
from ..timing import DeadlineConstraint
from ..virtuality import source


@dataclass(frozen=True)
class PeriodicTask:
    """One periodic task with execution-time bounds and a deadline."""

    name: str
    period: float
    wcet: float
    bcet: float = 0.0
    deadline: float = 0.0  # 0 means implicit deadline (= period)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be non-empty")
        if self.period <= 0:
            raise ModelError(f"task {self.name!r}: period must be positive")
        if not (0 <= self.bcet <= self.wcet):
            raise ModelError(
                f"task {self.name!r}: need 0 <= bcet <= wcet, "
                f"got bcet={self.bcet}, wcet={self.wcet}"
            )
        if self.deadline < 0:
            raise ModelError(f"task {self.name!r}: deadline must be >= 0")

    @property
    def effective_deadline(self) -> float:
        """Deadline, defaulting to the period when not given."""
        return self.deadline if self.deadline > 0 else self.period

    @property
    def utilization(self) -> float:
        """The task's processor share ``wcet / period``."""
        return self.wcet / self.period


def task_set_to_spi(
    tasks: Sequence[PeriodicTask], name: str = "taskset"
) -> Tuple[ModelGraph, List[DeadlineConstraint]]:
    """Embed a task set as an SPI graph plus deadline constraints.

    Each task gets a virtual timer process ``<task>__timer`` releasing
    one token per period on queue ``<task>__release``; the task process
    consumes one release token per execution.
    """
    if not tasks:
        raise ModelError("task set must not be empty")
    names = [task.name for task in tasks]
    if len(set(names)) != len(names):
        raise ModelError("task names must be unique")

    from ..intervals import Interval

    builder = GraphBuilder(name)
    constraints: List[DeadlineConstraint] = []
    for task in tasks:
        release = f"{task.name}__release"
        builder.queue(release)
        builder.process(
            source(
                f"{task.name}__timer",
                release,
                period=task.period,
            )
        )
        builder.simple(
            task.name,
            latency=Interval(task.bcet, task.wcet),
            consumes={release: 1},
        )
        constraints.append(
            DeadlineConstraint(task.name, task.effective_deadline)
        )
    return builder.build(validate=False), constraints


def total_utilization(tasks: Sequence[PeriodicTask]) -> float:
    """Sum of task utilizations — the classical feasibility headline."""
    return sum(task.utilization for task in tasks)
