"""State machines → SPI.

A (Mealy-style) finite state machine reacts to an input event by
emitting an output event and moving to a successor state.  The SPI
embedding mirrors the paper's own treatment of stateful control
(Figure 4's ``PControl`` keeps "state information from one execution to
the next" by sending tokens to itself via a feedback channel):

* the current state is a tag on a token in a **self-loop queue**;
* each transition becomes a process mode consuming one input token and
  one state token, producing the output token (tagged with the
  transition's output symbol) and the successor state token;
* the activation function tests input symbol and state tag together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...errors import ModelError
from ..activation import ActivationFunction, ActivationRule
from ..builder import GraphBuilder
from ..modes import ProcessMode
from ..predicates import HasTag, NumAvailable
from ..process import Process
from ..tags import TagSet
from ..tokens import Token


@dataclass(frozen=True)
class Transition:
    """One FSM transition: (state, input symbol) -> (next state, output)."""

    source: str
    input_symbol: str
    target: str
    output_symbol: Optional[str] = None
    latency: float = 0.0

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ModelError("transition states must be non-empty")
        if not self.input_symbol:
            raise ModelError("transition input symbol must be non-empty")
        if self.latency < 0:
            raise ModelError("transition latency must be non-negative")


@dataclass(frozen=True)
class StateMachine:
    """A deterministic FSM over tag alphabets."""

    name: str
    initial_state: str
    transitions: Tuple[Transition, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "transitions", tuple(self.transitions))
        if not self.transitions:
            raise ModelError(f"FSM {self.name!r} needs at least one transition")
        states = {t.source for t in self.transitions} | {
            t.target for t in self.transitions
        }
        if self.initial_state not in states:
            raise ModelError(
                f"FSM {self.name!r}: initial state {self.initial_state!r} "
                f"not used by any transition"
            )
        keys = [(t.source, t.input_symbol) for t in self.transitions]
        if len(set(keys)) != len(keys):
            raise ModelError(
                f"FSM {self.name!r} is nondeterministic: duplicate "
                f"(state, input) pairs"
            )

    @property
    def states(self) -> Tuple[str, ...]:
        """All states, sorted."""
        names = {t.source for t in self.transitions} | {
            t.target for t in self.transitions
        }
        return tuple(sorted(names))


def fsm_to_spi(
    fsm: StateMachine,
    input_channel: str,
    output_channel: Optional[str] = None,
) -> Tuple[Process, str, Token]:
    """Embed an FSM as an SPI process plus its state loop.

    Returns ``(process, state_loop_channel, initial_state_token)``.
    Input symbols are expected as tags on ``input_channel`` tokens;
    output symbols appear as tags on ``output_channel`` tokens.
    """
    loop = f"{fsm.name}__state"
    modes: List[ProcessMode] = []
    rule_list: List[ActivationRule] = []
    for index, transition in enumerate(fsm.transitions):
        produces: Dict[str, int] = {loop: 1}
        out_tags: Dict[str, TagSet] = {
            loop: TagSet.of(f"state:{transition.target}")
        }
        if output_channel and transition.output_symbol:
            produces[output_channel] = 1
            out_tags[output_channel] = TagSet.of(transition.output_symbol)
        mode = ProcessMode(
            name=f"t{index}_{transition.source}_{transition.input_symbol}",
            latency=transition.latency,
            consumes={input_channel: 1, loop: 1},
            produces=produces,
            out_tags=out_tags,
        )
        modes.append(mode)
        predicate = (
            NumAvailable(input_channel, 1)
            & HasTag(input_channel, transition.input_symbol)
            & HasTag(loop, f"state:{transition.source}")
        )
        rule_list.append(
            ActivationRule(name=f"a{index}", predicate=predicate, mode=mode.name)
        )
    process = Process(
        name=fsm.name,
        modes={mode.name: mode for mode in modes},
        activation=ActivationFunction(tuple(rule_list)),
    )
    initial = Token(tags=TagSet.of(f"state:{fsm.initial_state}"))
    return process, loop, initial


def attach_fsm(
    builder: GraphBuilder,
    fsm: StateMachine,
    input_channel: str,
    output_channel: Optional[str] = None,
) -> Process:
    """Declare the FSM's state loop on ``builder`` and add the process."""
    process, loop, initial = fsm_to_spi(fsm, input_channel, output_channel)
    builder.queue(loop, initial_tokens=[initial])
    builder.process(process)
    return process
