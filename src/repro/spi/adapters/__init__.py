"""Adapters embedding other models of computation into SPI.

The paper's prerequisite for generality is that "SPI can be used as a
common representation for very different models of computation" (paper
§1, citing refs [8, 9]).  These adapters substantiate that claim for the
four families the paper names — static and dynamic data flow, real-time
operating system process models, and state-based models:

* :mod:`~repro.spi.adapters.sdf` — static (synchronous) dataflow;
* :mod:`~repro.spi.adapters.csdf` — cyclo-static dataflow, encoded with
  phase tags on a self-loop channel;
* :mod:`~repro.spi.adapters.fsm` — finite state machines, encoded with
  state tags on a self-loop register;
* :mod:`~repro.spi.adapters.tasks` — periodic RTOS task sets with
  timer-driven virtual sources and deadline constraints.
"""

from .bdf import IfThenElse, if_then_else, select_actor, switch_actor
from .csdf import CsdfActor, csdf_actor_to_spi
from .fsm import StateMachine, Transition, fsm_to_spi
from .rtl import Netlist, RtlBlock, RtlRegister, rtl_to_spi
from .sdf import SdfActor, SdfEdge, SdfGraph, sdf_to_spi
from .tasks import PeriodicTask, task_set_to_spi

__all__ = [
    "CsdfActor",
    "IfThenElse",
    "Netlist",
    "PeriodicTask",
    "RtlBlock",
    "RtlRegister",
    "SdfActor",
    "SdfEdge",
    "SdfGraph",
    "StateMachine",
    "Transition",
    "csdf_actor_to_spi",
    "fsm_to_spi",
    "if_then_else",
    "rtl_to_spi",
    "sdf_to_spi",
    "select_actor",
    "switch_actor",
    "task_set_to_spi",
]
