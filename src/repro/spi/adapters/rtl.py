"""Clocked register-transfer netlists → SPI.

The paper lists "hardware description languages" among the models SPI
captures (§2).  The structural essence of a synthesizable HDL design is
a clocked netlist: combinational blocks between registers, advanced by
a global clock.  The SPI embedding:

* every **register** becomes an SPI register channel (destructive
  write — exactly a hardware register's behavior) initialized with its
  reset value tag;
* every **combinational block** becomes a process that reads its input
  registers (non-destructively) and writes its output register, with
  the block's propagation delay as latency;
* the **clock** becomes a virtual periodic source whose tick tokens
  gate every block, so all blocks evaluate once per cycle.

This gives cycle-accurate dataflow at the abstraction level SPI cares
about (amounts and timing, not values); values can still be traced
through tags if a block declares output tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ModelError
from ..builder import GraphBuilder
from ..graph import ModelGraph
from ..tags import TagSet
from ..tokens import Token
from ..virtuality import source


@dataclass(frozen=True)
class RtlRegister:
    """A clocked register with a symbolic reset value."""

    name: str
    reset_value: str = "reset"

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("register name must be non-empty")


@dataclass(frozen=True)
class RtlBlock:
    """A combinational block between registers.

    ``reads`` are source registers, ``writes`` is the single target
    register (single-assignment form; fan-in is free, fan-out happens
    by reading a register from several blocks).
    """

    name: str
    reads: Tuple[str, ...]
    writes: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("block name must be non-empty")
        object.__setattr__(self, "reads", tuple(self.reads))
        if not self.writes:
            raise ModelError(f"block {self.name!r} must write a register")
        if self.delay < 0:
            raise ModelError(f"block {self.name!r}: delay must be >= 0")


@dataclass
class Netlist:
    """A complete clocked design."""

    name: str = "rtl"
    clock_period: float = 10.0
    registers: Dict[str, RtlRegister] = field(default_factory=dict)
    blocks: Dict[str, RtlBlock] = field(default_factory=dict)

    def register(self, name: str, reset_value: str = "reset") -> RtlRegister:
        """Declare a register."""
        if name in self.registers:
            raise ModelError(f"register {name!r} already declared")
        created = RtlRegister(name, reset_value)
        self.registers[name] = created
        return created

    def block(
        self,
        name: str,
        reads: Sequence[str],
        writes: str,
        delay: float = 0.0,
    ) -> RtlBlock:
        """Declare a combinational block between declared registers."""
        if name in self.blocks:
            raise ModelError(f"block {name!r} already declared")
        for reg in list(reads) + [writes]:
            if reg not in self.registers:
                raise ModelError(
                    f"block {name!r} references unknown register {reg!r}"
                )
        writers = [b for b in self.blocks.values() if b.writes == writes]
        if writers:
            raise ModelError(
                f"register {writes!r} already written by "
                f"{writers[0].name!r} (single-assignment form)"
            )
        created = RtlBlock(name, tuple(reads), writes, delay)
        self.blocks[name] = created
        return created

    def validate_timing(self) -> List[str]:
        """Blocks whose propagation delay exceeds the clock period."""
        return [
            block.name
            for block in self.blocks.values()
            if block.delay > self.clock_period
        ]


def rtl_to_spi(netlist: Netlist, cycles: Optional[int] = None) -> ModelGraph:
    """Embed a clocked netlist into an SPI model graph.

    ``cycles`` bounds the clock source (None = free-running).  Each
    block gets a private clock-tick queue, and a register read by
    several blocks is materialized as one shadow register channel per
    reader (SPI channels are point-to-point); the writing block updates
    every shadow in the same execution, so all readers observe the same
    value each cycle.
    """
    if not netlist.blocks:
        raise ModelError("netlist has no blocks")
    too_slow = netlist.validate_timing()
    if too_slow:
        raise ModelError(
            f"blocks {too_slow} exceed the clock period "
            f"{netlist.clock_period}"
        )
    builder = GraphBuilder(netlist.name)

    # Which blocks read each register; fan-out > 1 needs shadows.
    readers: Dict[str, List[str]] = {name: [] for name in netlist.registers}
    for block in netlist.blocks.values():
        for reg in block.reads:
            readers[reg].append(block.name)

    def channel_of(reg: str, reader: Optional[str]) -> str:
        if len(readers[reg]) <= 1:
            return reg
        return f"{reg}__to_{reader}" if reader else reg

    # Registers: SPI register channels with their reset token (one
    # shadow per reader when fanned out).
    for reg in netlist.registers.values():
        reset = [Token(tags=TagSet.of(reg.reset_value))]
        if len(readers[reg.name]) <= 1:
            builder.register(reg.name, initial_tokens=list(reset))
        else:
            for reader in readers[reg.name]:
                builder.register(
                    channel_of(reg.name, reader), initial_tokens=list(reset)
                )

    # Clock: one virtual periodic source per block (point-to-point).
    for block_name in netlist.blocks:
        builder.queue(f"{block_name}__clk", capacity=1)
        builder.process(
            source(
                f"{block_name}__clock",
                f"{block_name}__clk",
                period=netlist.clock_period,
                tags="tick",
                max_firings=cycles,
            )
        )

    # Combinational blocks: read registers, write the target register
    # (all its shadows at once when fanned out).
    for block in netlist.blocks.values():
        consumes = {f"{block.name}__clk": 1}
        for reg in block.reads:
            # register read is non-destructive
            consumes[channel_of(reg, block.name)] = 1
        produces = {}
        target_readers = readers[block.writes]
        if len(target_readers) <= 1:
            produces[block.writes] = 1
        else:
            for reader in target_readers:
                produces[channel_of(block.writes, reader)] = 1
        builder.simple(
            block.name,
            latency=block.delay,
            consumes=consumes,
            produces=produces,
        )
    return builder.build(validate=False)
