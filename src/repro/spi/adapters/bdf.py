"""Boolean (dynamic) dataflow → SPI.

The paper claims SPI captures "static **and dynamic** data flow
models" (§2).  The canonical dynamic-dataflow primitives are the
Boolean dataflow SWITCH and SELECT actors (Buck/Lee): a control token
steers each data token to one of two branches (SWITCH) or picks which
branch to read from (SELECT).  Their data-dependent rates are exactly
what SPI modes + tag predicates express:

* the control token carries a ``'true'`` / ``'false'`` tag,
* SWITCH has two modes (route-to-true / route-to-false) keyed on the
  control tag,
* SELECT mirrors them on the consumption side.

:func:`if_then_else` assembles the classic conditional schema
(switch → branch actors → select) as a reusable subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ModelError
from ..activation import ActivationFunction, ActivationRule
from ..builder import GraphBuilder
from ..modes import ProcessMode
from ..predicates import HasTag, NumAvailable
from ..process import Process

#: Tags expected on control tokens.
TRUE_TAG = "true"
FALSE_TAG = "false"


def switch_actor(
    name: str,
    control: str,
    data_in: str,
    out_true: str,
    out_false: str,
    latency: float = 0.0,
) -> Process:
    """The BDF SWITCH: route one data token per control token."""
    mode_true = ProcessMode(
        name="route_true",
        latency=latency,
        consumes={control: 1, data_in: 1},
        produces={out_true: 1},
        pass_tags=(out_true,),
    )
    mode_false = ProcessMode(
        name="route_false",
        latency=latency,
        consumes={control: 1, data_in: 1},
        produces={out_false: 1},
        pass_tags=(out_false,),
    )
    activation = ActivationFunction.of(
        ActivationRule(
            "r_true",
            NumAvailable(control, 1)
            & HasTag(control, TRUE_TAG)
            & NumAvailable(data_in, 1),
            "route_true",
        ),
        ActivationRule(
            "r_false",
            NumAvailable(control, 1)
            & HasTag(control, FALSE_TAG)
            & NumAvailable(data_in, 1),
            "route_false",
        ),
    )
    return Process(
        name=name,
        modes={"route_true": mode_true, "route_false": mode_false},
        activation=activation,
    )


def select_actor(
    name: str,
    control: str,
    in_true: str,
    in_false: str,
    data_out: str,
    latency: float = 0.0,
) -> Process:
    """The BDF SELECT: read from the branch named by the control token."""
    mode_true = ProcessMode(
        name="take_true",
        latency=latency,
        consumes={control: 1, in_true: 1},
        produces={data_out: 1},
        pass_tags=(data_out,),
    )
    mode_false = ProcessMode(
        name="take_false",
        latency=latency,
        consumes={control: 1, in_false: 1},
        produces={data_out: 1},
        pass_tags=(data_out,),
    )
    activation = ActivationFunction.of(
        ActivationRule(
            "r_true",
            NumAvailable(control, 1)
            & HasTag(control, TRUE_TAG)
            & NumAvailable(in_true, 1),
            "take_true",
        ),
        ActivationRule(
            "r_false",
            NumAvailable(control, 1)
            & HasTag(control, FALSE_TAG)
            & NumAvailable(in_false, 1),
            "take_false",
        ),
    )
    return Process(
        name=name,
        modes={"take_true": mode_true, "take_false": mode_false},
        activation=activation,
    )


@dataclass(frozen=True)
class IfThenElse:
    """Handles of an assembled conditional subgraph."""

    switch: str
    select: str
    then_branch: str
    else_branch: str


def if_then_else(
    builder: GraphBuilder,
    name: str,
    control: str,
    data_in: str,
    data_out: str,
    then_latency: float = 1.0,
    else_latency: float = 1.0,
) -> IfThenElse:
    """Assemble switch -> {then|else} -> select on ``builder``.

    ``control`` must be declared twice-readable — BDF duplicates the
    control stream to switch and select; here the caller provides two
    channels named ``<control>_sw`` and ``<control>_sel`` (both must be
    declared) carrying identical control tokens.
    """
    control_sw = f"{control}_sw"
    control_sel = f"{control}_sel"
    for channel in (control_sw, control_sel, data_in, data_out):
        if not builder.graph.has_channel(channel):
            raise ModelError(
                f"if_then_else requires channel {channel!r} to be declared"
            )
    then_in = f"{name}__then_in"
    then_out = f"{name}__then_out"
    else_in = f"{name}__else_in"
    else_out = f"{name}__else_out"
    for channel in (then_in, then_out, else_in, else_out):
        builder.queue(channel)

    builder.process(
        switch_actor(f"{name}.switch", control_sw, data_in, then_in, else_in)
    )
    builder.simple(
        f"{name}.then",
        latency=then_latency,
        consumes={then_in: 1},
        produces={then_out: 1},
        pass_tags=(then_out,),
    )
    builder.simple(
        f"{name}.else",
        latency=else_latency,
        consumes={else_in: 1},
        produces={else_out: 1},
        pass_tags=(else_out,),
    )
    builder.process(
        select_actor(
            f"{name}.select", control_sel, then_out, else_out, data_out
        )
    )
    return IfThenElse(
        switch=f"{name}.switch",
        select=f"{name}.select",
        then_branch=f"{name}.then",
        else_branch=f"{name}.else",
    )
