"""Static (synchronous) dataflow → SPI.

An SDF actor consumes and produces fixed token amounts per firing; an
SDF edge is a FIFO with optional initial tokens.  The embedding into
SPI is direct: every actor becomes a determinate single-mode process,
every edge a queue channel with the same initial tokens (paper §2 notes
SPI captures "static and dynamic data flow models").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...errors import ModelError
from ..builder import GraphBuilder
from ..graph import ModelGraph
from ..tokens import make_tokens


@dataclass(frozen=True)
class SdfActor:
    """An SDF actor: fixed rates, fixed execution time."""

    name: str
    execution_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("SDF actor name must be non-empty")
        if self.execution_time < 0:
            raise ModelError("SDF execution time must be non-negative")


@dataclass(frozen=True)
class SdfEdge:
    """A FIFO edge ``source --produce/consume--> target``."""

    name: str
    source: str
    target: str
    produce: int
    consume: int
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if self.produce < 1 or self.consume < 1:
            raise ModelError(
                f"SDF edge {self.name!r}: rates must be >= 1"
            )
        if self.initial_tokens < 0:
            raise ModelError(
                f"SDF edge {self.name!r}: initial tokens must be >= 0"
            )


@dataclass
class SdfGraph:
    """A complete SDF graph (actors + edges)."""

    name: str = "sdf"
    actors: Dict[str, SdfActor] = field(default_factory=dict)
    edges: List[SdfEdge] = field(default_factory=list)

    def actor(self, name: str, execution_time: float = 0.0) -> SdfActor:
        """Declare an actor."""
        if name in self.actors:
            raise ModelError(f"SDF actor {name!r} already declared")
        created = SdfActor(name, execution_time)
        self.actors[name] = created
        return created

    def edge(
        self,
        source: str,
        target: str,
        produce: int,
        consume: int,
        initial_tokens: int = 0,
        name: Optional[str] = None,
    ) -> SdfEdge:
        """Declare an edge between two declared actors."""
        for endpoint in (source, target):
            if endpoint not in self.actors:
                raise ModelError(f"SDF edge references unknown actor {endpoint!r}")
        edge_name = name or f"e_{source}_{target}_{len(self.edges)}"
        created = SdfEdge(
            edge_name, source, target, produce, consume, initial_tokens
        )
        self.edges.append(created)
        return created


def sdf_to_spi(sdf: SdfGraph) -> ModelGraph:
    """Embed an SDF graph into an SPI model graph.

    The result is in SPI's determinate single-mode subset, so
    :func:`repro.spi.analysis.balance_equations` recovers exactly the
    SDF repetition vector — the property tests pin this down.
    """
    builder = GraphBuilder(sdf.name)
    for edge in sdf.edges:
        builder.queue(
            edge.name, initial_tokens=make_tokens(edge.initial_tokens)
        )

    consumes: Dict[str, Dict[str, int]] = {name: {} for name in sdf.actors}
    produces: Dict[str, Dict[str, int]] = {name: {} for name in sdf.actors}
    for edge in sdf.edges:
        produces[edge.source][edge.name] = edge.produce
        consumes[edge.target][edge.name] = edge.consume

    for name, actor in sdf.actors.items():
        builder.simple(
            name,
            latency=actor.execution_time,
            consumes=consumes[name],
            produces=produces[name],
        )
    # Environment ends (pure sources/sinks) are legitimate in SDF;
    # validation of dangling channels is therefore skipped here.
    return builder.build(validate=False)
