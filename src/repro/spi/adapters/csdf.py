"""Cyclo-static dataflow → SPI.

A CSDF actor cycles deterministically through *phases* with per-phase
rates.  SPI has no built-in phase counter, but the paper's tag
machinery expresses one naturally: the actor carries a **self-loop
queue** holding a single token tagged with the current phase; each
phase is a process mode whose activation rule tests the phase tag, and
each mode writes the successor phase's tag back onto the loop.

This encoding exercises exactly the mode/tag features the paper builds
variant selection on, which is why it is kept as a library adapter
rather than test-only code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ...errors import ModelError
from ..activation import ActivationFunction, ActivationRule
from ..builder import GraphBuilder
from ..modes import ProcessMode
from ..predicates import HasTag, NumAvailable
from ..process import Process
from ..tags import TagSet
from ..tokens import Token


@dataclass(frozen=True)
class CsdfActor:
    """A cyclo-static actor.

    ``consume_phases`` / ``produce_phases`` map channel name to the
    per-phase rate sequence; all sequences must share one length (the
    number of phases).  ``execution_times`` optionally gives a per-phase
    latency.
    """

    name: str
    consume_phases: Mapping[str, Sequence[int]]
    produce_phases: Mapping[str, Sequence[int]]
    execution_times: Sequence[float] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("CSDF actor name must be non-empty")
        lengths = {
            len(seq)
            for seq in list(self.consume_phases.values())
            + list(self.produce_phases.values())
        }
        if self.execution_times:
            lengths.add(len(self.execution_times))
        if len(lengths) != 1:
            raise ModelError(
                f"CSDF actor {self.name!r}: all phase sequences must have "
                f"the same length, got lengths {sorted(lengths)}"
            )
        if next(iter(lengths)) < 1:
            raise ModelError(
                f"CSDF actor {self.name!r}: needs at least one phase"
            )

    @property
    def phase_count(self) -> int:
        """Number of phases in the actor's cycle."""
        for seq in self.consume_phases.values():
            return len(seq)
        for seq in self.produce_phases.values():
            return len(seq)
        return len(self.execution_times)


def csdf_actor_to_spi(actor: CsdfActor) -> Tuple[Process, str, Token]:
    """Embed one CSDF actor as an SPI process plus its phase loop.

    Returns ``(process, loop_channel_name, initial_phase_token)``.  The
    caller (or :func:`attach_csdf_actor`) must declare the loop channel
    as a queue initialized with the returned token and wire it as both
    input and output of the process.
    """
    loop = f"{actor.name}__phase"
    phases = actor.phase_count
    modes: List[ProcessMode] = []
    rule_list: List[ActivationRule] = []
    for index in range(phases):
        tag = f"phase{index}"
        next_tag = f"phase{(index + 1) % phases}"
        consumes: Dict[str, int] = {loop: 1}
        produces: Dict[str, int] = {loop: 1}
        for channel, rates in actor.consume_phases.items():
            if rates[index]:
                consumes[channel] = rates[index]
        for channel, rates in actor.produce_phases.items():
            if rates[index]:
                produces[channel] = rates[index]
        latency = (
            actor.execution_times[index] if actor.execution_times else 0.0
        )
        mode = ProcessMode(
            name=f"m{index}",
            latency=latency,
            consumes=consumes,
            produces=produces,
            out_tags={loop: TagSet.of(next_tag)},
        )
        modes.append(mode)
        rule_list.append(
            ActivationRule(
                name=f"a{index}",
                predicate=NumAvailable(loop, 1) & HasTag(loop, tag),
                mode=mode.name,
            )
        )
    process = Process(
        name=actor.name,
        modes={mode.name: mode for mode in modes},
        activation=ActivationFunction(tuple(rule_list)),
    )
    initial = Token(tags=TagSet.of("phase0"))
    return process, loop, initial


def attach_csdf_actor(builder: GraphBuilder, actor: CsdfActor) -> Process:
    """Declare the actor's phase loop on ``builder`` and add the process.

    Data channels referenced by the actor's phase tables must already be
    declared on the builder.
    """
    process, loop, initial = csdf_actor_to_spi(actor)
    builder.queue(loop, initial_tokens=[initial])
    builder.process(process)
    return process
