"""Closed numeric intervals — the "property intervals" of the SPI model.

The SPI model (System Property Intervals, paper refs [8, 9]) represents
uncertain or data-dependent process behavior by *lower and upper bounds*
on the modeled quantities: communicated token amounts, execution
latencies and so on.  This module provides the single interval type used
throughout the library, together with the arithmetic needed by parameter
extraction (summing latencies along paths, scaling rates, hulling the
behavior of alternative modes).

An :class:`Interval` is closed and never empty: ``lo <= hi`` always
holds.  Point intervals (``lo == hi``) model completely determinate
parameters, such as process ``p1`` in Figure 1 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Union

from ..errors import ModelError

Number = Union[int, float]


@dataclass(frozen=True, order=False)
class Interval:
    """A closed interval ``[lo, hi]`` over the reals (or integers).

    Instances are immutable and hashable so they can be used freely in
    mode tables and as dictionary values describing per-channel rates.
    """

    lo: Number
    hi: Number

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ModelError("interval bounds must not be NaN")
        if self.lo > self.hi:
            raise ModelError(
                f"interval lower bound {self.lo} exceeds upper bound {self.hi}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: Number) -> "Interval":
        """Return the degenerate interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def zero() -> "Interval":
        """Return the point interval ``[0, 0]``."""
        return Interval(0, 0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_point(self) -> bool:
        """True if the interval pins the parameter to a single value."""
        return self.lo == self.hi

    @property
    def width(self) -> Number:
        """The uncertainty ``hi - lo`` captured by this interval."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """The arithmetic center of the interval."""
        return (self.lo + self.hi) / 2

    def __contains__(self, value: object) -> bool:
        if isinstance(value, Interval):
            return self.lo <= value.lo and value.hi <= self.hi
        if isinstance(value, (int, float)):
            return self.lo <= value <= self.hi
        return NotImplemented

    def contains(self, other: "Interval") -> bool:
        """True if ``other`` lies entirely within this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one value."""
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------
    # Arithmetic — used by parameter extraction and timing analysis
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval | Number") -> "Interval":
        other = as_interval(other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def __sub__(self, other: "Interval | Number") -> "Interval":
        other = as_interval(other)
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval | Number") -> "Interval":
        other = as_interval(other)
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def hull(self, other: "Interval | Number") -> "Interval":
        """Smallest interval containing both operands.

        Hulling is how alternative process modes are merged back into a
        single abstract behavior bound (paper §2: intervals "combine many
        variants in a single abstract process").
        """
        other = as_interval(other)
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval | Number") -> "Interval | None":
        """Intersection of the two intervals, or None if disjoint."""
        other = as_interval(other)
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def scaled(self, factor: Number) -> "Interval":
        """Interval with both bounds multiplied by a non-negative factor."""
        if factor < 0:
            raise ModelError("scaling factor must be non-negative")
        return Interval(self.lo * factor, self.hi * factor)

    def clamp(self, value: Number) -> Number:
        """The closest value inside the interval to ``value``."""
        return min(max(value, self.lo), self.hi)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Number]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_point:
            return f"[{self.lo}]"
        return f"[{self.lo}, {self.hi}]"


def as_interval(value: "Interval | Number") -> Interval:
    """Coerce a bare number to a point interval.

    All mode-table entry points accept either form so determinate
    parameters (Figure 1's ``p1``) read naturally.
    """
    if isinstance(value, Interval):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ModelError(f"cannot interpret {value!r} as an interval")
    return Interval.point(value)


def hull_all(intervals) -> Interval:
    """Hull of a non-empty iterable of intervals (or numbers)."""
    iterator = iter(intervals)
    try:
        result = as_interval(next(iterator))
    except StopIteration:
        raise ModelError("hull_all requires at least one interval") from None
    for item in iterator:
        result = result.hull(as_interval(item))
    return result


def sum_all(intervals) -> Interval:
    """Interval sum of an iterable of intervals (empty sum is [0, 0])."""
    result = Interval.zero()
    for item in intervals:
        result = result + as_interval(item)
    return result
