"""Virtual processes and channels — coherent environment modeling.

SPI's *virtuality* concept (paper §2) lets the system and its
environment be expressed in the same model: environment behavior (a
camera emitting frames, a user flipping a switch, a display consuming
images) is modeled by processes and channels marked ``virtual``.
Synthesis ignores virtual elements when costing the implementation but
honors the token traffic they generate.

This module provides the canonical environment building blocks used by
the paper's examples:

* :func:`source` — a virtual producer (``PUser``, ``VIn``);
* :func:`sink` — a virtual consumer (``VOut``);
* :func:`one_shot_source` — a producer firing exactly once, which is the
  constraint the paper applies to ``PUser`` in Figure 3.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .graph import ModelGraph
from .process import Process, simple_process


def source(
    name: str,
    channel: str,
    tokens_per_firing: int = 1,
    tags: object = None,
    period: Optional[float] = None,
    max_firings: Optional[int] = None,
    latency: float = 0.0,
    release_time: float = 0.0,
) -> Process:
    """A virtual environment process producing onto one channel."""
    return simple_process(
        name,
        latency=latency,
        produces={channel: tokens_per_firing},
        out_tags={channel: tags} if tags is not None else None,
        virtual=True,
        period=period,
        max_firings=max_firings,
        release_time=release_time,
    )


def one_shot_source(
    name: str,
    channel: str,
    tokens_per_firing: int = 1,
    tags: object = None,
    latency: float = 0.0,
) -> Process:
    """A virtual producer that executes exactly once (Figure 3's PUser)."""
    return source(
        name,
        channel,
        tokens_per_firing=tokens_per_firing,
        tags=tags,
        max_firings=1,
        latency=latency,
    )


def sink(
    name: str,
    channel: str,
    tokens_per_firing: int = 1,
    latency: float = 0.0,
) -> Process:
    """A virtual environment process consuming from one channel."""
    return simple_process(
        name,
        latency=latency,
        consumes={channel: tokens_per_firing},
        virtual=True,
    )


def system_part(graph: ModelGraph) -> ModelGraph:
    """The non-virtual subgraph — what synthesis actually implements.

    Edges to/from virtual elements are dropped together with those
    elements; the remaining channels keep their declarations.
    """
    result = ModelGraph(f"{graph.name}.system")
    for name, process in graph.processes.items():
        if not process.virtual:
            result.add_process(process)
    for name, channel in graph.channels.items():
        if channel.virtual:
            continue
        writer = graph.writer_of(name)
        reader = graph.reader_of(name)
        writer_real = writer is not None and not graph.process(writer).virtual
        reader_real = reader is not None and not graph.process(reader).virtual
        if not (writer_real or reader_real):
            continue
        result.add_channel(channel)
        if writer_real:
            result.connect(writer, name)
        if reader_real:
            result.connect(name, reader)
    return result


def virtual_part(graph: ModelGraph) -> Mapping[str, Process]:
    """The virtual processes of a graph, by name."""
    return {
        name: process
        for name, process in graph.processes.items()
        if process.virtual
    }
