"""Untimed step semantics — the SPI update rules.

The SPI model's formal definition (paper refs [8, 9]) includes *update
rules* that describe how a modeling evolves: a process whose activation
function enables a mode, and whose input channels hold the tokens that
mode consumes, may execute; execution removes the consumed tokens and
adds the produced tokens (with the mode's output tags).

This module implements those rules **without time**: each call to
:meth:`StepSemantics.step` fires a maximal set of simultaneously ready
processes once.  The untimed semantics is what structural reasoning,
parameter extraction validation and the Figure 1 token-flow bench use;
the *timed* behavior (latencies, reconfiguration delays, resource
contention) lives in :mod:`repro.sim`.

Interval-valued rates are resolved through a :class:`RateResolver`
policy, making the nondeterminism explicit and reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import SimulationError
from .channels import ChannelState
from .graph import ModelGraph
from .intervals import Interval
from .modes import ProcessMode
from .process import Process
from .tokens import Token


class RateResolver:
    """Policy choosing a concrete value from an interval-valued rate.

    SPI intervals express uncertainty; executing a model requires
    committing to concrete amounts.  The built-in policies are:

    * ``lower`` / ``upper`` — always the bound (worst/best-case style),
    * ``midpoint`` — the rounded center,
    * ``random`` — uniform over the integer range, seeded for
      reproducibility.
    """

    def __init__(self, policy: str = "lower", seed: Optional[int] = None) -> None:
        if policy not in {"lower", "upper", "midpoint", "random"}:
            raise SimulationError(f"unknown rate policy {policy!r}")
        self.policy = policy
        self._rng = random.Random(seed)

    def resolve_amount(self, interval: Interval) -> int:
        """Pick a concrete token amount from ``interval``."""
        if self.policy == "lower":
            value = interval.lo
        elif self.policy == "upper":
            value = interval.hi
        elif self.policy == "midpoint":
            value = round(interval.midpoint)
        else:
            value = self._rng.randint(int(interval.lo), int(interval.hi))
        return int(value)

    def resolve_latency(self, interval: Interval) -> float:
        """Pick a concrete latency from ``interval``."""
        if self.policy == "lower":
            return float(interval.lo)
        if self.policy == "upper":
            return float(interval.hi)
        if self.policy == "midpoint":
            return float(interval.midpoint)
        return self._rng.uniform(float(interval.lo), float(interval.hi))


@dataclass
class Firing:
    """Record of one untimed process execution."""

    process: str
    mode: str
    consumed: Dict[str, int] = field(default_factory=dict)
    produced: Dict[str, int] = field(default_factory=dict)


class GraphChannelView:
    """ChannelView over the live channel states of a graph execution."""

    def __init__(self, states: Mapping[str, ChannelState]) -> None:
        self._states = states

    def available(self, channel: str) -> int:
        state = self._states.get(channel)
        return 0 if state is None else state.available()

    def first_tags(self, channel: str):
        state = self._states.get(channel)
        return None if state is None else state.first_tags()


class StepSemantics:
    """Executable untimed update rules for a model graph."""

    def __init__(
        self,
        graph: ModelGraph,
        resolver: Optional[RateResolver] = None,
        strict_activation: bool = False,
    ) -> None:
        self.graph = graph
        self.resolver = resolver or RateResolver()
        self.strict_activation = strict_activation
        self.states: Dict[str, ChannelState] = {
            name: channel.new_state()
            for name, channel in graph.channels.items()
        }
        self.view = GraphChannelView(self.states)
        self.firing_counts: Dict[str, int] = {
            name: 0 for name in graph.processes
        }
        self.history: List[Firing] = []

    # ------------------------------------------------------------------
    def ready_mode(self, process: Process) -> Optional[ProcessMode]:
        """The mode ``process`` would fire in now, or None.

        A process is ready iff (a) an activation rule is enabled, and
        (b) every input channel holds at least the mode's lower
        consumption bound (the activation condition "only ensures that
        there are enough available tokens", paper §4), and (c) its
        ``max_firings`` budget is not exhausted.
        """
        if (
            process.max_firings is not None
            and self.firing_counts[process.name] >= process.max_firings
        ):
            return None
        rule = process.activation.select(
            self.view, strict=self.strict_activation
        )
        if rule is None:
            return None
        mode = process.mode(rule.mode)
        for channel, amount in mode.consumes.items():
            state = self.states.get(channel)
            if state is None:
                raise SimulationError(
                    f"process {process.name!r} consumes from unknown "
                    f"channel {channel!r}"
                )
            if state.available() < amount.lo:
                return None
        return mode

    def fire(self, process: Process, mode: ProcessMode) -> Firing:
        """Execute one firing: consume, then produce with output tags."""
        firing = Firing(process=process.name, mode=mode.name)
        inherited = None
        for channel, amount in mode.consumes.items():
            count = self.resolver.resolve_amount(amount)
            count = min(count, self.states[channel].available())
            count = max(count, int(amount.lo))
            taken = self.states[channel].read(count)
            if mode.pass_tags:
                for token in taken:
                    inherited = (
                        token.tags
                        if inherited is None
                        else inherited | token.tags
                    )
            firing.consumed[channel] = count
        for channel, amount in mode.produces.items():
            count = self.resolver.resolve_amount(amount)
            tags = mode.tags_for(channel)
            if inherited is not None and channel in mode.pass_tags:
                tags = tags | inherited
            tokens = [
                Token(tags=tags, producer=process.name) for _ in range(count)
            ]
            self.states[channel].write(tokens)
            firing.produced[channel] = count
        self.firing_counts[process.name] += 1
        self.history.append(firing)
        return firing

    def step(self) -> List[Firing]:
        """Fire every currently ready process once (two-phase).

        Readiness is evaluated against the state at the beginning of the
        step for all processes, then all firings are applied; a process
        therefore cannot consume tokens produced within the same step,
        which keeps steps order-independent.
        """
        ready: List[Tuple[Process, ProcessMode]] = []
        for name in sorted(self.graph.processes):
            process = self.graph.process(name)
            mode = self.ready_mode(process)
            if mode is not None:
                ready.append((process, mode))
        return [self.fire(process, mode) for process, mode in ready]

    def run(self, max_steps: int = 1000) -> List[List[Firing]]:
        """Step until quiescence or ``max_steps``; returns per-step firings."""
        rounds: List[List[Firing]] = []
        for _ in range(max_steps):
            fired = self.step()
            if not fired:
                break
            rounds.append(fired)
        return rounds

    # ------------------------------------------------------------------
    def occupancy(self) -> Dict[str, int]:
        """Current token count per channel."""
        return {
            name: state.available() for name, state in self.states.items()
        }

    def total_fired(self) -> int:
        """Total number of firings so far."""
        return len(self.history)
