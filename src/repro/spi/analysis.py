"""Structural analyses over SPI model graphs.

These are the model-level checks a synthesis front-end runs before
investing in optimization:

* reachability and topological structure of the process graph,
* rate consistency (balance equations / repetition vector) for the
  determinate static-dataflow subset of SPI,
* boundedness hints and dangling-element detection.

The balance-equation solver uses exact rational arithmetic from the
standard library, so the repetition vector of a consistent graph is
exact.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set

from ..errors import ModelError
from .graph import ModelGraph


def reachable_from(graph: ModelGraph, start: str) -> Set[str]:
    """Processes reachable from ``start`` via channel paths (incl. start)."""
    graph.process(start)
    seen: Set[str] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.successors(node))
    return seen


def process_components(graph: ModelGraph) -> List[Set[str]]:
    """Weakly connected components of the process graph (sorted)."""
    remaining = set(graph.processes)
    components: List[Set[str]] = []
    while remaining:
        seed = min(remaining)
        component: Set[str] = set()
        frontier = [seed]
        while frontier:
            node = frontier.pop()
            if node in component:
                continue
            component.add(node)
            neighbors = set(graph.successors(node)) | set(
                graph.predecessors(node)
            )
            frontier.extend(neighbors - component)
        components.append(component)
        remaining -= component
    return sorted(components, key=min)


def topological_order(graph: ModelGraph) -> Optional[List[str]]:
    """Topological order of processes, or None if cyclic.

    Channel direction induces the order; feedback loops (e.g. Figure 4's
    ``CCTRL`` self-loop) make the graph cyclic and yield None.
    Self-loops on a single process are ignored: they model internal
    state, not inter-process precedence.
    """
    in_degree: Dict[str, int] = {name: 0 for name in graph.processes}
    successors: Dict[str, List[str]] = {name: [] for name in graph.processes}
    for name in graph.processes:
        for succ in graph.successors(name):
            if succ == name:
                continue
            successors[name].append(succ)
            in_degree[succ] += 1
    ready = sorted(name for name, deg in in_degree.items() if deg == 0)
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in successors[node]:
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(in_degree):
        return None
    return order


def is_determinate_dataflow(graph: ModelGraph) -> bool:
    """True if every process has exactly one fully determinate mode.

    On this subset SPI coincides with static (synchronous) dataflow and
    the balance equations below are meaningful.
    """
    return all(
        process.is_determinate for process in graph.processes.values()
    )


def balance_equations(
    graph: ModelGraph,
) -> Optional[Dict[str, int]]:
    """Solve the SDF balance equations on the determinate subset.

    For every channel with writer ``w`` producing ``p`` tokens and
    reader ``r`` consuming ``c`` tokens per firing, a consistent graph
    satisfies ``rate(w) * p == rate(r) * c``.  Returns the minimal
    positive integer repetition vector, or None if the graph is
    inconsistent (no bounded-memory periodic schedule exists).

    Channels without writer or reader (environment ends) impose no
    constraint.  Raises :class:`ModelError` when called on a graph
    outside the determinate subset.
    """
    if not is_determinate_dataflow(graph):
        raise ModelError(
            "balance equations require a determinate single-mode graph"
        )
    rate: Dict[str, Fraction] = {}
    for component in process_components(graph):
        seed = min(component)
        rate[seed] = Fraction(1)
        frontier = [seed]
        while frontier:
            node = frontier.pop()
            node_mode = graph.process(node).single_mode
            for channel in graph.output_channels(node):
                reader = graph.reader_of(channel)
                if reader is None:
                    continue
                produced = node_mode.production(channel).lo
                consumed = (
                    graph.process(reader).single_mode.consumption(channel).lo
                )
                if produced == 0 or consumed == 0:
                    continue
                implied = rate[node] * Fraction(produced) / Fraction(consumed)
                if reader in rate:
                    if rate[reader] != implied:
                        return None
                else:
                    rate[reader] = implied
                    frontier.append(reader)
            for channel in graph.input_channels(node):
                writer = graph.writer_of(channel)
                if writer is None:
                    continue
                consumed = node_mode.consumption(channel).lo
                produced = (
                    graph.process(writer).single_mode.production(channel).lo
                )
                if produced == 0 or consumed == 0:
                    continue
                implied = rate[node] * Fraction(consumed) / Fraction(produced)
                if writer in rate:
                    if rate[writer] != implied:
                        return None
                else:
                    rate[writer] = implied
                    frontier.append(writer)
        # Processes in the component never reached through a rated
        # channel (pure guards) default to rate 1.
        for node in component:
            rate.setdefault(node, Fraction(1))

    # Scale to the minimal integer vector per connected component.
    result: Dict[str, int] = {}
    for component in process_components(graph):
        denominators = [rate[node].denominator for node in component]
        scale = 1
        for den in denominators:
            scale = scale * den // _gcd(scale, den)
        scaled = {node: rate[node] * scale for node in component}
        numerators = [int(value) for value in scaled.values()]
        common = 0
        for value in numerators:
            common = _gcd(common, value)
        common = common or 1
        for node in component:
            result[node] = int(scaled[node]) // common
    return result


def consistency_report(graph: ModelGraph) -> Dict[str, object]:
    """Bundle of the structural facts used by front-end checks."""
    determinate = is_determinate_dataflow(graph)
    repetition = None
    if determinate:
        repetition = balance_equations(graph)
    return {
        "determinate": determinate,
        "consistent": repetition is not None if determinate else None,
        "repetition_vector": repetition,
        "topological_order": topological_order(graph),
        "components": [sorted(c) for c in process_components(graph)],
        "issues": graph.issues(),
    }


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)
