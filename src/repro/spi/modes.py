"""Process modes.

A process's externally visible behavior is captured by a small set of
parameters: per-channel consumption and production amounts and the
execution latency, all given as intervals.  Because these parameters are
usually strongly correlated, SPI groups consistent combinations into
**process modes** (paper §2): e.g. Figure 1's ``p2`` has

====  =======  ========  ========
mode  latency  consumes  produces
====  =======  ========  ========
m1    3 ms     1 @ c1    2 @ c2
m2    5 ms     3 @ c1    5 @ c2
====  =======  ========  ========

A mode may also declare the virtual mode tags attached to the tokens it
produces on each channel (``out_tags``), which is how downstream
activation functions are steered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping, Optional, Tuple

from .._frozen import proxy_pickle_methods
from ..errors import ModelError
from .intervals import Interval, as_interval, hull_all
from .tags import TagSet, as_tagset


def _freeze_rates(rates: Optional[Mapping[str, object]]) -> Mapping[str, Interval]:
    frozen = {}
    for channel, amount in (rates or {}).items():
        interval = as_interval(amount)
        if interval.lo < 0:
            raise ModelError(
                f"rate on channel {channel!r} must be non-negative, "
                f"got {interval}"
            )
        frozen[channel] = interval
    return MappingProxyType(frozen)


def _freeze_tags(tags: Optional[Mapping[str, object]]) -> Mapping[str, TagSet]:
    return MappingProxyType(
        {channel: as_tagset(value) for channel, value in (tags or {}).items()}
    )


@dataclass(frozen=True, eq=False)
class ProcessMode:
    """One consistent combination of process parameters.

    Parameters
    ----------
    name:
        Mode name, unique within its process.
    latency:
        Execution latency interval (time from activation to completion).
    consumes:
        Mapping from input channel name to token amount interval.
    produces:
        Mapping from output channel name to token amount interval.
    out_tags:
        Mapping from output channel name to the tag set attached to
        every token produced on that channel in this mode.
    pass_tags:
        Output channels whose produced tokens additionally inherit the
        union of the tags of all tokens consumed in the same execution.
        This models content information traveling with the data — the
        mechanism behind Figure 4's "adds a certain tag to the first
        image [...] when this tag reaches POut".
    """

    name: str
    latency: Interval = field(default_factory=Interval.zero)
    consumes: Mapping[str, Interval] = field(default_factory=dict)
    produces: Mapping[str, Interval] = field(default_factory=dict)
    out_tags: Mapping[str, TagSet] = field(default_factory=dict)
    pass_tags: Tuple[str, ...] = ()

    __getstate__, __setstate__ = proxy_pickle_methods(
        "consumes", "produces", "out_tags"
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("mode name must be non-empty")
        object.__setattr__(self, "latency", as_interval(self.latency))
        if self.latency.lo < 0:
            raise ModelError(
                f"mode {self.name!r}: latency must be non-negative"
            )
        object.__setattr__(self, "consumes", _freeze_rates(self.consumes))
        object.__setattr__(self, "produces", _freeze_rates(self.produces))
        object.__setattr__(self, "out_tags", _freeze_tags(self.out_tags))
        object.__setattr__(self, "pass_tags", tuple(self.pass_tags))
        unknown = set(self.out_tags) - set(self.produces)
        if unknown:
            raise ModelError(
                f"mode {self.name!r}: out_tags for channels it does not "
                f"produce on: {sorted(unknown)}"
            )
        unknown_pass = set(self.pass_tags) - set(self.produces)
        if unknown_pass:
            raise ModelError(
                f"mode {self.name!r}: pass_tags for channels it does not "
                f"produce on: {sorted(unknown_pass)}"
            )

    # ------------------------------------------------------------------
    def consumption(self, channel: str) -> Interval:
        """Consumption interval on ``channel`` (zero if not consumed)."""
        return self.consumes.get(channel, Interval.zero())

    def production(self, channel: str) -> Interval:
        """Production interval on ``channel`` (zero if not produced)."""
        return self.produces.get(channel, Interval.zero())

    def tags_for(self, channel: str) -> TagSet:
        """Tags attached to tokens produced on ``channel`` in this mode."""
        return self.out_tags.get(channel, TagSet.empty())

    @property
    def is_determinate(self) -> bool:
        """True if every parameter of the mode is a point interval."""
        rates = list(self.consumes.values()) + list(self.produces.values())
        return self.latency.is_point and all(rate.is_point for rate in rates)

    def renamed(self, name: str) -> "ProcessMode":
        """Copy of this mode under a different name (used by extraction)."""
        return ProcessMode(
            name=name,
            latency=self.latency,
            consumes=dict(self.consumes),
            produces=dict(self.produces),
            out_tags=dict(self.out_tags),
            pass_tags=self.pass_tags,
        )

    def with_channels_renamed(
        self, mapping: Mapping[str, str]
    ) -> "ProcessMode":
        """Copy with channel names substituted per ``mapping``.

        Channels absent from the mapping keep their names.  Used when a
        cluster is instantiated and its port names are replaced by the
        concrete external channel names.
        """

        def rename(channel: str) -> str:
            return mapping.get(channel, channel)

        return ProcessMode(
            name=self.name,
            latency=self.latency,
            consumes={rename(c): v for c, v in self.consumes.items()},
            produces={rename(c): v for c, v in self.produces.items()},
            out_tags={rename(c): v for c, v in self.out_tags.items()},
            pass_tags=tuple(rename(c) for c in self.pass_tags),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessMode({self.name!r}, latency={self.latency!r}, "
            f"consumes={dict(self.consumes)!r}, "
            f"produces={dict(self.produces)!r})"
        )


def mode_latency_bounds(modes: Iterable[ProcessMode]) -> Interval:
    """Hull of the latency intervals of a set of modes."""
    return hull_all(mode.latency for mode in modes)


def mode_rate_bounds(
    modes: Iterable[ProcessMode], channel: str, direction: str
) -> Interval:
    """Hull of per-mode consumption ('in') or production ('out') rates."""
    if direction == "in":
        return hull_all(mode.consumption(channel) for mode in modes)
    if direction == "out":
        return hull_all(mode.production(channel) for mode in modes)
    raise ModelError(f"direction must be 'in' or 'out', got {direction!r}")
