"""Virtual mode tags.

In SPI the *content* of communicated data is abstracted away; only the
amount of data is modeled.  To still let receiving processes adapt their
behavior to data content, producing processes may attach **virtual mode
tags** to the tokens they emit (paper §2).  Activation rules then test
for the presence of tags on the first visible token of a channel.

Tags are plain strings; a :class:`TagSet` is an immutable set of them
with set algebra that reads well in model construction code.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator

from ..errors import ModelError


class TagSet:
    """An immutable set of virtual mode tags.

    The empty tag set is the default for all produced tokens; the paper's
    example attaches ``'a'`` / ``'b'`` tags from process ``p1`` and
    ``'V1'`` / ``'V2'`` variant-selector tags from ``PUser``.
    """

    __slots__ = ("_tags",)

    def __init__(self, tags: Iterable[str] = ()) -> None:
        frozen = frozenset(tags)
        for tag in frozen:
            if not isinstance(tag, str) or not tag:
                raise ModelError(f"tags must be non-empty strings, got {tag!r}")
        self._tags: FrozenSet[str] = frozen

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "TagSet":
        """The tag set carried by plain, untagged tokens."""
        return _EMPTY

    @staticmethod
    def of(*tags: str) -> "TagSet":
        """Convenience variadic constructor: ``TagSet.of('a', 'b')``."""
        return TagSet(tags)

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------
    def __contains__(self, tag: str) -> bool:
        return tag in self._tags

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tags))

    def __len__(self) -> int:
        return len(self._tags)

    def __bool__(self) -> bool:
        return bool(self._tags)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TagSet):
            return self._tags == other._tags
        if isinstance(other, (set, frozenset)):
            return self._tags == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._tags)

    def __or__(self, other: "TagSet | Iterable[str]") -> "TagSet":
        return TagSet(self._tags | frozenset(_tags_of(other)))

    def __and__(self, other: "TagSet | Iterable[str]") -> "TagSet":
        return TagSet(self._tags & frozenset(_tags_of(other)))

    def __sub__(self, other: "TagSet | Iterable[str]") -> "TagSet":
        return TagSet(self._tags - frozenset(_tags_of(other)))

    def union(self, other: "TagSet | Iterable[str]") -> "TagSet":
        """Alias of ``|`` for call-style code."""
        return self | other

    def isdisjoint(self, other: "TagSet | Iterable[str]") -> bool:
        """True if the two tag sets share no tag."""
        return self._tags.isdisjoint(frozenset(_tags_of(other)))

    def issubset(self, other: "TagSet | Iterable[str]") -> bool:
        """True if every tag here is also in ``other``."""
        return self._tags.issubset(frozenset(_tags_of(other)))

    def as_frozenset(self) -> FrozenSet[str]:
        """The underlying frozenset, for interop with plain-set code."""
        return self._tags

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._tags:
            return "TagSet()"
        inner = ", ".join(repr(tag) for tag in sorted(self._tags))
        return f"TagSet.of({inner})"


def _tags_of(value: "TagSet | Iterable[str]") -> Iterable[str]:
    if isinstance(value, TagSet):
        return value.as_frozenset()
    return value


def as_tagset(value: "TagSet | Iterable[str] | str | None") -> TagSet:
    """Coerce loose user input (str, iterable, None) to a TagSet."""
    if value is None:
        return _EMPTY
    if isinstance(value, TagSet):
        return value
    if isinstance(value, str):
        return TagSet((value,))
    return TagSet(value)


_EMPTY = TagSet()
