"""Mode-correlation analysis — how much precision do modes buy?

SPI's motivation for process modes (paper §2, elaborating ref [9],
"Representation of process mode correlation for scheduling"): process
parameters "are not independent from each other but strongly
correlated", and capturing the correlation as modes gives much tighter
behavior bounds than independent per-parameter intervals.

This module quantifies that claim for a process: it compares

* the **uncorrelated** view — every parameter hulled independently over
  all modes (what a mode-less annotation would carry), against
* the **correlated** view — per-mode exact values,

and derives the *infeasible corner volume*: parameter combinations the
uncorrelated intervals admit but no actual mode exhibits.  The classic
example is Figure 1's ``p2``: the uncorrelated view allows "consume 1,
produce 5, take 5 ms", a behavior the real process never shows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .intervals import Interval, hull_all
from .process import Process


@dataclass(frozen=True)
class ParameterPoint:
    """One concrete (latency, rates) combination."""

    latency: float
    consumption: Tuple[Tuple[str, float], ...]
    production: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class CorrelationReport:
    """Comparison of correlated and uncorrelated parameter views."""

    process: str
    uncorrelated_latency: Interval
    uncorrelated_consumption: Dict[str, Interval]
    uncorrelated_production: Dict[str, Interval]
    mode_points: Tuple[ParameterPoint, ...]
    corner_points: int
    feasible_corners: int

    @property
    def infeasible_corners(self) -> int:
        """Corner combinations admitted by hulls but shown by no mode."""
        return self.corner_points - self.feasible_corners

    @property
    def tightening_ratio(self) -> float:
        """Fraction of hull corners that are spurious (0 = no benefit).

        A mode-less annotation admits every corner of the parameter
        hyper-box; the modes admit only the actual points.  The closer
        to 1, the more precision the mode representation buys.
        """
        if self.corner_points == 0:
            return 0.0
        return self.infeasible_corners / self.corner_points


def analyze_correlation(process: Process) -> CorrelationReport:
    """Compare per-mode parameters with their independent hulls."""
    modes = process.mode_list
    in_channels = process.input_channels()
    out_channels = process.output_channels()

    uncorrelated_latency = hull_all(m.latency for m in modes)
    uncorrelated_consumption = {
        c: hull_all(m.consumption(c) for m in modes) for c in in_channels
    }
    uncorrelated_production = {
        c: hull_all(m.production(c) for m in modes) for c in out_channels
    }

    mode_points = tuple(
        ParameterPoint(
            latency=mode.latency.midpoint,
            consumption=tuple(
                (c, mode.consumption(c).midpoint) for c in in_channels
            ),
            production=tuple(
                (c, mode.production(c).midpoint) for c in out_channels
            ),
        )
        for mode in modes
    )

    # Corners of the uncorrelated hyper-box: every combination of
    # per-parameter {lo, hi}.
    axes: List[Tuple[float, float]] = [
        (uncorrelated_latency.lo, uncorrelated_latency.hi)
    ]
    axes.extend(
        (interval.lo, interval.hi)
        for interval in uncorrelated_consumption.values()
    )
    axes.extend(
        (interval.lo, interval.hi)
        for interval in uncorrelated_production.values()
    )
    corners = set(itertools.product(*[set(axis) for axis in axes]))

    feasible = set()
    for mode in modes:
        # a fully determinate mode occupies exactly one corner; an
        # interval-valued mode covers all corners within its own box.
        mode_axes = [
            {mode.latency.lo, mode.latency.hi}
        ]
        for channel in in_channels:
            interval = mode.consumption(channel)
            mode_axes.append({interval.lo, interval.hi})
        for channel in out_channels:
            interval = mode.production(channel)
            mode_axes.append({interval.lo, interval.hi})
        for candidate in itertools.product(*mode_axes):
            if candidate in corners:
                feasible.add(candidate)

    return CorrelationReport(
        process=process.name,
        uncorrelated_latency=uncorrelated_latency,
        uncorrelated_consumption=uncorrelated_consumption,
        uncorrelated_production=uncorrelated_production,
        mode_points=mode_points,
        corner_points=len(corners),
        feasible_corners=len(feasible),
    )
