"""Tokens — the unit of communicated data in SPI.

Because SPI abstracts data *content* to data *amount*, a token carries
no payload; it carries only a :class:`~repro.spi.tags.TagSet` of virtual
mode tags (paper §2) plus bookkeeping fields that the simulator uses for
traces (the producing process and the production time).  The bookkeeping
fields do not take part in equality: two tokens with the same tag set
are interchangeable as far as the model semantics are concerned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .tags import TagSet, as_tagset


@dataclass(frozen=True)
class Token:
    """A single communicated data token.

    Parameters
    ----------
    tags:
        The virtual mode tags attached by the producing process.
    producer:
        Name of the producing process (trace bookkeeping; excluded from
        equality so semantics depend only on tags).
    produced_at:
        Model time at which the token appeared on its channel.
    """

    tags: TagSet = field(default_factory=TagSet.empty)
    producer: Optional[str] = field(default=None, compare=False)
    produced_at: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.tags, TagSet):
            object.__setattr__(self, "tags", as_tagset(self.tags))

    def has_tag(self, tag: str) -> bool:
        """True if ``tag`` is in this token's tag set."""
        return tag in self.tags

    def with_tags(self, extra: "TagSet | Iterable[str] | str") -> "Token":
        """A copy of this token with additional tags attached.

        Used by Figure 4's valve process ``PIn``, which adds a marker tag
        to the first image passed after resuming.
        """
        return Token(
            tags=self.tags | as_tagset(extra),
            producer=self.producer,
            produced_at=self.produced_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.tags:
            return f"Token({set(self.tags)!r})"
        return "Token()"


def make_tokens(
    count: int,
    tags: "TagSet | Iterable[str] | str | None" = None,
    producer: Optional[str] = None,
    produced_at: Optional[float] = None,
) -> list:
    """Build ``count`` identical tokens with the given tag set."""
    tagset = as_tagset(tags)
    return [
        Token(tags=tagset, producer=producer, produced_at=produced_at)
        for _ in range(count)
    ]
