"""Timing constraints and their constructive compliance check.

The SPI model "defines timing constraints as well as a constructive
method to check their compliance" (paper §2).  This module provides the
three constraint forms the examples need and a conservative structural
checker based on interval latency propagation:

* :class:`LatencyConstraint` — the end-to-end latency from one process
  to another along channel paths must not exceed a bound;
* :class:`DeadlineConstraint` — a single process's execution latency
  must not exceed a bound;
* :class:`RateConstraint` — a (periodic) process must be able to keep
  up with its input period, i.e. worst-case latency <= period.

The checker is *constructive* in the paper's sense: it derives
worst-case bounds bottom-up from the mode tables (no simulation), and
is conservative — a PASS is a guarantee under the model's assumptions,
a FAIL pinpoints the worst-case witness path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ModelError, TimingViolation
from .graph import ModelGraph
from .intervals import Interval


@dataclass(frozen=True)
class LatencyConstraint:
    """Bound on worst-case path latency from ``source`` to ``target``."""

    source: str
    target: str
    bound: float

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise ModelError("latency bound must be non-negative")


@dataclass(frozen=True)
class DeadlineConstraint:
    """Bound on a single process's worst-case execution latency."""

    process: str
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline < 0:
            raise ModelError("deadline must be non-negative")


@dataclass(frozen=True)
class RateConstraint:
    """A periodic process must finish within its period."""

    process: str
    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ModelError("period must be positive")


@dataclass
class CheckResult:
    """Outcome of checking one constraint."""

    constraint: object
    satisfied: bool
    worst_case: float
    witness: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.satisfied


@dataclass
class TimingReport:
    """Aggregated verdicts for a constraint set."""

    results: List[CheckResult] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        """True if every constraint passed."""
        return all(result.satisfied for result in self.results)

    def violations(self) -> List[CheckResult]:
        """The failing results only."""
        return [result for result in self.results if not result.satisfied]

    def raise_on_violation(self) -> "TimingReport":
        """Raise :class:`TimingViolation` if any constraint failed."""
        failing = self.violations()
        if failing:
            parts = []
            for result in failing:
                parts.append(
                    f"{result.constraint} worst-case {result.worst_case}"
                )
            raise TimingViolation("; ".join(parts))
        return self


def process_latency_bounds(graph: ModelGraph, process: str) -> Interval:
    """Latency interval of a process = hull over its modes."""
    return graph.process(process).latency_bounds()


def worst_case_path_latency(
    graph: ModelGraph, source: str, target: str
) -> Tuple[float, Tuple[str, ...]]:
    """Worst-case accumulated latency along any process path.

    Uses longest-path search over the process graph (channels add no
    latency in SPI; they only transfer data).  Cycles are handled by
    forbidding node revisits — SPI feedback loops (like Figure 4's
    ``CCTRL``) carry state between *iterations* and do not extend the
    latency of a single stimulus-to-response path.

    Returns the latency and the witness path.  Raises
    :class:`ModelError` if target is unreachable from source.
    """
    graph.process(source)
    graph.process(target)

    best: Dict[str, float] = {}
    best_path: Dict[str, Tuple[str, ...]] = {}

    def visit(node: str, acc: float, path: Tuple[str, ...]) -> None:
        latency = graph.process(node).latency_bounds().hi
        total = acc + latency
        full_path = path + (node,)
        if node == target:
            if total > best.get(target, float("-inf")):
                best[target] = total
                best_path[target] = full_path
            return
        for successor in graph.successors(node):
            if successor in full_path:
                continue
            visit(successor, total, full_path)

    visit(source, 0.0, ())
    if target not in best:
        raise ModelError(
            f"no channel path from process {source!r} to {target!r}"
        )
    return best[target], best_path[target]


def check(
    graph: ModelGraph, constraints: Sequence[object]
) -> TimingReport:
    """Check all constraints; never raises for violations (see report)."""
    report = TimingReport()
    for constraint in constraints:
        if isinstance(constraint, LatencyConstraint):
            worst, witness = worst_case_path_latency(
                graph, constraint.source, constraint.target
            )
            report.results.append(
                CheckResult(
                    constraint=constraint,
                    satisfied=worst <= constraint.bound,
                    worst_case=worst,
                    witness=witness,
                )
            )
        elif isinstance(constraint, DeadlineConstraint):
            worst = process_latency_bounds(graph, constraint.process).hi
            report.results.append(
                CheckResult(
                    constraint=constraint,
                    satisfied=worst <= constraint.deadline,
                    worst_case=worst,
                    witness=(constraint.process,),
                )
            )
        elif isinstance(constraint, RateConstraint):
            process = graph.process(constraint.process)
            worst = process.latency_bounds().hi
            report.results.append(
                CheckResult(
                    constraint=constraint,
                    satisfied=worst <= constraint.period,
                    witness=(constraint.process,),
                    worst_case=worst,
                )
            )
        else:
            raise ModelError(
                f"unknown timing constraint type: {type(constraint).__name__}"
            )
    return report
