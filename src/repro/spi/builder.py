"""Compact construction API for SPI model graphs.

:class:`GraphBuilder` removes the add-then-connect boilerplate of
:class:`~repro.spi.graph.ModelGraph`: processes declare their channel
usage in their modes, so the builder can wire edges automatically from
the mode tables.

Example — Figure 1 of the paper::

    b = GraphBuilder('figure1')
    b.queue('c1')
    b.queue('c2')
    b.process(simple_process('p1', latency=1.0,
                             consumes={'c0': 1}, produces={'c1': 2}))
    ...
    graph = b.build()
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..errors import ModelError
from .activation import ActivationFunction
from .channels import Channel, queue as make_queue, register as make_register
from .graph import ModelGraph
from .modes import ProcessMode
from .process import Process, simple_process
from .tokens import Token


class GraphBuilder:
    """Fluent builder that auto-wires edges from mode tables."""

    def __init__(self, name: str = "system") -> None:
        self._graph = ModelGraph(name)

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def queue(
        self,
        name: str,
        capacity: Optional[int] = None,
        initial_tokens: Sequence[Token] = (),
        virtual: bool = False,
    ) -> "GraphBuilder":
        """Declare a FIFO queue channel."""
        self._graph.add_channel(
            make_queue(name, capacity, initial_tokens, virtual)
        )
        return self

    def register(
        self,
        name: str,
        initial_tokens: Sequence[Token] = (),
        virtual: bool = False,
    ) -> "GraphBuilder":
        """Declare a register channel."""
        self._graph.add_channel(make_register(name, initial_tokens, virtual))
        return self

    def channel(self, channel: Channel) -> "GraphBuilder":
        """Add a pre-built channel declaration."""
        self._graph.add_channel(channel)
        return self

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def process(self, process: Process) -> "GraphBuilder":
        """Add a process and wire edges for every channel its modes use.

        Channels referenced by the process must have been declared
        before the process is added.
        """
        self._graph.add_process(process)
        for channel in process.input_channels():
            self._require_channel(channel, process.name)
            self._graph.connect(channel, process.name)
        for channel in process.output_channels():
            self._require_channel(channel, process.name)
            self._graph.connect(process.name, channel)
        # Activation may observe channels the process never consumes
        # from in any mode (pure guards); those get reader edges when
        # the slot is free.  Observation is non-destructive, so a
        # channel already read by another process may still be watched
        # without an edge (e.g. a drain guard over a cluster's internal
        # channels).
        for channel in process.activation.channels():
            self._require_channel(channel, process.name)
            if self._graph.reader_of(channel) is None:
                self._graph.connect(channel, process.name)
        return self

    def simple(
        self,
        name: str,
        latency: object = 0,
        consumes: Optional[Mapping[str, object]] = None,
        produces: Optional[Mapping[str, object]] = None,
        out_tags: Optional[Mapping[str, object]] = None,
        pass_tags: Sequence[str] = (),
        virtual: bool = False,
        period: Optional[float] = None,
        max_firings: Optional[int] = None,
        release_time: float = 0.0,
    ) -> "GraphBuilder":
        """Declare a single-mode process inline (see ``simple_process``)."""
        return self.process(
            simple_process(
                name,
                latency=latency,
                consumes=consumes,
                produces=produces,
                out_tags=out_tags,
                pass_tags=pass_tags,
                virtual=virtual,
                period=period,
                max_firings=max_firings,
                release_time=release_time,
            )
        )

    def modal(
        self,
        name: str,
        modes: Iterable[ProcessMode],
        activation: ActivationFunction,
        virtual: bool = False,
        period: Optional[float] = None,
        max_firings: Optional[int] = None,
    ) -> "GraphBuilder":
        """Declare a multi-mode process inline."""
        return self.process(
            Process(
                name=name,
                modes={mode.name: mode for mode in modes},
                activation=activation,
                virtual=virtual,
                period=period,
                max_firings=max_firings,
            )
        )

    # ------------------------------------------------------------------
    def _require_channel(self, channel: str, process: str) -> None:
        if not self._graph.has_channel(channel):
            raise ModelError(
                f"process {process!r} references channel {channel!r} which "
                f"has not been declared; declare channels before processes"
            )

    def build(self, validate: bool = True) -> ModelGraph:
        """Finish construction, optionally running whole-model validation."""
        if validate:
            self._graph.validate()
        return self._graph

    @property
    def graph(self) -> ModelGraph:
        """The graph under construction (not yet validated)."""
        return self._graph
