"""The SPI (System Property Intervals) model substrate.

This package rebuilds the design representation the paper's
contribution extends (paper refs [8, 9]): concurrent processes
communicating over unidirectional queue/register channels, with process
behavior abstracted to interval-valued parameters, correlated through
process modes, and steered by activation functions over input-token
predicates.
"""

from .activation import ActivationFunction, ActivationRule, rules
from .builder import GraphBuilder
from .channels import (
    Channel,
    ChannelKind,
    ChannelState,
    QueueState,
    RegisterState,
    queue,
    register,
)
from .graph import ModelGraph
from .intervals import Interval, as_interval, hull_all, sum_all
from .modes import ProcessMode, mode_latency_bounds, mode_rate_bounds
from .predicates import (
    And,
    ChannelView,
    HasAnyTag,
    HasTag,
    MappingView,
    Not,
    NumAvailable,
    Or,
    Predicate,
    TruePredicate,
    tokens_with_tag,
)
from .process import Process, simple_process
from .semantics import Firing, RateResolver, StepSemantics
from .tags import TagSet, as_tagset
from .timing import (
    CheckResult,
    DeadlineConstraint,
    LatencyConstraint,
    RateConstraint,
    TimingReport,
    check,
    worst_case_path_latency,
)
from .tokens import Token, make_tokens
from .virtuality import one_shot_source, sink, source, system_part

__all__ = [
    "ActivationFunction",
    "ActivationRule",
    "And",
    "Channel",
    "ChannelKind",
    "ChannelState",
    "ChannelView",
    "CheckResult",
    "DeadlineConstraint",
    "Firing",
    "GraphBuilder",
    "HasAnyTag",
    "HasTag",
    "Interval",
    "LatencyConstraint",
    "MappingView",
    "ModelGraph",
    "Not",
    "NumAvailable",
    "Or",
    "Predicate",
    "Process",
    "ProcessMode",
    "QueueState",
    "RateConstraint",
    "RateResolver",
    "RegisterState",
    "StepSemantics",
    "TagSet",
    "TimingReport",
    "Token",
    "TruePredicate",
    "as_interval",
    "as_tagset",
    "check",
    "hull_all",
    "make_tokens",
    "mode_latency_bounds",
    "mode_rate_bounds",
    "one_shot_source",
    "queue",
    "register",
    "rules",
    "simple_process",
    "sink",
    "source",
    "sum_all",
    "system_part",
    "tokens_with_tag",
    "worst_case_path_latency",
]
