"""SPI processes.

A process node maps input data to output data at each execution; its
internal function is deliberately *not* modeled.  What is modeled (paper
§2) is the set of :class:`~repro.spi.modes.ProcessMode` behaviors, the
:class:`~repro.spi.activation.ActivationFunction` selecting among them,
and — for environment modeling — whether the process is *virtual* and
whether it is time-triggered (``period``) rather than data-triggered.

``max_firings`` is the small "constraining modeling element" the paper
mentions but elides in its Figure 3 discussion ("we omitted certain
modeling elements needed to constrain the behavior of some system parts,
in this case PUser to execute only once in the beginning"): it bounds
how often a process may execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional, Sequence, Tuple

from .._frozen import proxy_pickle_methods
from ..errors import ModelError
from .activation import ActivationFunction
from .intervals import Interval, hull_all
from .modes import ProcessMode


@dataclass(frozen=True, eq=False)
class Process:
    """A process node of an SPI model graph.

    Parameters
    ----------
    name:
        Unique process name within its graph.
    modes:
        The process's behavior alternatives.  At least one is required.
    activation:
        Rules selecting a mode from input channel observations.  If
        omitted, a single-mode process gets an implicit unconditional
        rule for its only mode; multi-mode processes must specify one.
    virtual:
        True if the process models the environment, not the system.
    period:
        If set, the process is additionally time-triggered: it can start
        an execution at most every ``period`` time units (used for
        sources such as a camera delivering frames at a fixed rate).
    max_firings:
        Upper bound on the number of executions, or None for unbounded.
    release_time:
        Earliest model time at which the process may first execute
        (e.g. a user issuing a reconfiguration request mid-stream).
    """

    name: str
    modes: Mapping[str, ProcessMode]
    activation: Optional[ActivationFunction] = None
    virtual: bool = False
    period: Optional[float] = None
    max_firings: Optional[int] = None
    release_time: float = 0.0

    __getstate__, __setstate__ = proxy_pickle_methods("modes")

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("process name must be non-empty")
        modes = self.modes
        if isinstance(modes, (list, tuple)):
            modes = {mode.name: mode for mode in modes}
        if not modes:
            raise ModelError(f"process {self.name!r} needs at least one mode")
        for key, mode in modes.items():
            if key != mode.name:
                raise ModelError(
                    f"process {self.name!r}: mode dict key {key!r} does not "
                    f"match mode name {mode.name!r}"
                )
        object.__setattr__(self, "modes", MappingProxyType(dict(modes)))

        activation = self.activation
        if activation is None:
            if len(self.modes) == 1:
                only = next(iter(self.modes))
                activation = ActivationFunction.always(only)
            else:
                raise ModelError(
                    f"process {self.name!r} has {len(self.modes)} modes and "
                    f"therefore needs an explicit activation function"
                )
        object.__setattr__(self, "activation", activation)

        missing = set(self.activation.modes_named()) - set(self.modes)
        if missing:
            raise ModelError(
                f"process {self.name!r}: activation rules reference unknown "
                f"modes {sorted(missing)}"
            )
        if self.period is not None and self.period <= 0:
            raise ModelError(
                f"process {self.name!r}: period must be positive"
            )
        if self.max_firings is not None and self.max_firings < 0:
            raise ModelError(
                f"process {self.name!r}: max_firings must be >= 0"
            )
        if self.release_time < 0:
            raise ModelError(
                f"process {self.name!r}: release_time must be >= 0"
            )

    # ------------------------------------------------------------------
    # Mode access
    # ------------------------------------------------------------------
    def mode(self, name: str) -> ProcessMode:
        """Look up a mode by name."""
        try:
            return self.modes[name]
        except KeyError:
            raise ModelError(
                f"process {self.name!r} has no mode {name!r}"
            ) from None

    @property
    def mode_list(self) -> Tuple[ProcessMode, ...]:
        """The modes in insertion order."""
        return tuple(self.modes.values())

    @property
    def single_mode(self) -> ProcessMode:
        """The only mode of a single-mode process."""
        if len(self.modes) != 1:
            raise ModelError(
                f"process {self.name!r} has {len(self.modes)} modes; "
                f"single_mode is only defined for one"
            )
        return next(iter(self.modes.values()))

    # ------------------------------------------------------------------
    # Derived abstract behavior (interval hulls over all modes)
    # ------------------------------------------------------------------
    def latency_bounds(self) -> Interval:
        """Hull of all mode latencies — the process's latency interval."""
        return hull_all(mode.latency for mode in self.modes.values())

    def consumption_bounds(self, channel: str) -> Interval:
        """Hull of per-mode consumption on ``channel``."""
        return hull_all(
            mode.consumption(channel) for mode in self.modes.values()
        )

    def production_bounds(self, channel: str) -> Interval:
        """Hull of per-mode production on ``channel``."""
        return hull_all(
            mode.production(channel) for mode in self.modes.values()
        )

    def input_channels(self) -> Tuple[str, ...]:
        """Channels consumed from in at least one mode (sorted)."""
        channels = set()
        for mode in self.modes.values():
            channels.update(mode.consumes)
        return tuple(sorted(channels))

    def output_channels(self) -> Tuple[str, ...]:
        """Channels produced on in at least one mode (sorted)."""
        channels = set()
        for mode in self.modes.values():
            channels.update(mode.produces)
        return tuple(sorted(channels))

    @property
    def is_determinate(self) -> bool:
        """True if the process has one fully determinate mode."""
        return len(self.modes) == 1 and self.single_mode.is_determinate

    @property
    def is_source(self) -> bool:
        """True if the process consumes from no channel in any mode."""
        return not self.input_channels()

    @property
    def is_sink(self) -> bool:
        """True if the process produces on no channel in any mode."""
        return not self.output_channels()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Process({self.name!r}, modes={list(self.modes)!r})"


def simple_process(
    name: str,
    latency: object = 0,
    consumes: Optional[Mapping[str, object]] = None,
    produces: Optional[Mapping[str, object]] = None,
    out_tags: Optional[Mapping[str, object]] = None,
    pass_tags: Sequence[str] = (),
    virtual: bool = False,
    period: Optional[float] = None,
    max_firings: Optional[int] = None,
    release_time: float = 0.0,
) -> Process:
    """Build a single-mode process with an implicit activation rule.

    This covers determinate processes like Figure 1's ``p1`` in one call::

        p1 = simple_process('p1', latency=1.0,
                            consumes={'c0': 1}, produces={'c1': 2})
    """
    mode = ProcessMode(
        name="run",
        latency=latency,
        consumes=consumes or {},
        produces=produces or {},
        out_tags=out_tags or {},
        pass_tags=tuple(pass_tags),
    )
    return Process(
        name=name,
        modes={"run": mode},
        virtual=virtual,
        period=period,
        max_firings=max_firings,
        release_time=release_time,
    )
