"""Activation functions.

An **activation function** is associated with each process and maps
input token predicates to modes (paper §2).  When a rule's predicate
holds on the current channel state, the process is activated in that
rule's mode.  If no rule is enabled the process is simply not activated
— the paper notes such situations "can be ignored due to the assumption
of correct models", but this library optionally flags *ambiguous*
activations (several rules with different modes enabled at once) because
they make the model nondeterminate in a way that is usually a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ActivationError
from .predicates import ChannelView, Predicate, TruePredicate


@dataclass(frozen=True)
class ActivationRule:
    """One rule: ``predicate -> mode``.

    ``name`` is used in traces and error messages; the paper labels its
    rules ``a1``, ``a2``, …
    """

    name: str
    predicate: Predicate
    mode: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ActivationError("activation rule name must be non-empty")
        if not self.mode:
            raise ActivationError(
                f"activation rule {self.name!r} must name a mode"
            )

    def enabled(self, view: ChannelView) -> bool:
        """True if this rule's predicate holds on the observed state."""
        return self.predicate.evaluate(view)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.predicate!r} -> {self.mode}"


@dataclass(frozen=True)
class ActivationFunction:
    """An ordered rule set mapping channel observations to modes."""

    rules: Tuple[ActivationRule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ActivationError("activation rule names must be unique")

    @staticmethod
    def of(*rules: ActivationRule) -> "ActivationFunction":
        """Variadic constructor."""
        return ActivationFunction(rules)

    @staticmethod
    def always(mode: str) -> "ActivationFunction":
        """Single unconditional rule activating ``mode``.

        Note that even an "always" rule only fires once the simulator
        has verified that enough input tokens are available for the
        mode's consumption — see
        :meth:`repro.sim.engine.Simulator`'s readiness check.
        """
        return ActivationFunction(
            (ActivationRule("always", TruePredicate(), mode),)
        )

    # ------------------------------------------------------------------
    def enabled_rules(self, view: ChannelView) -> List[ActivationRule]:
        """All rules whose predicates hold on the observed state."""
        return [rule for rule in self.rules if rule.enabled(view)]

    def select(
        self, view: ChannelView, strict: bool = False
    ) -> Optional[ActivationRule]:
        """The rule to fire, or None if no rule is enabled.

        With ``strict=True``, raise :class:`ActivationError` if several
        enabled rules disagree on the mode (ambiguous model).  With
        ``strict=False`` (the default, matching the paper's
        correct-model assumption) the first enabled rule in declaration
        order wins.
        """
        enabled = self.enabled_rules(view)
        if not enabled:
            return None
        if strict:
            modes = {rule.mode for rule in enabled}
            if len(modes) > 1:
                names = ", ".join(rule.name for rule in enabled)
                raise ActivationError(
                    f"ambiguous activation: rules [{names}] select "
                    f"different modes {sorted(modes)}"
                )
        return enabled[0]

    def modes_named(self) -> Tuple[str, ...]:
        """All mode names reachable through this activation function."""
        seen: List[str] = []
        for rule in self.rules:
            if rule.mode not in seen:
                seen.append(rule.mode)
        return tuple(seen)

    def channels(self) -> Tuple[str, ...]:
        """All channels observed by any rule (sorted, unique)."""
        merged = set()
        for rule in self.rules:
            merged.update(rule.predicate.channels())
        return tuple(sorted(merged))

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)


def rules(*pairs: Tuple[str, Predicate, str]) -> ActivationFunction:
    """Build an activation function from ``(name, predicate, mode)`` triples."""
    return ActivationFunction(
        tuple(ActivationRule(name, pred, mode) for name, pred, mode in pairs)
    )
