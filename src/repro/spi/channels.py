"""Channels — queues and registers.

SPI systems communicate exclusively over unidirectional point-to-point
channels of two kinds (paper §2):

* **queue** — FIFO-ordered with *destructive read*: consuming removes
  tokens, every produced token is eventually visible, unbounded unless a
  capacity is declared.
* **register** — *destructive write*: a newly written token replaces the
  current content; reads do not consume.  A register holds at most one
  visible token.

This module provides both the static declaration (:class:`Channel`, a
node of the model graph) and the runtime state used by the simulator and
the untimed step semantics (:class:`QueueState`, :class:`RegisterState`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ModelError, SimulationError
from .tags import TagSet
from .tokens import Token


class ChannelKind(enum.Enum):
    """The two SPI channel semantics."""

    QUEUE = "queue"
    REGISTER = "register"


@dataclass(frozen=True)
class Channel:
    """Static declaration of a channel node in the model graph.

    Parameters
    ----------
    name:
        Unique channel name within its graph.
    kind:
        Queue (FIFO, destructive read) or register (destructive write).
    capacity:
        Optional bound on queue occupancy; ``None`` means unbounded.
        Registers always hold at most one token and ignore this field.
    initial_tokens:
        Tokens present before the system starts (initial delays in
        dataflow terminology).
    virtual:
        True if the channel belongs to the modeled *environment* rather
        than the system under design (paper §2, concept of virtuality).
    """

    name: str
    kind: ChannelKind = ChannelKind.QUEUE
    capacity: Optional[int] = None
    initial_tokens: Tuple[Token, ...] = ()
    virtual: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("channel name must be non-empty")
        if self.capacity is not None and self.capacity < 1:
            raise ModelError(
                f"channel {self.name!r}: capacity must be >= 1 or None"
            )
        if not isinstance(self.initial_tokens, tuple):
            object.__setattr__(
                self, "initial_tokens", tuple(self.initial_tokens)
            )
        if self.kind is ChannelKind.REGISTER and len(self.initial_tokens) > 1:
            raise ModelError(
                f"register {self.name!r} cannot hold more than one initial token"
            )
        if (
            self.capacity is not None
            and len(self.initial_tokens) > self.capacity
        ):
            raise ModelError(
                f"channel {self.name!r}: initial tokens exceed capacity"
            )

    def new_state(self) -> "ChannelState":
        """Create a fresh runtime state preloaded with initial tokens."""
        if self.kind is ChannelKind.QUEUE:
            return QueueState(self)
        return RegisterState(self)


class ChannelState:
    """Abstract runtime state shared by queue and register semantics.

    The interface is exactly what activation predicates need: how many
    tokens are visible (``available``) and the tag set of the first
    visible token (``first_tags``), plus ``read``/``write`` for firing.
    """

    __slots__ = ("channel",)

    def __init__(self, channel: Channel) -> None:
        self.channel = channel

    # -- observation ----------------------------------------------------
    def available(self) -> int:
        """Number of tokens currently visible on the channel."""
        raise NotImplementedError

    def first_token(self) -> Optional[Token]:
        """The first visible token, or None if the channel is empty."""
        raise NotImplementedError

    def first_tags(self) -> Optional[TagSet]:
        """Tag set of the first visible token, or None if empty."""
        token = self.first_token()
        return None if token is None else token.tags

    def peek(self, count: int) -> List[Token]:
        """The first ``count`` visible tokens without consuming them."""
        raise NotImplementedError

    # -- mutation -------------------------------------------------------
    def read(self, count: int) -> List[Token]:
        """Consume ``count`` tokens according to the channel semantics."""
        raise NotImplementedError

    def write(self, tokens: Sequence[Token]) -> None:
        """Produce tokens onto the channel."""
        raise NotImplementedError

    def clear(self) -> List[Token]:
        """Drop all content (used when a cluster is terminated).

        Returns the dropped tokens so traces can record the data loss
        that the paper warns about when terminating a running cluster.
        """
        raise NotImplementedError

    def snapshot(self) -> Tuple[Token, ...]:
        """Immutable copy of the current content, oldest first."""
        raise NotImplementedError


class QueueState(ChannelState):
    """FIFO queue with destructive read."""

    __slots__ = ("_fifo",)

    def __init__(self, channel: Channel) -> None:
        super().__init__(channel)
        self._fifo: List[Token] = list(channel.initial_tokens)

    def available(self) -> int:
        return len(self._fifo)

    def first_token(self) -> Optional[Token]:
        return self._fifo[0] if self._fifo else None

    def peek(self, count: int) -> List[Token]:
        if count < 0:
            raise SimulationError("cannot peek a negative token count")
        return list(self._fifo[:count])

    def read(self, count: int) -> List[Token]:
        if count < 0:
            raise SimulationError("cannot read a negative token count")
        if count > len(self._fifo):
            raise SimulationError(
                f"queue {self.channel.name!r}: read of {count} tokens "
                f"with only {len(self._fifo)} available"
            )
        taken, self._fifo = self._fifo[:count], self._fifo[count:]
        return taken

    def write(self, tokens: Sequence[Token]) -> None:
        capacity = self.channel.capacity
        if capacity is not None and len(self._fifo) + len(tokens) > capacity:
            raise SimulationError(
                f"queue {self.channel.name!r}: writing {len(tokens)} tokens "
                f"overflows capacity {capacity} "
                f"(currently {len(self._fifo)})"
            )
        self._fifo.extend(tokens)

    def clear(self) -> List[Token]:
        dropped, self._fifo = self._fifo, []
        return dropped

    def snapshot(self) -> Tuple[Token, ...]:
        return tuple(self._fifo)


class RegisterState(ChannelState):
    """Single-place register with destructive write, non-destructive read."""

    __slots__ = ("_current",)

    def __init__(self, channel: Channel) -> None:
        super().__init__(channel)
        self._current: Optional[Token] = (
            channel.initial_tokens[0] if channel.initial_tokens else None
        )

    def available(self) -> int:
        return 0 if self._current is None else 1

    def first_token(self) -> Optional[Token]:
        return self._current

    def peek(self, count: int) -> List[Token]:
        if count < 0:
            raise SimulationError("cannot peek a negative token count")
        if count == 0 or self._current is None:
            return []
        # Reading a register repeatedly yields the same value; a request
        # for n tokens observes the current value n times.
        return [self._current] * count

    def read(self, count: int) -> List[Token]:
        if count < 0:
            raise SimulationError("cannot read a negative token count")
        if count > 0 and self._current is None:
            raise SimulationError(
                f"register {self.channel.name!r}: read before first write"
            )
        # Non-destructive: the value remains in place.
        return [self._current] * count if count else []

    def write(self, tokens: Sequence[Token]) -> None:
        if not tokens:
            return
        # Destructive write: only the newest token survives.
        self._current = tokens[-1]

    def clear(self) -> List[Token]:
        dropped = [] if self._current is None else [self._current]
        self._current = None
        return dropped

    def snapshot(self) -> Tuple[Token, ...]:
        return () if self._current is None else (self._current,)


def queue(
    name: str,
    capacity: Optional[int] = None,
    initial_tokens: Sequence[Token] = (),
    virtual: bool = False,
) -> Channel:
    """Shorthand for declaring a FIFO queue channel."""
    return Channel(
        name=name,
        kind=ChannelKind.QUEUE,
        capacity=capacity,
        initial_tokens=tuple(initial_tokens),
        virtual=virtual,
    )


def register(
    name: str,
    initial_tokens: Sequence[Token] = (),
    virtual: bool = False,
) -> Channel:
    """Shorthand for declaring a register channel."""
    return Channel(
        name=name,
        kind=ChannelKind.REGISTER,
        initial_tokens=tuple(initial_tokens),
        virtual=virtual,
    )
