"""The SPI model graph.

A model graph is a directed, *bipartite* graph of process nodes and
channel nodes (paper §2): edges only connect processes to channels and
channels to processes.  Channels are unidirectional and point-to-point,
so every channel has at most one writer edge and at most one reader
edge.  All functionality lives in the processes; channels only transfer
data.

The class is a container with structural operations only — semantics
live in :mod:`repro.spi.semantics` and :mod:`repro.sim`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ModelError, ValidationError
from .channels import Channel
from .process import Process


class ModelGraph:
    """A bipartite process/channel graph.

    Use :meth:`add_process` / :meth:`add_channel` / :meth:`connect` to
    build, then :meth:`validate` to check whole-model consistency.  The
    higher-level :class:`repro.spi.builder.GraphBuilder` wraps this with
    a more compact construction API.
    """

    def __init__(self, name: str = "system") -> None:
        if not name:
            raise ModelError("graph name must be non-empty")
        self.name = name
        self._processes: Dict[str, Process] = {}
        self._channels: Dict[str, Channel] = {}
        # Edges keyed by channel name: writer process and reader process.
        self._writer: Dict[str, str] = {}
        self._reader: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> Process:
        """Add a process node; names must be unique across node kinds."""
        self._check_fresh_name(process.name)
        self._processes[process.name] = process
        return process

    def add_channel(self, channel: Channel) -> Channel:
        """Add a channel node; names must be unique across node kinds."""
        self._check_fresh_name(channel.name)
        self._channels[channel.name] = channel
        return channel

    def connect(self, source: str, target: str) -> None:
        """Add a directed edge process->channel or channel->process."""
        if source in self._processes and target in self._channels:
            if target in self._writer:
                raise ModelError(
                    f"channel {target!r} already has writer "
                    f"{self._writer[target]!r}"
                )
            self._writer[target] = source
        elif source in self._channels and target in self._processes:
            if source in self._reader:
                raise ModelError(
                    f"channel {source!r} already has reader "
                    f"{self._reader[source]!r}"
                )
            self._reader[source] = target
        elif source in self._processes and target in self._processes:
            raise ModelError(
                f"edge {source!r} -> {target!r} connects two processes; "
                f"SPI graphs are bipartite (insert a channel)"
            )
        elif source in self._channels and target in self._channels:
            raise ModelError(
                f"edge {source!r} -> {target!r} connects two channels; "
                f"SPI graphs are bipartite (insert a process)"
            )
        else:
            missing = [n for n in (source, target)
                       if n not in self._processes and n not in self._channels]
            raise ModelError(f"unknown node(s) in edge: {missing}")

    def remove_process(self, name: str) -> Process:
        """Remove a process and all edges touching it."""
        try:
            process = self._processes.pop(name)
        except KeyError:
            raise ModelError(f"no process named {name!r}") from None
        self._writer = {c: p for c, p in self._writer.items() if p != name}
        self._reader = {c: p for c, p in self._reader.items() if p != name}
        return process

    def remove_channel(self, name: str) -> Channel:
        """Remove a channel and its writer/reader edges."""
        try:
            channel = self._channels.pop(name)
        except KeyError:
            raise ModelError(f"no channel named {name!r}") from None
        self._writer.pop(name, None)
        self._reader.pop(name, None)
        return channel

    def _check_fresh_name(self, name: str) -> None:
        if name in self._processes or name in self._channels:
            raise ModelError(f"node name {name!r} already used in graph")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processes(self) -> Dict[str, Process]:
        """Read-only view of processes by name."""
        return dict(self._processes)

    @property
    def channels(self) -> Dict[str, Channel]:
        """Read-only view of channels by name."""
        return dict(self._channels)

    def process(self, name: str) -> Process:
        """Look up a process by name."""
        try:
            return self._processes[name]
        except KeyError:
            raise ModelError(f"no process named {name!r}") from None

    def channel(self, name: str) -> Channel:
        """Look up a channel by name."""
        try:
            return self._channels[name]
        except KeyError:
            raise ModelError(f"no channel named {name!r}") from None

    def has_process(self, name: str) -> bool:
        """True if a process with this name exists."""
        return name in self._processes

    def has_channel(self, name: str) -> bool:
        """True if a channel with this name exists."""
        return name in self._channels

    def writer_of(self, channel: str) -> Optional[str]:
        """The process writing to ``channel``, or None (environment)."""
        self.channel(channel)
        return self._writer.get(channel)

    def reader_of(self, channel: str) -> Optional[str]:
        """The process reading from ``channel``, or None (environment)."""
        self.channel(channel)
        return self._reader.get(channel)

    def input_channels(self, process: str) -> Tuple[str, ...]:
        """Channels whose reader is ``process`` (sorted)."""
        self.process(process)
        return tuple(
            sorted(c for c, p in self._reader.items() if p == process)
        )

    def output_channels(self, process: str) -> Tuple[str, ...]:
        """Channels whose writer is ``process`` (sorted)."""
        self.process(process)
        return tuple(
            sorted(c for c, p in self._writer.items() if p == process)
        )

    def predecessors(self, process: str) -> Tuple[str, ...]:
        """Processes feeding ``process`` through one channel (sorted)."""
        result = set()
        for channel in self.input_channels(process):
            writer = self._writer.get(channel)
            if writer is not None:
                result.add(writer)
        return tuple(sorted(result))

    def successors(self, process: str) -> Tuple[str, ...]:
        """Processes fed by ``process`` through one channel (sorted)."""
        result = set()
        for channel in self.output_channels(process):
            reader = self._reader.get(channel)
            if reader is not None:
                result.add(reader)
        return tuple(sorted(result))

    def edges(self) -> List[Tuple[str, str]]:
        """All edges as (source, target) pairs, deterministically ordered."""
        result: List[Tuple[str, str]] = []
        for channel in sorted(self._writer):
            result.append((self._writer[channel], channel))
        for channel in sorted(self._reader):
            result.append((channel, self._reader[channel]))
        return result

    def __contains__(self, name: str) -> bool:
        return name in self._processes or name in self._channels

    def __len__(self) -> int:
        return len(self._processes) + len(self._channels)

    # ------------------------------------------------------------------
    # Whole-model validation
    # ------------------------------------------------------------------
    def issues(self) -> List[str]:
        """Collect structural problems without raising."""
        found: List[str] = []
        for name, process in sorted(self._processes.items()):
            declared_in = set(process.input_channels())
            declared_out = set(process.output_channels())
            wired_in = set(self.input_channels(name))
            wired_out = set(self.output_channels(name))
            for channel in declared_in - wired_in:
                found.append(
                    f"process {name!r} consumes from {channel!r} but no such "
                    f"input edge exists"
                )
            for channel in declared_out - wired_out:
                found.append(
                    f"process {name!r} produces on {channel!r} but no such "
                    f"output edge exists"
                )
            observed = set(process.activation.channels())
            for channel in observed:
                if channel not in self._channels:
                    found.append(
                        f"process {name!r} activation observes unknown "
                        f"channel {channel!r}"
                    )
        for name in sorted(self._channels):
            if name not in self._writer and not self._channels[name].virtual \
                    and not self._channels[name].initial_tokens:
                found.append(
                    f"channel {name!r} has no writer, is not virtual and "
                    f"holds no initial tokens"
                )
            if name not in self._reader and not self._channels[name].virtual:
                found.append(f"channel {name!r} has no reader and is not virtual")
        return found

    def validate(self) -> "ModelGraph":
        """Raise :class:`ValidationError` if any structural issue exists."""
        found = self.issues()
        if found:
            raise ValidationError(found)
        return self

    # ------------------------------------------------------------------
    # Transformation support
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "ModelGraph":
        """Shallow structural copy (nodes are immutable, edges copied)."""
        clone = ModelGraph(name or self.name)
        clone._processes = dict(self._processes)
        clone._channels = dict(self._channels)
        clone._writer = dict(self._writer)
        clone._reader = dict(self._reader)
        return clone

    def merge(self, other: "ModelGraph") -> "ModelGraph":
        """Add all nodes and edges of ``other`` into this graph."""
        for process in other._processes.values():
            self.add_process(process)
        for channel in other._channels.values():
            self.add_channel(channel)
        for channel, writer in other._writer.items():
            self._writer[channel] = writer
        for channel, reader in other._reader.items():
            self._reader[channel] = reader
        return self

    def replace_process(self, name: str, process: Process) -> None:
        """Swap the process object behind ``name`` keeping the wiring.

        The replacement must keep the same name; it is the caller's job
        to ensure the new process's channel references stay consistent
        (``validate`` will check).
        """
        if process.name != name:
            raise ModelError(
                f"replacement process is named {process.name!r}, "
                f"expected {name!r}"
            )
        self.process(name)
        self._processes[name] = process

    def same_structure(self, other: "ModelGraph") -> bool:
        """True if node names and edges coincide (parameters ignored)."""
        return (
            set(self._processes) == set(other._processes)
            and set(self._channels) == set(other._channels)
            and self._writer == other._writer
            and self._reader == other._reader
        )

    def stats(self) -> Dict[str, int]:
        """Element counts used by the Figure 2 accounting bench."""
        return {
            "processes": len(self._processes),
            "channels": len(self._channels),
            "edges": len(self._writer) + len(self._reader),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelGraph({self.name!r}, {len(self._processes)} processes, "
            f"{len(self._channels)} channels)"
        )
