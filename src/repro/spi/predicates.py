"""Input token predicates.

Activation rules and cluster selection rules are guarded by predicates
over the observable state of a process's (or interface's) input
channels.  Per the paper (§2), a predicate is 'true' or 'false'
depending on

* the **number of tokens** available on an input channel, and
* the **tag set of the first visible token** on that channel.

The example rules from the paper read, in this library::

    a1 = NumAvailable('c1', 1) & HasTag('c1', 'a')
    a2 = NumAvailable('c1', 3) & HasTag('c1', 'b')

Predicates are evaluated against any object implementing the
:class:`ChannelView` protocol (the simulator's channel states, the
untimed step semantics, or a hand-built mapping for tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Protocol, Tuple, runtime_checkable

from ..errors import ModelError
from .tags import TagSet, as_tagset


@runtime_checkable
class ChannelView(Protocol):
    """What a predicate may observe: token counts and first-token tags."""

    def available(self, channel: str) -> int:
        """Number of tokens currently visible on ``channel``."""
        ...

    def first_tags(self, channel: str) -> Optional[TagSet]:
        """Tag set of the first visible token, or None if empty."""
        ...


class MappingView:
    """A ChannelView over plain dictionaries, for tests and analysis.

    ``counts`` maps channel name to available token count; ``tags`` maps
    channel name to the tag set of the first visible token.
    """

    def __init__(
        self,
        counts: Optional[Mapping[str, int]] = None,
        tags: Optional[Mapping[str, object]] = None,
    ) -> None:
        self._counts = dict(counts or {})
        self._tags = {
            channel: as_tagset(value) for channel, value in (tags or {}).items()
        }

    def available(self, channel: str) -> int:
        return self._counts.get(channel, 0)

    def first_tags(self, channel: str) -> Optional[TagSet]:
        if self._counts.get(channel, 0) <= 0:
            return None
        return self._tags.get(channel, TagSet.empty())


class Predicate:
    """Base class for input token predicates.

    Predicates are immutable expression trees combinable with ``&``
    (and), ``|`` (or) and ``~`` (not).
    """

    def evaluate(self, view: ChannelView) -> bool:
        """Evaluate the predicate against a channel observation."""
        raise NotImplementedError

    def channels(self) -> Tuple[str, ...]:
        """All channel names the predicate observes (sorted, unique)."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __call__(self, view: ChannelView) -> bool:
        return self.evaluate(view)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always true — the guard of unconditional activation rules."""

    def evaluate(self, view: ChannelView) -> bool:
        return True

    def channels(self) -> Tuple[str, ...]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "true"


@dataclass(frozen=True)
class NumAvailable(Predicate):
    """``available(channel) >= minimum`` — the paper's ``num(c) >= k``."""

    channel: str
    minimum: int

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ModelError("NumAvailable minimum must be non-negative")

    def evaluate(self, view: ChannelView) -> bool:
        return view.available(self.channel) >= self.minimum

    def channels(self) -> Tuple[str, ...]:
        return (self.channel,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"num({self.channel}) >= {self.minimum}"


@dataclass(frozen=True)
class HasTag(Predicate):
    """``tag in first_visible_token(channel).tags``.

    False when the channel is empty: a tag cannot be observed without a
    token to carry it.
    """

    channel: str
    tag: str

    def __post_init__(self) -> None:
        if not self.tag:
            raise ModelError("HasTag tag must be non-empty")

    def evaluate(self, view: ChannelView) -> bool:
        tags = view.first_tags(self.channel)
        return tags is not None and self.tag in tags

    def channels(self) -> Tuple[str, ...]:
        return (self.channel,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tag!r} in {self.channel}.tag"


@dataclass(frozen=True)
class HasAnyTag(Predicate):
    """True if the first visible token carries any of the given tags."""

    channel: str
    tags: TagSet

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", as_tagset(self.tags))
        if not self.tags:
            raise ModelError("HasAnyTag requires at least one tag")

    def evaluate(self, view: ChannelView) -> bool:
        observed = view.first_tags(self.channel)
        return observed is not None and not self.tags.isdisjoint(observed)

    def channels(self) -> Tuple[str, ...]:
        return (self.channel,)


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of sub-predicates."""

    operands: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))
        if not self.operands:
            raise ModelError("And requires at least one operand")

    def evaluate(self, view: ChannelView) -> bool:
        return all(operand.evaluate(view) for operand in self.operands)

    def channels(self) -> Tuple[str, ...]:
        return _merged_channels(self.operands)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " and ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of sub-predicates."""

    operands: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))
        if not self.operands:
            raise ModelError("Or requires at least one operand")

    def evaluate(self, view: ChannelView) -> bool:
        return any(operand.evaluate(view) for operand in self.operands)

    def channels(self) -> Tuple[str, ...]:
        return _merged_channels(self.operands)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " or ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a sub-predicate."""

    operand: Predicate

    def evaluate(self, view: ChannelView) -> bool:
        return not self.operand.evaluate(view)

    def channels(self) -> Tuple[str, ...]:
        return self.operand.channels()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"not {self.operand!r}"


def tokens_with_tag(channel: str, minimum: int, tag: str) -> Predicate:
    """The paper's canonical rule guard: count threshold plus tag test.

    ``tokens_with_tag('c1', 3, 'b')`` is rule ``a2`` of the paper:
    at least 3 tokens on ``c1`` and 'b' in the first token's tag set.
    """
    return And((NumAvailable(channel, minimum), HasTag(channel, tag)))


def _merged_channels(operands: Iterable[Predicate]) -> Tuple[str, ...]:
    merged = set()
    for operand in operands:
        merged.update(operand.channels())
    return tuple(sorted(merged))
