"""The paper's Figure 1: the introductory SPI example.

A three-process chain ``p1 -> c1 -> p2 -> c2 -> p3``:

* ``p1`` is completely determinate: it consumes 1 token (from the
  environment channel ``c0``), produces 2 tokens on ``c1``, latency
  1 ms.  It attaches one of the virtual mode tags ``'a'`` / ``'b'`` to
  every token it produces.
* ``p2`` is specified with intervals — consumption [1, 3] from ``c1``,
  production [2, 5] on ``c2``, latency [3, 5] ms — made precise by two
  modes::

      m1   3 ms   consume 1   produce 2
      m2   5 ms   consume 3   produce 5

  and the activation rules of the paper::

      a1 : c1.num >= 1  and  'a' in c1.tag  ->  m1
      a2 : c1.num >= 3  and  'b' in c1.tag  ->  m2

* ``p3`` consumes 1 token from ``c2``, latency 3 ms (environment sink
  side of the example).

``build_graph`` exposes the tag regime so the determinacy story is
testable: with ``p1_tag='a'`` the system is completely determinate in
mode ``m1``; with ``'b'`` in mode ``m2``; with ``p1_tag=None`` no
activation rule of ``p2`` is ever enabled and ``p2`` never executes
(paper: "if there is no tag on the first visible token on channel c1,
no activation rule is enabled and the process is not activated").
"""

from __future__ import annotations

from typing import Optional

from ..spi.activation import rules
from ..spi.builder import GraphBuilder
from ..spi.graph import ModelGraph
from ..spi.intervals import Interval
from ..spi.modes import ProcessMode
from ..spi.predicates import tokens_with_tag
from ..spi.process import Process
from ..spi.tokens import make_tokens

#: Mode table of p2, exactly as printed in the paper.
P2_MODES = {
    "m1": {"latency": 3.0, "consume": 1, "produce": 2},
    "m2": {"latency": 5.0, "consume": 3, "produce": 5},
}


def build_p2() -> Process:
    """Process ``p2`` with its two modes and activation rules a1/a2."""
    m1 = ProcessMode(
        name="m1",
        latency=P2_MODES["m1"]["latency"],
        consumes={"c1": P2_MODES["m1"]["consume"]},
        produces={"c2": P2_MODES["m1"]["produce"]},
    )
    m2 = ProcessMode(
        name="m2",
        latency=P2_MODES["m2"]["latency"],
        consumes={"c1": P2_MODES["m2"]["consume"]},
        produces={"c2": P2_MODES["m2"]["produce"]},
    )
    activation = rules(
        ("a1", tokens_with_tag("c1", 1, "a"), "m1"),
        ("a2", tokens_with_tag("c1", 3, "b"), "m2"),
    )
    return Process(name="p2", modes={"m1": m1, "m2": m2}, activation=activation)


def build_graph(
    p1_tag: Optional[str] = "a", input_tokens: int = 12
) -> ModelGraph:
    """The Figure 1 chain, fed with ``input_tokens`` environment tokens.

    ``p1_tag`` controls which tag ``p1`` attaches to produced tokens
    (``'a'``, ``'b'``, or None for untagged tokens).
    """
    builder = GraphBuilder("figure1")
    builder.queue("c0", initial_tokens=make_tokens(input_tokens))
    builder.queue("c1")
    builder.queue("c2")
    builder.simple(
        "p1",
        latency=1.0,
        consumes={"c0": 1},
        produces={"c1": 2},
        out_tags={"c1": p1_tag} if p1_tag is not None else None,
    )
    builder.process(build_p2())
    builder.simple("p3", latency=3.0, consumes={"c2": 1}, virtual=True)
    return builder.build(validate=False)


def interval_summary(graph: ModelGraph) -> dict:
    """The abstract (interval) behavior the paper annotates in Figure 1."""
    p2 = graph.process("p2")
    return {
        "p1_latency": graph.process("p1").latency_bounds(),
        "p2_latency": p2.latency_bounds(),
        "p2_consumes_c1": p2.consumption_bounds("c1"),
        "p2_produces_c2": p2.production_bounds("c2"),
        "p3_latency": graph.process("p3").latency_bounds(),
    }


def expected_intervals() -> dict:
    """The parameter intervals printed in the paper's Figure 1."""
    return {
        "p1_latency": Interval.point(1.0),
        "p2_latency": Interval(3.0, 5.0),
        "p2_consumes_c1": Interval(1, 3),
        "p2_produces_c2": Interval(2, 5),
        "p3_latency": Interval.point(3.0),
    }
