"""The paper's example systems and the synthetic workload generator.

* :mod:`~repro.apps.figure1` — the introductory SPI example;
* :mod:`~repro.apps.figure2` — the two-variant system behind Table 1,
  with the calibrated component library;
* :mod:`~repro.apps.figure3` — run-time variant selection;
* :mod:`~repro.apps.video` — the reconfigurable video system;
* :mod:`~repro.apps.generators` — seeded synthetic variant systems for
  the scaling/ordering benches.
"""

from . import figure1, figure2, figure3, generators, video

__all__ = ["figure1", "figure2", "figure3", "generators", "video"]
