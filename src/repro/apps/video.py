"""The paper's Figure 4: an industrial reconfigurable video system.

Rebuilt from the paper's description (the original is an internal
TU Braunschweig image-engine platform report, ref [3]; see DESIGN.md
substitutions):

* a processing chain ``VIn -> PIn -> P1 -> P2 -> POut -> VOut`` over a
  synthetic video stream;
* ``P1`` and ``P2`` each carry a set of function variants, abstracted
  to configured processes via
  :func:`repro.variants.extraction.extract_dynamic_interface`;
* ``PControl`` reacts to user requests: it sends 'suspend' requests to
  the valves ``PIn``/``POut`` and reconfiguration requests (tagged
  tokens) to ``P1``/``P2``, awaits both confirmations, then sends
  'resume' to ``PIn``; ``PIn`` tags the first image passed after
  resuming and ``POut`` returns to its normal mode when that tag
  arrives;
* the valves guarantee that no *invalid* image — one whose processing
  overlapped a reconfiguration of ``P1`` or ``P2`` — reaches the
  display: while suspended, ``PIn`` destroys all input data and
  ``POut`` replaces chain output by the last completely modified image
  (tagged ``'repeat'`` here);
* ``PControl`` keeps its state on the feedback register ``CCTRL``
  exactly as the paper describes.

``build_video_system(with_valves=False)`` is the Figure 4 ablation: the
valves become plain pass-through stages and invalid images reach the
display during reconfiguration.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from ..sim.engine import Simulator
from ..sim.monitors import FrameValidityMonitor
from ..sim.trace import Trace
from ..spi.activation import ActivationFunction, ActivationRule
from ..spi.builder import GraphBuilder
from ..spi.graph import ModelGraph
from ..spi.modes import ProcessMode
from ..spi.predicates import HasTag, NumAvailable
from ..spi.process import Process
from ..spi.tags import TagSet
from ..spi.tokens import Token
from ..spi.virtuality import sink, source
from ..variants.cluster import Cluster
from ..variants.extraction import (
    ExtractionOptions,
    extract_dynamic_interface,
)
from ..variants.interface import Interface
from ..variants.selection import ClusterSelectionFunction
from ..variants.types import VariantKind

#: Variant sets of the two chain stages (name -> processing latency, ms).
P1_VARIANTS = {"v1a": 8.0, "v1b": 12.0}
P2_VARIANTS = {"v2a": 8.0, "v2b": 10.0}

#: Reconfiguration latencies t_conf per variant, ms.
CONFIG_LATENCY = {"v1a": 20.0, "v1b": 25.0, "v2a": 15.0, "v2b": 18.0}

#: Default stimulus: two user requests mid-stream.
DEFAULT_REQUESTS: Tuple[Tuple[str, str], ...] = (
    ("v1b", "v2b"),
    ("v1a", "v2a"),
)


def _stage_cluster(name: str, latency: float) -> Cluster:
    """A single-process variant cluster for one chain stage."""
    builder = GraphBuilder(name)
    builder.queue("i")
    builder.queue("o")
    builder.simple(
        "proc",
        latency=latency,
        consumes={"i": 1},
        produces={"o": 1},
        out_tags={"o": "img"},
        pass_tags=("o",),
    )
    return Cluster(
        name=name,
        inputs=("i",),
        outputs=("o",),
        graph=builder.build(validate=False),
    )


def _stage_interface(
    name: str,
    variants: Dict[str, float],
    request_channel: str,
    initial: str,
) -> Interface:
    """The variant set of one chain stage as a dynamic interface."""
    clusters = {
        variant: _stage_cluster(variant, latency)
        for variant, latency in variants.items()
    }
    selection = ClusterSelectionFunction.by_tag(
        request_channel,
        {f"sel:{variant}": variant for variant in variants},
    )
    return Interface(
        name=name,
        inputs=("i",),
        outputs=("o",),
        clusters=clusters,
        selection=selection,
        config_latency={v: CONFIG_LATENCY[v] for v in variants},
        initial_cluster=initial,
        kind=VariantKind.DYNAMIC,
    )


def _valve_in() -> Tuple[Process, List[str]]:
    """The input valve PIn with its normal/suspended/resuming modes."""
    state = "PInState"
    modes = {
        "ctl_suspend": ProcessMode(
            name="ctl_suspend",
            latency=0.5,
            consumes={"CSusIn": 1},
            produces={state: 1},
            out_tags={state: TagSet.of("suspended")},
        ),
        "ctl_resume": ProcessMode(
            name="ctl_resume",
            latency=0.5,
            consumes={"CSusIn": 1},
            produces={state: 1},
            out_tags={state: TagSet.of("resuming")},
        ),
        "pass_first": ProcessMode(
            name="pass_first",
            latency=0.5,
            consumes={"CVin": 1},
            produces={"CV1": 1, state: 1},
            out_tags={
                "CV1": TagSet.of("img", "fresh"),
                state: TagSet.of("normal"),
            },
        ),
        "pass": ProcessMode(
            name="pass",
            latency=0.5,
            consumes={"CVin": 1},
            produces={"CV1": 1},
            out_tags={"CV1": TagSet.of("img")},
        ),
        "drop": ProcessMode(
            name="drop",
            latency=0.5,
            consumes={"CVin": 1},
        ),
    }
    activation = ActivationFunction.of(
        ActivationRule(
            "r_suspend",
            NumAvailable("CSusIn", 1) & HasTag("CSusIn", "suspend"),
            "ctl_suspend",
        ),
        ActivationRule(
            "r_resume",
            NumAvailable("CSusIn", 1) & HasTag("CSusIn", "resume"),
            "ctl_resume",
        ),
        ActivationRule(
            "r_first",
            NumAvailable("CVin", 1) & HasTag(state, "resuming"),
            "pass_first",
        ),
        ActivationRule(
            "r_pass",
            NumAvailable("CVin", 1) & HasTag(state, "normal"),
            "pass",
        ),
        ActivationRule(
            "r_drop",
            NumAvailable("CVin", 1) & HasTag(state, "suspended"),
            "drop",
        ),
    )
    process = Process(name="PIn", modes=modes, activation=activation)
    return process, [state]


def _valve_out() -> Tuple[Process, List[str]]:
    """The output valve POut: pass / repeat-last / resume-on-tag."""
    state = "POutState"
    modes = {
        "ctl_suspend": ProcessMode(
            name="ctl_suspend",
            latency=0.5,
            consumes={"CSusOut": 1},
            produces={state: 1},
            out_tags={state: TagSet.of("suspended")},
        ),
        "resume_pass": ProcessMode(
            name="resume_pass",
            latency=0.5,
            consumes={"CV3": 1},
            produces={"CVout": 1, state: 1},
            out_tags={
                "CVout": TagSet.of("img", "fresh"),
                state: TagSet.of("normal"),
            },
        ),
        "pass": ProcessMode(
            name="pass",
            latency=0.5,
            consumes={"CV3": 1},
            produces={"CVout": 1},
            out_tags={"CVout": TagSet.of("img")},
        ),
        "repeat_last": ProcessMode(
            name="repeat_last",
            latency=0.5,
            consumes={"CV3": 1},
            produces={"CVout": 1},
            out_tags={"CVout": TagSet.of("img", "repeat")},
        ),
    }
    activation = ActivationFunction.of(
        ActivationRule(
            "r_suspend",
            NumAvailable("CSusOut", 1) & HasTag("CSusOut", "suspend"),
            "ctl_suspend",
        ),
        ActivationRule(
            "r_fresh",
            NumAvailable("CV3", 1)
            & HasTag("CV3", "fresh")
            & HasTag(state, "suspended"),
            "resume_pass",
        ),
        ActivationRule(
            "r_pass",
            NumAvailable("CV3", 1) & HasTag(state, "normal"),
            "pass",
        ),
        ActivationRule(
            "r_repeat",
            NumAvailable("CV3", 1) & HasTag(state, "suspended"),
            "repeat_last",
        ),
    )
    process = Process(name="POut", modes=modes, activation=activation)
    return process, [state]


def _controller(
    combos: Sequence[Tuple[str, str]], with_valves: bool
) -> Process:
    """PControl: dispatch requests, await confirmations, resume.

    One dispatch mode per possible (P1 variant, P2 variant) combination
    plus the finish mode; state is kept on the CCTRL feedback register
    (idle / waiting) exactly as in the paper.
    """
    modes: Dict[str, ProcessMode] = {}
    rules: List[ActivationRule] = []
    for p1_variant, p2_variant in combos:
        name = f"dispatch_{p1_variant}_{p2_variant}"
        tag = f"cfg:{p1_variant}|{p2_variant}"
        produces = {
            "CReq1": 1,
            "CReq2": 1,
            "CCTRL": 1,
        }
        out_tags = {
            "CReq1": TagSet.of(f"sel:{p1_variant}"),
            "CReq2": TagSet.of(f"sel:{p2_variant}"),
            "CCTRL": TagSet.of("waiting"),
        }
        if with_valves:
            produces["CSusIn"] = 1
            produces["CSusOut"] = 1
            out_tags["CSusIn"] = TagSet.of("suspend")
            out_tags["CSusOut"] = TagSet.of("suspend")
        modes[name] = ProcessMode(
            name=name,
            latency=0.5,
            consumes={"CUser": 1},
            produces=produces,
            out_tags=out_tags,
        )
        rules.append(
            ActivationRule(
                f"r_{name}",
                NumAvailable("CUser", 1)
                & HasTag("CUser", tag)
                & HasTag("CCTRL", "idle"),
                name,
            )
        )

    finish_produces = {"CCTRL": 1}
    finish_tags = {"CCTRL": TagSet.of("idle")}
    if with_valves:
        finish_produces["CSusIn"] = 1
        finish_tags["CSusIn"] = TagSet.of("resume")
    modes["finish"] = ProcessMode(
        name="finish",
        latency=0.5,
        consumes={"CCon1": 1, "CCon2": 1},
        produces=finish_produces,
        out_tags=finish_tags,
    )
    rules.append(
        ActivationRule(
            "r_finish",
            NumAvailable("CCon1", 1)
            & NumAvailable("CCon2", 1)
            & HasTag("CCTRL", "waiting"),
            "finish",
        )
    )
    return Process(
        name="PControl",
        modes=modes,
        activation=ActivationFunction(tuple(rules)),
    )


def _user(
    requests: Sequence[Tuple[str, str]],
    start: float,
    gap: float,
) -> Process:
    """PUser: issues the request sequence at fixed times.

    State is a phase token on a self-loop queue (the CSDF encoding), so
    each firing emits the next request of the script.
    """
    modes: Dict[str, ProcessMode] = {}
    rules: List[ActivationRule] = []
    for index, (p1_variant, p2_variant) in enumerate(requests):
        name = f"req{index}"
        modes[name] = ProcessMode(
            name=name,
            latency=0.0,
            consumes={"CUserPhase": 1},
            produces={"CUser": 1, "CUserPhase": 1},
            out_tags={
                "CUser": TagSet.of(f"cfg:{p1_variant}|{p2_variant}"),
                "CUserPhase": TagSet.of(f"rq{index + 1}"),
            },
        )
        rules.append(
            ActivationRule(
                f"r_req{index}",
                NumAvailable("CUserPhase", 1)
                & HasTag("CUserPhase", f"rq{index}"),
                name,
            )
        )
    return Process(
        name="PUser",
        modes=modes,
        activation=ActivationFunction(tuple(rules)),
        virtual=True,
        period=gap,
        release_time=start,
        max_firings=len(requests),
    )


def build_video_system(
    n_frames: int = 100,
    frame_period: float = 40.0,
    requests: Sequence[Tuple[str, str]] = DEFAULT_REQUESTS,
    request_start: float = 1200.0,
    request_gap: float = 1600.0,
    with_valves: bool = True,
) -> ModelGraph:
    """Assemble the complete Figure 4 model graph."""
    builder = GraphBuilder("figure4" if with_valves else "figure4.novalves")
    # Stream channels.
    builder.queue("CVin")
    builder.queue("CV1")
    builder.queue("CV2")
    builder.queue("CV3")
    builder.queue("CVout")
    # Control channels.
    builder.queue("CUser")
    builder.queue(
        "CUserPhase", initial_tokens=[Token(tags=TagSet.of("rq0"))]
    )
    builder.queue("CReq1")
    builder.queue("CCon1")
    builder.queue("CReq2")
    builder.queue("CCon2")
    builder.register(
        "CCTRL", initial_tokens=[Token(tags=TagSet.of("idle"))]
    )
    if with_valves:
        builder.queue("CSusIn")
        builder.queue("CSusOut")
        builder.register(
            "PInState", initial_tokens=[Token(tags=TagSet.of("normal"))]
        )
        builder.register(
            "POutState", initial_tokens=[Token(tags=TagSet.of("normal"))]
        )

    # Environment.
    builder.process(
        source(
            "VIn",
            "CVin",
            tags="img",
            period=frame_period,
            max_firings=n_frames,
        )
    )
    builder.process(sink("VOut", "CVout"))
    builder.process(_user(requests, request_start, request_gap))

    # Valves (or plain pass-through stages for the ablation).
    if with_valves:
        valve_in, _ = _valve_in()
        builder.process(valve_in)
        valve_out, _ = _valve_out()
        builder.process(valve_out)
    else:
        builder.simple(
            "PIn",
            latency=0.5,
            consumes={"CVin": 1},
            produces={"CV1": 1},
            out_tags={"CV1": "img"},
        )
        builder.simple(
            "POut",
            latency=0.5,
            consumes={"CV3": 1},
            produces={"CVout": 1},
            out_tags={"CVout": "img"},
        )

    # The two reconfigurable chain stages.
    options = ExtractionOptions(name="P1")
    extraction1 = extract_dynamic_interface(
        _stage_interface("thetaP1", P1_VARIANTS, "CReq1", "v1a"),
        {"i": "CV1", "o": "CV2"},
        request_channel="CReq1",
        confirm_channel="CCon1",
        options=options,
    )
    builder.channel(extraction1.state_channel)
    builder.process(extraction1.process)

    extraction2 = extract_dynamic_interface(
        _stage_interface("thetaP2", P2_VARIANTS, "CReq2", "v2a"),
        {"i": "CV2", "o": "CV3"},
        request_channel="CReq2",
        confirm_channel="CCon2",
        options=ExtractionOptions(name="P2"),
    )
    builder.channel(extraction2.state_channel)
    builder.process(extraction2.process)

    builder.process(
        _controller(
            list(itertools.product(P1_VARIANTS, P2_VARIANTS)), with_valves
        )
    )
    return builder.build(validate=False)


def run_video(
    n_frames: int = 100,
    with_valves: bool = True,
    **kwargs,
) -> Tuple[Trace, ModelGraph]:
    """Build and simulate the video system; returns (trace, graph)."""
    graph = build_video_system(
        n_frames=n_frames, with_valves=with_valves, **kwargs
    )
    simulator = Simulator(graph)
    trace = simulator.run()
    return trace, graph


def video_synthesis_system(
    n_stages: int = 2,
    variants_per_stage: int = 2,
    seed: int = 0,
    frame_period: float = 40.0,
    max_processors: int = 1,
    processor_cost: float = 8.0,
):
    """The video chain as a *synthesis* workload (variant graph form).

    Where :func:`build_video_system` reproduces Figure 4 for the
    simulator, this builds the same ``VIn -> PIn -> P1 … Pn -> POut ->
    VOut`` chain as a :class:`~repro.variants.vgraph.VariantGraph` for
    the co-synthesis layer: every chain stage is a variant interface
    whose clusters are the stage's function variants, and the valves
    are common (variant-independent) units.  Utilizations derive from
    per-variant processing latencies against ``frame_period`` (WCET /
    period), quantized onto the exact ``1/64`` grid so the integer
    kernel is bit-exact; hardware costs scale with how demanding the
    variant is.  Seeded and deterministic.

    Degenerate shapes are first-class (the scenario zoo leans on
    them): ``variants_per_stage=1`` yields a single-variant space
    (one consistent selection, empty choice), and ``n_stages=1`` a
    minimal pipeline.  Returns a
    :class:`~repro.apps.generators.GeneratedSystem`.
    """
    import random

    from ..synth.architecture import ArchitectureTemplate
    from ..synth.library import ComponentLibrary
    from ..variants.vgraph import VariantGraph
    from .generators import GeneratedSystem

    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    if variants_per_stage < 1:
        raise ValueError("variants_per_stage must be >= 1")
    rng = random.Random(seed)

    vgraph = VariantGraph(f"video{seed}_p{n_stages}")
    builder = GraphBuilder("common")
    builder.queue("CVin")
    for stage in range(n_stages + 1):
        builder.queue(f"CV{stage}")
    builder.queue("CVout")
    builder.process(
        source("VIn", "CVin", tags="img", period=frame_period, max_firings=4)
    )
    builder.process(sink("VOut", "CVout"))
    builder.simple(
        "PIn",
        latency=0.5,
        consumes={"CVin": 1},
        produces={"CV0": 1},
        out_tags={"CV0": "img"},
    )
    builder.simple(
        "POut",
        latency=0.5,
        consumes={f"CV{n_stages}": 1},
        produces={"CVout": 1},
        out_tags={"CVout": "img"},
    )
    vgraph.base = builder.build(validate=False)

    library = ComponentLibrary()
    for valve in ("PIn", "POut"):
        library.component(
            valve,
            sw_utilization=rng.randint(1, 3) / 64,
            hw_cost=rng.randint(2, 6),
        )

    for stage in range(1, n_stages + 1):
        variants = {
            f"v{stage}{chr(ord('a') + v)}": float(
                rng.randint(4, 16)
            )  # per-variant processing latency, ms
            for v in range(variants_per_stage)
        }
        clusters = {
            name: _stage_cluster(name, latency)
            for name, latency in variants.items()
        }
        vgraph.add_interface(
            Interface(
                name=f"thetaP{stage}",
                inputs=("i",),
                outputs=("o",),
                clusters=clusters,
                selection=ClusterSelectionFunction.by_tag(
                    f"CV{stage - 1}",
                    {f"Q_{name}": name for name in sorted(clusters)},
                ),
                kind=VariantKind.RUNTIME,
            ),
            {"i": f"CV{stage - 1}", "o": f"CV{stage}"},
        )
        for name, latency in variants.items():
            # WCET/period on the exact grid; faster variants cost more
            # silicon when moved to hardware.
            utilization = (
                max(1, round(latency / frame_period * 64)) / 64
            )
            library.component(
                f"thetaP{stage}.{name}.proc",
                sw_utilization=utilization,
                hw_cost=rng.randint(8, 14)
                + round(16 * (1 - latency / 16)),
            )

    architecture = ArchitectureTemplate(
        name="video-platform",
        max_processors=max_processors,
        processor_cost=processor_cost,
        processor_capacity=1.0,
    )
    return GeneratedSystem(
        vgraph=vgraph,
        library=library,
        architecture=architecture,
        params={
            "seed": seed,
            "n_stages": n_stages,
            "variants_per_stage": variants_per_stage,
            "frame_period": frame_period,
        },
    )


def video_report(trace: Trace) -> Dict[str, object]:
    """Frame accounting and reconfiguration summary of one run."""
    monitor = FrameValidityMonitor(
        "CVout", ["P1", "P2"], repeat_tag="repeat"
    )
    reports = monitor.analyze(trace)
    invalid = [r for r in reports if not r.valid]
    repeats = [r for r in reports if r.is_repeat]
    fresh = [r for r in reports if "fresh" in r.token.tags]
    return {
        "frames_captured": trace.firing_count("VIn"),
        "frames_displayed": len(reports),
        "frames_dropped_at_valve": len(
            [f for f in trace.firings_of("PIn") if f.mode == "drop"]
        ),
        "frames_repeated": len(repeats),
        "frames_fresh_after_resume": len(fresh),
        "invalid_frames_displayed": len(invalid),
        "reconfigurations": [
            (r.process, r.to_configuration, r.time, r.latency)
            for r in trace.reconfigurations
        ],
        "reconfiguration_time": trace.total_reconfiguration_time(),
    }
