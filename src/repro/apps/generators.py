"""Synthetic variant-system generator for the scaling experiments.

The paper's quantitative evaluation is one hand-made example; the X1/X2
benches extend it with parameterized synthetic systems: a common
process chain wrapped around one (or more) interfaces with ``n``
variant clusters each.  Knobs:

* ``n_variants`` — clusters per interface (the paper's claim is that
  the variant-aware advantage grows with the number of variants);
* ``common_fraction`` — share of the total design effort and load that
  sits in the common part (the "overlap" between applications);
* ``cluster_size`` — processes per cluster.

Everything is seeded and deterministic.  Every unit gets both a
software and a hardware option so all flows stay feasible; utilizations
are scaled so one processor can always host the common part plus the
largest cluster (making the variant-aware sharing opportunity real but
not trivial).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from ..spi.builder import GraphBuilder
from ..spi.graph import ModelGraph
from ..spi.virtuality import sink, source
from ..synth.architecture import ArchitectureTemplate
from ..synth.library import ComponentLibrary
from ..variants.cluster import Cluster
from ..variants.interface import Interface
from ..variants.types import VariantKind
from ..variants.vgraph import VariantGraph


@dataclass
class GeneratedSystem:
    """A synthetic benchmark instance."""

    vgraph: VariantGraph
    library: ComponentLibrary
    architecture: ArchitectureTemplate
    params: Dict[str, object] = field(default_factory=dict)

    def applications(self) -> Dict[str, ModelGraph]:
        """All fully bound single-variant applications."""
        apps: Dict[str, ModelGraph] = {}
        for index, selection in enumerate(
            self.vgraph.enumerate_selections(), start=1
        ):
            apps[f"app{index}"] = self.vgraph.bind(
                selection, name=f"app{index}"
            )
        return apps


def _pipeline_cluster(
    name: str, size: int, rng: random.Random
) -> Cluster:
    """A linear pipeline cluster with ``size`` single-mode processes."""
    builder = GraphBuilder(name)
    builder.queue("i")
    builder.queue("o")
    for stage in range(size - 1):
        builder.queue(f"x{stage}")
    for stage in range(size):
        inp = "i" if stage == 0 else f"x{stage - 1}"
        out = "o" if stage == size - 1 else f"x{stage}"
        builder.simple(
            f"s{stage}",
            latency=round(rng.uniform(1.0, 6.0), 2),
            consumes={inp: 1},
            produces={out: 1},
        )
    return Cluster(
        name=name,
        inputs=("i",),
        outputs=("o",),
        graph=builder.build(validate=False),
    )


def generate_system(
    seed: int = 0,
    n_variants: int = 2,
    common_processes: int = 2,
    cluster_size: int = 2,
    common_fraction: float = 0.5,
    processor_cost: float = 15.0,
) -> GeneratedSystem:
    """One synthetic system with a single interface of ``n_variants``.

    ``common_fraction`` steers how much utilization/effort lives in the
    common chain relative to one cluster; higher overlap means more
    sharing for the variant-aware flow to exploit.
    """
    if n_variants < 1:
        raise ValueError("n_variants must be >= 1")
    if common_processes < 1:
        raise ValueError("common_processes must be >= 1")
    rng = random.Random(seed)

    vgraph = VariantGraph(f"gen{seed}_v{n_variants}")
    builder = GraphBuilder("common")
    builder.queue("Cin")
    builder.queue("Cmid")
    builder.queue("Cout")
    builder.process(source("VSrc", "Cin", max_firings=8))
    builder.process(sink("VSnk", "Cout"))
    for index in range(common_processes):
        inp = "Cin" if index == 0 else f"Cc{index - 1}"
        out = "Cmid" if index == common_processes - 1 else f"Cc{index}"
        if out != "Cmid":
            builder.queue(out)
        builder.simple(
            f"K{index}",
            latency=round(rng.uniform(1.0, 4.0), 2),
            consumes={inp: 1},
            produces={out: 1},
        )
    vgraph.base = builder.build(validate=False)

    clusters = {
        f"var{v}": _pipeline_cluster(f"var{v}", cluster_size, rng)
        for v in range(n_variants)
    }
    interface = Interface(
        name="theta",
        inputs=("i",),
        outputs=("o",),
        clusters=clusters,
        kind=VariantKind.PRODUCTION,
    )
    vgraph.add_interface(interface, {"i": "Cmid", "o": "Cout"})

    # Utilization budget: the common chain takes `common_fraction` of a
    # processor, each cluster a share of the rest, so that
    # common + max_cluster fits one processor but common + sum does not
    # (for n_variants >= 2): the sharing opportunity is real.
    library = ComponentLibrary()
    common_budget = common_fraction * 0.9
    cluster_budget = 0.9 - common_budget
    for index in range(common_processes):
        share = common_budget / common_processes
        utilization = round(share * rng.uniform(0.8, 1.2), 4)
        library.component(
            f"K{index}",
            sw_utilization=utilization,
            hw_cost=round(20 * utilization + rng.uniform(2, 8), 2),
            effort=round(8 * rng.uniform(0.8, 1.4), 2),
        )
    for variant, cluster in clusters.items():
        for process_name in cluster.process_names():
            share = cluster_budget / cluster_size
            utilization = round(share * rng.uniform(0.8, 1.0), 4)
            library.component(
                f"theta.{variant}.{process_name}",
                sw_utilization=utilization,
                hw_cost=round(25 * utilization + rng.uniform(3, 9), 2),
                effort=round(10 * rng.uniform(0.8, 1.4), 2),
            )

    architecture = ArchitectureTemplate(
        name="gen-core-plus-asics",
        max_processors=1,
        processor_cost=processor_cost,
        processor_capacity=1.0,
    )
    return GeneratedSystem(
        vgraph=vgraph,
        library=library,
        architecture=architecture,
        params={
            "seed": seed,
            "n_variants": n_variants,
            "common_processes": common_processes,
            "cluster_size": cluster_size,
            "common_fraction": common_fraction,
        },
    )


def generate_chained_system(
    seed: int = 0,
    n_interfaces: int = 2,
    n_variants: int = 2,
    common_processes: int = 2,
    cluster_size: int = 1,
    processor_cost: float = 12.0,
    processor_capacity: float = 1.0,
) -> GeneratedSystem:
    """A chain of ``n_interfaces`` variant sets on one common stream.

    Generalizes :func:`generate_system` (kept byte-stable for the
    committed bench baselines) to several interfaces ``theta0 …
    theta<n-1>`` spliced back to back: interface ``i`` reads channel
    ``Cm<i>`` and writes ``Cm<i+1>``.  Selections are independent, so
    the variant space enumerates ``n_variants ** n_interfaces``
    consistent selections — the multi-variant-set system of paper §1.

    Degenerate shapes are supported deliberately: ``n_variants=1``
    yields a single-variant space (exactly one selection), and
    ``n_interfaces`` with ``common_processes`` at their minimums give
    the smallest pipelines the zoo's edge-case tests lean on.
    """
    if n_interfaces < 1:
        raise ValueError("n_interfaces must be >= 1")
    if n_variants < 1:
        raise ValueError("n_variants must be >= 1")
    if common_processes < 1:
        raise ValueError("common_processes must be >= 1")
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    rng = random.Random(seed)

    vgraph = VariantGraph(f"chain{seed}_i{n_interfaces}_v{n_variants}")
    builder = GraphBuilder("common")
    builder.queue("Cin")
    for index in range(n_interfaces + 1):
        builder.queue(f"Cm{index}")
    builder.process(source("VSrc", "Cin", max_firings=8))
    builder.process(sink("VSnk", f"Cm{n_interfaces}"))
    for index in range(common_processes):
        inp = "Cin" if index == 0 else f"Cc{index - 1}"
        out = "Cm0" if index == common_processes - 1 else f"Cc{index}"
        if out != "Cm0":
            builder.queue(out)
        builder.simple(
            f"K{index}",
            latency=round(rng.uniform(1.0, 4.0), 2),
            consumes={inp: 1},
            produces={out: 1},
        )
    vgraph.base = builder.build(validate=False)

    library = ComponentLibrary()
    for index in range(common_processes):
        library.component(
            f"K{index}",
            sw_utilization=rng.randint(2, 8) / 64,
            hw_cost=rng.randint(4, 12),
        )

    for iface_index in range(n_interfaces):
        clusters = {
            f"var{v}": _pipeline_cluster(
                f"var{v}", cluster_size, rng
            )
            for v in range(n_variants)
        }
        interface = Interface(
            name=f"theta{iface_index}",
            inputs=("i",),
            outputs=("o",),
            clusters=clusters,
            kind=VariantKind.PRODUCTION,
        )
        vgraph.add_interface(
            interface,
            {"i": f"Cm{iface_index}", "o": f"Cm{iface_index + 1}"},
        )
        for variant, cluster in clusters.items():
            for process_name in cluster.process_names():
                library.component(
                    f"theta{iface_index}.{variant}.{process_name}",
                    sw_utilization=rng.randint(2, 12) / 64,
                    hw_cost=rng.randint(5, 15),
                )

    architecture = ArchitectureTemplate(
        name="gen-chained",
        max_processors=1,
        processor_cost=processor_cost,
        processor_capacity=processor_capacity,
    )
    return GeneratedSystem(
        vgraph=vgraph,
        library=library,
        architecture=architecture,
        params={
            "seed": seed,
            "n_interfaces": n_interfaces,
            "n_variants": n_variants,
            "common_processes": common_processes,
            "cluster_size": cluster_size,
        },
    )
