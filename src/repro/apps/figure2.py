"""The paper's Figure 2 / Table 1 benchmark: a system with two variants.

Structure (Figure 2): common processes ``PA`` and ``PB`` around one
interface ``theta1`` whose two clusters ``gamma1`` (two processes, two
extractable modes) and ``gamma2`` (three processes, three extractable
modes) are the function variants.  Data flows

    VSrc -> CA -> PA -> CB -> [theta1] -> CC -> PB -> CD -> VSnk

Calibrated component library
----------------------------
The paper reports Table 1 without the underlying component numbers, so
this module *rebuilds the benchmark* (see DESIGN.md, substitutions): a
library calibrated such that an actual design-space exploration — not
hard-coded answers — discovers the paper's mappings and reproduces the
table exactly:

===========  ===========  ========  =======
unit         utilization  hw cost   effort
===========  ===========  ========  =======
PA           0.55         26        12
PB           0.30         30        10
gamma1.f1    0.35         10        20
gamma1.f2    0.25          9        25
gamma2.g1    0.20          8        17
gamma2.g2    0.25          8        17
gamma2.g3    0.20          7        17
===========  ===========  ========  =======

Architecture: one core processor (cost 15, capacity 1.0) plus ASICs —
the TriMedia-style template the paper cites.  Derived identities:

* Application 1 (γ1): best = SW{PA, PB} + HW{γ1} = 15 + 19 = **34**,
  design time 12 + 10 + 45 = **67**.
* Application 2 (γ2): best = SW{PA, PB} + HW{γ2} = 15 + 23 = **38**,
  design time 12 + 10 + 51 = **73**.
* Superposition: SW reused, HW adds up: 15 + 42 = **57**, time **140**.
* With variants: γ1/γ2 mutually exclusive ⇒ SW{γ1, γ2, PB} fits one
  processor (0.30 + max(0.60, 0.65) = 0.95), PA moves to HW:
  15 + 26 = **41**, design time 118 = 140 − (12 + 10) (common
  processes considered once).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..spi.activation import rules
from ..spi.builder import GraphBuilder
from ..spi.graph import ModelGraph
from ..spi.modes import ProcessMode
from ..spi.predicates import NumAvailable
from ..spi.process import Process
from ..spi.virtuality import sink, source
from ..synth.architecture import ArchitectureTemplate
from ..synth.explorer import Explorer
from ..synth.library import ComponentLibrary
from ..synth.methods import (
    ProblemFamily,
    SpaceExploration,
    explore_space,
    independent_flow,
    superposition_flow,
    variant_aware_flow,
)
from ..synth.results import FlowOutcome, to_table_row
from ..variants.cluster import Cluster
from ..variants.interface import Interface
from ..variants.types import VariantKind
from ..variants.variant_space import VariantSpace
from ..variants.vgraph import VariantGraph

#: Display labels used when rendering Table 1 rows.
CLUSTER_LABELS = {
    "theta1.gamma1": "gamma1",
    "theta1.gamma2": "gamma2",
}

#: The values printed in the paper's Table 1.
PAPER_TABLE1 = {
    "application1": {"sw_cost": 15, "hw_cost": 19, "total": 34, "design_time": 67},
    "application2": {"sw_cost": 15, "hw_cost": 23, "total": 38, "design_time": 73},
    "superposition": {"sw_cost": 15, "hw_cost": 42, "total": 57, "design_time": 140},
    "with_variants": {"sw_cost": 15, "hw_cost": 26, "total": 41, "design_time": 118},
}


def build_gamma1() -> Cluster:
    """Variant cluster γ1: a two-process pipeline, entry has two modes."""
    builder = GraphBuilder("gamma1")
    builder.queue("i")
    builder.queue("o")
    builder.queue("x1")
    f1_small = ProcessMode(
        name="small", latency=3.0, consumes={"i": 1}, produces={"x1": 1}
    )
    f1_large = ProcessMode(
        name="large", latency=5.0, consumes={"i": 2}, produces={"x1": 2}
    )
    builder.process(
        Process(
            name="f1",
            modes={"large": f1_large, "small": f1_small},
            activation=rules(
                ("r_large", NumAvailable("i", 2), "large"),
                ("r_small", NumAvailable("i", 1), "small"),
            ),
        )
    )
    builder.simple("f2", latency=2.0, consumes={"x1": 1}, produces={"o": 1})
    return Cluster(
        name="gamma1",
        inputs=("i",),
        outputs=("o",),
        graph=builder.build(validate=False),
    )


def build_gamma2() -> Cluster:
    """Variant cluster γ2: a three-process pipeline, entry has three modes."""
    builder = GraphBuilder("gamma2")
    builder.queue("i")
    builder.queue("o")
    builder.queue("y1")
    builder.queue("y2")
    g1_modes = {
        "triple": ProcessMode(
            name="triple", latency=4.0, consumes={"i": 3}, produces={"y1": 2}
        ),
        "double": ProcessMode(
            name="double", latency=3.0, consumes={"i": 2}, produces={"y1": 1}
        ),
        "single": ProcessMode(
            name="single", latency=2.0, consumes={"i": 1}, produces={"y1": 1}
        ),
    }
    builder.process(
        Process(
            name="g1",
            modes=g1_modes,
            activation=rules(
                ("r_triple", NumAvailable("i", 3), "triple"),
                ("r_double", NumAvailable("i", 2), "double"),
                ("r_single", NumAvailable("i", 1), "single"),
            ),
        )
    )
    builder.simple("g2", latency=1.0, consumes={"y1": 1}, produces={"y2": 1})
    builder.simple("g3", latency=2.0, consumes={"y2": 1}, produces={"o": 1})
    return Cluster(
        name="gamma2",
        inputs=("i",),
        outputs=("o",),
        graph=builder.build(validate=False),
    )


def build_variant_graph(stream_tokens: int = 16) -> VariantGraph:
    """The complete Figure 2 system as a variant graph."""
    vgraph = VariantGraph("figure2")
    base = vgraph.base
    builder = GraphBuilder("figure2.common")
    builder.queue("CA")
    builder.queue("CB")
    builder.queue("CC")
    builder.queue("CD")
    builder.process(
        source("VSrc", "CA", max_firings=stream_tokens)
    )
    builder.simple("PA", latency=2.0, consumes={"CA": 1}, produces={"CB": 1})
    builder.simple("PB", latency=2.0, consumes={"CC": 1}, produces={"CD": 1})
    builder.process(sink("VSnk", "CD"))
    vgraph.base = builder.build(validate=False)

    interface = Interface(
        name="theta1",
        inputs=("i",),
        outputs=("o",),
        clusters={"gamma1": build_gamma1(), "gamma2": build_gamma2()},
        kind=VariantKind.PRODUCTION,
    )
    vgraph.add_interface(interface, {"i": "CB", "o": "CC"})
    return vgraph


def table1_library() -> ComponentLibrary:
    """The calibrated component library (see module docstring)."""
    library = ComponentLibrary()
    library.component("PA", sw_utilization=0.55, hw_cost=26, effort=12)
    library.component("PB", sw_utilization=0.30, hw_cost=30, effort=10)
    library.component(
        "theta1.gamma1.f1", sw_utilization=0.35, hw_cost=10, effort=20
    )
    library.component(
        "theta1.gamma1.f2", sw_utilization=0.25, hw_cost=9, effort=25
    )
    library.component(
        "theta1.gamma2.g1", sw_utilization=0.20, hw_cost=8, effort=17
    )
    library.component(
        "theta1.gamma2.g2", sw_utilization=0.25, hw_cost=8, effort=17
    )
    library.component(
        "theta1.gamma2.g3", sw_utilization=0.20, hw_cost=7, effort=17
    )
    return library


def table1_architecture() -> ArchitectureTemplate:
    """One core processor plus ASICs (TriMedia-style template)."""
    return ArchitectureTemplate(
        name="core-plus-asics",
        max_processors=1,
        processor_cost=15.0,
        processor_capacity=1.0,
    )


def variant_space(
    vgraph: Optional[VariantGraph] = None,
) -> VariantSpace:
    """The Figure 2 system's (two-selection) variant space."""
    return VariantSpace(vgraph or build_variant_graph())


def table1_family() -> ProblemFamily:
    """The Table 1 benchmark as a shared problem family."""
    return ProblemFamily(
        name="table1",
        library=table1_library(),
        architecture=table1_architecture(),
    )


def explore_table1_space(
    explorer: Optional[Explorer] = None,
    warm_start: bool = True,
    jobs: Optional[int] = None,
    lineage_size: Optional[int] = None,
) -> SpaceExploration:
    """Batch-explore both bound applications of the Figure 2 space."""
    return explore_space(
        table1_family(),
        variant_space(),
        explorer=explorer,
        warm_start=warm_start,
        jobs=jobs,
        lineage_size=lineage_size,
    )


def applications(
    vgraph: Optional[VariantGraph] = None,
) -> Dict[str, ModelGraph]:
    """The two applications derived by binding each variant (§5)."""
    vgraph = vgraph or build_variant_graph()
    return {
        "application1": vgraph.bind(
            {"theta1": "gamma1"}, name="application1"
        ),
        "application2": vgraph.bind(
            {"theta1": "gamma2"}, name="application2"
        ),
    }


def table1_outcomes(
    explorer: Optional[Explorer] = None,
) -> Dict[str, FlowOutcome]:
    """Run all four flows of Table 1; keys match :data:`PAPER_TABLE1`."""
    vgraph = build_variant_graph()
    library = table1_library()
    architecture = table1_architecture()
    apps = applications(vgraph)

    independent = independent_flow(apps, library, architecture, explorer)
    outcomes: Dict[str, FlowOutcome] = {
        name: result.outcome for name, result in independent.items()
    }
    outcomes["superposition"] = superposition_flow(
        independent, library, architecture
    )
    outcomes["with_variants"] = variant_aware_flow(
        vgraph, library, architecture, explorer
    )
    return outcomes


def table1_rows(explorer: Optional[Explorer] = None) -> List[Dict[str, object]]:
    """Table 1 as a list of rendered rows (paper order)."""
    outcomes = table1_outcomes(explorer)
    order = ["application1", "application2", "superposition", "with_variants"]
    return [to_table_row(outcomes[name], CLUSTER_LABELS) for name in order]
