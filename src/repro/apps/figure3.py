"""The paper's Figure 3: selection of run-time variants.

"Process PUser models the user who selects the function variant.  It
writes a token on channel CV that has an associated tag which is either
'V1' or 'V2' indicating the desired function variant.  This tag is
evaluated by the cluster selection rules of the interface and the
interface is replaced by the corresponding cluster":

    rule 1 : 'V1' in CV.tag  ->  cluster 1
    rule 2 : 'V2' in CV.tag  ->  cluster 2

``PUser`` executes exactly once at the beginning — the constraining
modeling element the paper mentions it omitted — and ``CV`` is a
register, so the one-time choice stays observable for every subsequent
activation.  Each cluster has a configuration latency ``t_conf`` that
is paid exactly once, when the first activation configures the
interface.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim.engine import Simulator
from ..sim.trace import Trace
from ..spi.builder import GraphBuilder
from ..spi.graph import ModelGraph
from ..spi.virtuality import one_shot_source, sink, source
from ..variants.cluster import Cluster
from ..variants.interface import Interface
from ..variants.selection import ClusterSelectionFunction
from ..variants.types import VariantKind
from ..variants.vgraph import VariantGraph

#: Configuration latencies (t_conf) per cluster, in ms.
CONFIG_LATENCY = {"cluster1": 3.0, "cluster2": 4.0}

#: Processing latency per stage, in ms.
STAGE_LATENCY = {"cluster1": (2.0, 2.0), "cluster2": (5.0,)}


def build_cluster1() -> Cluster:
    """Variant 1: a two-stage pipeline (1 token in, 2 tokens out)."""
    builder = GraphBuilder("cluster1")
    builder.queue("i")
    builder.queue("o")
    builder.queue("m")
    builder.simple(
        "s1", latency=STAGE_LATENCY["cluster1"][0],
        consumes={"i": 1}, produces={"m": 2},
    )
    builder.simple(
        "s2", latency=STAGE_LATENCY["cluster1"][1],
        consumes={"m": 1}, produces={"o": 1},
    )
    return Cluster(
        name="cluster1",
        inputs=("i",),
        outputs=("o",),
        graph=builder.build(validate=False),
    )


def build_cluster2() -> Cluster:
    """Variant 2: a single-stage filter (1 token in, 1 token out)."""
    builder = GraphBuilder("cluster2")
    builder.queue("i")
    builder.queue("o")
    builder.simple(
        "t1", latency=STAGE_LATENCY["cluster2"][0],
        consumes={"i": 1}, produces={"o": 1},
    )
    return Cluster(
        name="cluster2",
        inputs=("i",),
        outputs=("o",),
        graph=builder.build(validate=False),
    )


def build_interface() -> Interface:
    """Interface Θ1 with the paper's two selection rules."""
    return Interface(
        name="theta1",
        inputs=("i",),
        outputs=("o",),
        clusters={"cluster1": build_cluster1(), "cluster2": build_cluster2()},
        selection=ClusterSelectionFunction.by_tag(
            "CV", {"V1": "cluster1", "V2": "cluster2"}
        ),
        config_latency=dict(CONFIG_LATENCY),
        kind=VariantKind.RUNTIME,
    )


def build_variant_graph(
    variant: str = "V1", stream_tokens: int = 10
) -> VariantGraph:
    """The Figure 3 system with the user's start-up choice baked in.

    ``variant`` is the tag PUser writes ('V1' or 'V2');
    ``stream_tokens`` bounds the input stream so runs terminate.
    """
    if variant not in {"V1", "V2"}:
        raise ValueError(f"variant must be 'V1' or 'V2', got {variant!r}")
    vgraph = VariantGraph("figure3")
    builder = GraphBuilder("figure3.common")
    builder.queue("CIn")
    builder.queue("COut")
    builder.register("CV")
    builder.process(one_shot_source("PUser", "CV", tags=variant))
    builder.process(source("VIn", "CIn", max_firings=stream_tokens))
    builder.process(sink("VOut", "COut"))
    vgraph.base = builder.build(validate=False)
    vgraph.add_interface(build_interface(), {"i": "CIn", "o": "COut"})
    return vgraph


def simulate_runtime_selection(
    variant: str = "V1",
    stream_tokens: int = 10,
    detail: str = "per_entry",
) -> Tuple[Trace, ModelGraph]:
    """Abstract the interface and simulate the start-up selection.

    Returns the trace and the abstracted graph; the trace shows exactly
    one configuration step (to the chosen cluster, with its t_conf)
    followed by steady-state execution of that cluster's modes only.
    """
    vgraph = build_variant_graph(variant, stream_tokens)
    graph = vgraph.abstract(detail=detail)
    simulator = Simulator(graph)
    trace = simulator.run()
    return trace, graph


def selection_report(trace: Trace) -> Dict[str, object]:
    """Headline facts of a Figure 3 run."""
    reconfigs = trace.reconfigurations_of("theta1")
    return {
        "configuration_steps": len(reconfigs),
        "selected": reconfigs[0].to_configuration if reconfigs else None,
        "t_conf_paid": reconfigs[0].latency if reconfigs else 0.0,
        "interface_firings": trace.firing_count("theta1"),
        "modes_used": sorted(set(trace.modes_used("theta1"))),
        "output_tokens": len(trace.produced_on("COut")),
    }
