"""Crash-safe persistence of the exploration service (append-only WAL).

A ``--state-dir`` daemon journals its durable facts to one JSON-lines
file, ``journal.jsonl``, fsync'd per append.  Four record types:

==========  ==========================================================
``submit``  a job entered the queue: ``{"t", "job", "spec"}`` where
            ``spec`` is the normalized payload — enough to rebuild
            the exact same job (same key, same canonical bytes)
``end``     the job reached a terminal state: ``{"t", "job", "state"}``
``cache``   an exact-store entry: ``{"t", "key", "text"}`` with the
            canonical result text **verbatim** — recovery re-installs
            these bytes, preserving the byte-identity contract
``warm``    a warm-adjacent incumbent: ``{"t", "family", "cost",
            "mapping"}``
==========  ==========================================================

Recovery (:func:`replay`) is tolerant of a torn tail: a SIGKILL can
land mid-``write``, so replay stops at the first line that is not
complete valid JSON and reports ``torn=True`` — everything before the
tear was fsync'd and is trusted, everything after it never happened.
A job with a ``submit`` but no ``end`` was in flight when the daemon
died; the engine re-enqueues it under its original id on boot.

Boot then **compacts**: the surviving cache/warm facts are rewritten
to a fresh journal (tmp + fsync + rename, atomic on POSIX), dropping
ended submissions and the torn tail so the file does not grow with
daemon lifetime.  Pending jobs are *not* copied — re-submitting them
journals a fresh ``submit`` record in the compacted file.

Fault injection: :func:`Journal.append` consults
:func:`repro.faults.journal_tear`, which (under a test-only plan)
truncates one append to a byte prefix and kills the journal — the
chaos suite's way of manufacturing torn tails deterministically.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, TextIO, Tuple

from .. import faults

#: The journal file inside a daemon's ``--state-dir``.
JOURNAL_NAME = "journal.jsonl"

_RECORD_TYPES = frozenset({"submit", "end", "cache", "warm"})


def journal_path(state_dir: str) -> str:
    """The journal's path inside ``state_dir``."""
    return os.path.join(state_dir, JOURNAL_NAME)


def _encode(record: Dict[str, object]) -> bytes:
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return (line + "\n").encode("utf-8")


class Journal:
    """Append-only writer: one fsync'd JSON line per durable fact.

    A journal that suffered an injected tear goes *dead*: subsequent
    appends are dropped silently, modeling a daemon whose disk state
    froze at the kill point while the process (briefly) lived on.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[TextIO] = open(path, "ab")
        self._appends = 0
        self._dead = False

    def append(self, record: Dict[str, object]) -> None:
        if self._file is None or self._dead:
            return
        data = _encode(record)
        tear = faults.journal_tear(self._appends)
        self._appends += 1
        if tear is not None:
            cut = max(1, int(len(data) * tear))
            self._file.write(data[: min(cut, len(data) - 1)])
            self._file.flush()
            self._dead = True
            return
        self._file.write(data)
        self._file.flush()
        os.fsync(self._file.fileno())

    def submit(self, job_id: str, spec_payload: Dict[str, object]) -> None:
        self.append({"t": "submit", "job": job_id, "spec": spec_payload})

    def end(self, job_id: str, state: str) -> None:
        self.append({"t": "end", "job": job_id, "state": state})

    def cache(self, key: str, text: str) -> None:
        self.append({"t": "cache", "key": key, "text": text})

    def warm(
        self, family: str, cost: float, mapping: Dict[str, str]
    ) -> None:
        self.append(
            {"t": "warm", "family": family, "cost": cost,
             "mapping": mapping}
        )

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


@dataclass
class JournalReplay:
    """Everything a booting daemon recovers from its journal."""

    #: job_key -> canonical result text, oldest first (LRU seeding).
    cache_entries: "OrderedDict[str, str]" = field(
        default_factory=OrderedDict
    )
    #: family_key -> (best cost, mapping payload).
    warm_entries: Dict[str, Tuple[float, Dict[str, str]]] = field(
        default_factory=dict
    )
    #: job_id -> spec payload for submitted-but-never-ended jobs,
    #: in submission order.
    pending: "OrderedDict[str, Dict[str, object]]" = field(
        default_factory=OrderedDict
    )
    #: Largest numeric suffix among journaled job ids (0 if none) —
    #: the booting engine bumps its id counter past this so recovered
    #: and fresh ids never collide.
    max_job_number: int = 0
    #: Whether replay stopped at a torn (incomplete) tail line.
    torn: bool = False
    #: Complete records successfully replayed.
    records: int = 0


def _job_number(job_id: object) -> int:
    if isinstance(job_id, str) and job_id.startswith("job-"):
        try:
            return int(job_id[len("job-"):])
        except ValueError:
            return 0
    return 0


def replay(path: str) -> JournalReplay:
    """Replay a journal, stopping at the first torn line.

    Never raises on corrupt content: the tail past the first
    unparseable or schema-invalid line is simply not trusted (the
    fsync barrier guarantees every *complete* line before it is).
    """
    out = JournalReplay()
    if not os.path.exists(path):
        return out
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                out.torn = True
                break
            try:
                record = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                out.torn = True
                break
            if not isinstance(record, dict):
                out.torn = True
                break
            kind = record.get("t")
            if kind not in _RECORD_TYPES:
                out.torn = True
                break
            out.records += 1
            if kind == "submit":
                job_id, spec = record.get("job"), record.get("spec")
                if isinstance(job_id, str) and isinstance(spec, dict):
                    out.pending[job_id] = spec
                    out.max_job_number = max(
                        out.max_job_number, _job_number(job_id)
                    )
            elif kind == "end":
                job_id = record.get("job")
                out.pending.pop(job_id, None)
                out.max_job_number = max(
                    out.max_job_number, _job_number(job_id)
                )
            elif kind == "cache":
                key, text = record.get("key"), record.get("text")
                if isinstance(key, str) and isinstance(text, str):
                    out.cache_entries[key] = text
                    out.cache_entries.move_to_end(key)
            else:  # warm
                family = record.get("family")
                cost = record.get("cost")
                mapping = record.get("mapping")
                if (
                    isinstance(family, str)
                    and isinstance(cost, (int, float))
                    and isinstance(mapping, dict)
                ):
                    held = out.warm_entries.get(family)
                    if held is None or cost < held[0]:
                        out.warm_entries[family] = (cost, mapping)
    return out


def compact(path: str, state: JournalReplay) -> None:
    """Atomically rewrite the journal to just the surviving facts.

    Cache and warm records are carried over; ended submissions and
    any torn tail are dropped.  Pending jobs are intentionally *not*
    written — the engine re-submits them on boot, which journals them
    afresh into this compacted file.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=".journal-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            for key, text in state.cache_entries.items():
                handle.write(
                    _encode({"t": "cache", "key": key, "text": text})
                )
            for family, (cost, mapping) in sorted(
                state.warm_entries.items()
            ):
                handle.write(
                    _encode(
                        {
                            "t": "warm",
                            "family": family,
                            "cost": cost,
                            "mapping": mapping,
                        }
                    )
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
