"""Content-addressed result cache of the exploration service.

Two stores, two reuse granularities (see :mod:`repro.serve.canonical`
for why the keys are sound):

* **Exact store** — job content hash → the canonical result JSON
  *text* produced by the cold run.  A hit returns those bytes
  verbatim, which is what makes the byte-identity acceptance test a
  simple string comparison: the service never re-serializes a cached
  result.  LRU-bounded (``max_entries``), because under heavy traffic
  the exact store is the working set.
* **Warm store** — family key → the best feasible mapping payload
  seen for that family, with its cost.  A warm hit does not answer a
  job; it seeds the incumbent of a *different* job over the same
  library/architecture so exact explorers start pruning against a
  known-feasible cost from node one.  Only the cheapest mapping per
  family is kept (a monotone improvement cell, like
  ``SharedIncumbent`` but across requests instead of across workers).

The cache is mutated only from the event loop thread (the engine
publishes results after the executor hands them back), so there is no
locking here; the counters exist for ``/stats``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple


class ResultCache:
    """Exact + warm-start-adjacent stores with hit accounting."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._exact: "OrderedDict[str, str]" = OrderedDict()
        self._warm: Dict[str, Tuple[float, Dict[str, str]]] = {}
        self.exact_hits = 0
        self.exact_misses = 0
        self.warm_hits = 0
        self.evictions = 0

    # -- exact store ---------------------------------------------------
    def lookup(self, job_key: str) -> Optional[str]:
        """The cached canonical result text, or None (counts a miss)."""
        text = self._exact.get(job_key)
        if text is None:
            self.exact_misses += 1
            return None
        self._exact.move_to_end(job_key)
        self.exact_hits += 1
        return text

    def store(self, job_key: str, result_text: str) -> None:
        """Insert (or refresh) one cold run's canonical result text."""
        self._exact[job_key] = result_text
        self._exact.move_to_end(job_key)
        while len(self._exact) > self.max_entries:
            self._exact.popitem(last=False)
            self.evictions += 1

    # -- warm store ----------------------------------------------------
    def warm_seed(
        self, family_key: str
    ) -> Optional[Tuple[float, Dict[str, str]]]:
        """Best known ``(cost, mapping payload)`` of a family, if any."""
        seed = self._warm.get(family_key)
        if seed is not None:
            self.warm_hits += 1
        return seed

    def offer_warm(
        self, family_key: str, cost: float, mapping: Dict[str, str]
    ) -> bool:
        """Offer a feasible mapping; kept only if it improves the cell."""
        current = self._warm.get(family_key)
        if current is not None and current[0] <= cost:
            return False
        self._warm[family_key] = (cost, dict(mapping))
        return True

    # -- accounting ----------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.exact_hits + self.exact_misses
        return self.exact_hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` view of the cache."""
        return {
            "exact_entries": len(self._exact),
            "exact_hits": self.exact_hits,
            "exact_misses": self.exact_misses,
            "hit_rate": round(self.hit_rate, 6),
            "warm_families": len(self._warm),
            "warm_hits": self.warm_hits,
            "evictions": self.evictions,
            "max_entries": self.max_entries,
        }
