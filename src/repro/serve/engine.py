"""The resident exploration engine: queue, worker fleet, lifecycle.

This is the transport-free core of the service — the HTTP layer
(:mod:`repro.serve.http`) only translates requests into these calls,
which is what lets the test suite drive full job lifecycles without a
socket.

Structure:

* One :class:`asyncio.PriorityQueue` of ``(-priority, seq, job)``
  items: higher ``priority`` drains sooner, the submission sequence
  number breaks ties FIFO.
* A fleet of worker coroutines pulls jobs and runs each lineage in a
  dedicated :class:`~concurrent.futures.ThreadPoolExecutor` via
  ``run_in_executor``, so the event loop stays responsive while the
  search burns CPU; between lineages the worker is back on the loop
  and publishes a progress event (the SSE stream's payload) and
  checks the job's wall-clock deadline.
* All engine state (jobs table, cache, counters) is touched only from
  the event loop thread — workers marshal results back before
  mutating anything — so the engine needs no locks.

Cache integration (:mod:`repro.serve.cache`): exact hits are resolved
*at submit time* and return an already-terminal job whose result text
is the cold run's bytes verbatim; warm-start-adjacent hits seed the
first lineage's incumbent, and only for exact explorers, where a warm
seed can change node counts but never the proven cost.  The exact
store only ever holds results that are pure functions of the job key
(:func:`result_is_cacheable`): warm-seeded runs and wall-clock
truncated runs are served to their own client but never stored, so
equal keys always map to the deterministic cold-run bytes regardless
of daemon history.

Budget granularity: a job's ``time_budget`` is enforced *inside*
lineages — the absolute deadline is threaded onto the explorer
(every explorer polls it at 256-node granularity) and into
:func:`~repro.synth.parallel.run_lineage` (which stops between tasks
and drops a task the deadline interrupted), so a ``timeout`` lands
within one poll interval of the budget instead of overshooting by up
to one lineage.  The completed selections become the same
resumable-partial payload either way.

Admission control: ``max_open_nodes`` clamps every explorer that
takes a ``max_open`` frontier cap (results that actually evicted
under an engine-imposed cap are served but never cached — the bytes
would depend on daemon flags, not the job key); ``queue_deadline``
sheds jobs that waited in queue longer than that (or whose own
``time_budget`` already elapsed before a worker picked them up) with
the distinct terminal state ``shed`` instead of silently running
them late.  503 rejections carry a ``retry_after`` hint derived from
queue depth × a completion-time EMA.

The jobs table is bounded: terminal :class:`JobRecord`\\ s beyond
``max_jobs`` are evicted oldest-first (their ids then 404), so a
long-running daemon's memory does not grow with lifetime traffic.

Graceful shutdown: :meth:`ServeEngine.shutdown` flips ``draining`` so
new submissions are rejected (HTTP 503), waits for the queue and
in-flight jobs to drain, then stops the workers and executor.

Crash safety (``state_dir``): with a state directory the engine
journals job submissions, terminal transitions and cache stores to an
append-only fsync'd log (:mod:`repro.serve.persist`).  On boot it
replays the journal — re-installing exact-cache entries *verbatim*
(the byte-identity contract survives the crash) and re-enqueueing
jobs that were submitted but never reached a terminal state, under
their original ids.  Jobs killed mid-run also leave a *partial*
result: the deadline path stores the completed selections plus a
``partial`` marker on the job record, so a ``timeout`` status view
shows what was proven before the clock ran out and where a resubmit
would pick up.
"""

from __future__ import annotations

import asyncio
import copy
import json
import os
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Set

from .. import faults
from ..errors import SynthesisError
from ..synth.parallel import (
    LocalIncumbent,
    attach_incumbent,
    run_lineage,
    shard_lineages,
)
from . import persist
from .cache import ResultCache
from .canonical import canonical_json
from .jobs import (
    JobRecord,
    JobSpec,
    TERMINAL_STATES,
    Workload,
    build_workload,
    ensure_job_ids_above,
    job_result_payload,
    mapping_from_payload,
    spec_payload,
)


def _run_lineage_guarded(
    family, explorer, warm_start, lineage, seed, deadline=None
):
    """Executor entry point: fault hook, then the real lineage run."""
    faults.on_serve_lineage(lineage.index)
    return run_lineage(
        family, explorer, warm_start, lineage, seed, deadline=deadline
    )


class ServiceUnavailable(SynthesisError):
    """Submission rejected: draining, shedding, or queue full (503).

    ``retry_after`` is the server's backoff hint in seconds; the HTTP
    layer surfaces it as a ``Retry-After`` header plus a JSON field,
    and :class:`~repro.serve.client.ServeClient` honors it.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class UnknownJob(SynthesisError):
    """No job with the requested id (HTTP 404)."""


def result_is_cacheable(
    spec: JobSpec, payload: Dict[str, object], warm_seeded: bool
) -> bool:
    """Whether a finished job's bytes may enter the exact store.

    The exact store promises equal keys → equal bytes, so only results
    that are pure functions of the job key qualify:

    * a warm-adjacent seed changes node counts and provenance (daemon
      history leaking into the bytes), so seeded runs are served to
      their client but never stored;
    * a wall-clock budget — job-level ``time_budget`` (excluded from
      the key) or the keyed ``explorer.time_budget`` — can truncate
      the search at a machine-speed-dependent point, so a budgeted
      run is stored only when every selection still proved optimality
      (then its bytes match the budget-free search exactly).

    Deterministic truncation (node budgets) and deterministic
    heuristics (seeded annealing) remain cacheable.
    """
    if warm_seeded:
        return False
    if spec.time_budget is None and spec.explorer["time_budget"] is None:
        return True
    return all(s["optimal"] for s in payload["selections"])


class ServeEngine:
    """Job queue + worker fleet + cache, owned by one event loop."""

    def __init__(
        self,
        workers: int = 2,
        cache_size: int = 1024,
        max_queue: int = 256,
        max_jobs: int = 4096,
        state_dir: Optional[str] = None,
        max_open_nodes: Optional[int] = None,
        queue_deadline: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise SynthesisError("workers must be >= 1")
        if max_queue < 1:
            raise SynthesisError("max_queue must be >= 1")
        if max_jobs < 1:
            raise SynthesisError("max_jobs must be >= 1")
        if max_open_nodes is not None and max_open_nodes < 1:
            raise SynthesisError("max_open_nodes must be >= 1")
        if queue_deadline is not None and queue_deadline <= 0:
            raise SynthesisError("queue_deadline must be > 0")
        self.workers = workers
        self.max_queue = max_queue
        self.max_jobs = max_jobs
        self.max_open_nodes = max_open_nodes
        self.queue_deadline = queue_deadline
        self.state_dir = state_dir
        self._journal: Optional[persist.Journal] = None
        # Only jobs with a journaled ``submit`` get an ``end`` record
        # (cache hits and queue-full rejections never touch the disk).
        self._journaled: Set[str] = set()
        self.jobs_recovered = 0
        self.cache = ResultCache(max_entries=cache_size)
        self.jobs: Dict[str, JobRecord] = {}
        self._retired: Deque[str] = deque()
        self.draining = False
        self.started_at = time.monotonic()
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_timed_out = 0
        self.jobs_shed = 0
        #: Largest open-frontier size any exploration reported and the
        #: total subtrees evicted under ``max_open`` caps — the
        #: ``/stats`` gauges that show how close the fleet runs to its
        #: memory ceiling and how often degradation actually engages.
        self.frontier_high_water = 0
        self.subtrees_evicted = 0
        #: EMA of completed-job wall seconds, feeding ``retry_after``.
        self._job_seconds_ema: Optional[float] = None
        # Created lazily from inside the event loop: on Python 3.9
        # asyncio primitives bind their loop at construction time, and
        # the engine may be built on a different thread than it runs.
        self._queue: Optional["asyncio.PriorityQueue"] = None
        self._seq = 0
        self._in_flight = 0
        self._workers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}

    def _ensure_queue(self) -> "asyncio.PriorityQueue":
        if self._queue is None:
            self._queue = asyncio.PriorityQueue()
        return self._queue

    def _queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker fleet (idempotent).

        With a ``state_dir`` this first runs crash recovery: journal
        replay, cache re-install, compaction, and re-enqueueing of
        interrupted jobs — all before the first worker wakes up, so
        recovered jobs keep their submission order at the queue head.
        """
        if self._workers:
            return
        self._ensure_queue()
        if self.state_dir is not None and self._journal is None:
            self._recover()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._workers = [
            asyncio.ensure_future(self._worker_loop())
            for _ in range(self.workers)
        ]

    def _recover(self) -> None:
        """Replay the journal, seed the cache, re-enqueue survivors."""
        os.makedirs(self.state_dir, exist_ok=True)
        path = persist.journal_path(self.state_dir)
        recovered = persist.replay(path)
        for key, text in recovered.cache_entries.items():
            self.cache.store(key, text)
        for family, (cost, mapping) in recovered.warm_entries.items():
            self.cache.offer_warm(family, cost, mapping)
        persist.compact(path, recovered)
        self._journal = persist.Journal(path)
        ensure_job_ids_above(recovered.max_job_number)
        for job_id, payload in recovered.pending.items():
            try:
                self.submit(payload, _job_id=job_id)
            except SynthesisError:
                # A journaled spec the current build rejects (schema
                # drift, full queue) is dropped, not fatal to boot.
                continue
            self.jobs_recovered += 1

    async def shutdown(self) -> None:
        """Drain in-flight work, then stop workers and executor."""
        self.draining = True
        while self._queue_depth() or self._in_flight:
            await asyncio.sleep(0.01)
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- submission ----------------------------------------------------
    def submit(
        self, payload: object, _job_id: Optional[str] = None
    ) -> JobRecord:
        """Validate, cache-check, and enqueue one job payload.

        Raises :class:`~repro.serve.jobs.JobValidationError` on a
        malformed payload (400) and :class:`ServiceUnavailable` when
        draining or over the queue bound (503).  Exact cache hits
        return an already-``done`` record without touching the queue.

        ``_job_id`` is recovery-only: a journal replay re-enqueues an
        interrupted job under the id its original client was given.
        """
        if self.draining:
            raise ServiceUnavailable(
                "service is draining; retry later", retry_after=2.0
            )
        spec = JobSpec.from_payload(payload)
        workload = build_workload(spec)
        if _job_id is None:
            job = JobRecord(
                spec=spec, workload=workload, created=time.monotonic()
            )
        else:
            job = JobRecord(
                spec=spec,
                workload=workload,
                created=time.monotonic(),
                job_id=_job_id,
            )
        self.jobs[job.job_id] = job
        self.jobs_submitted += 1

        if spec.use_cache:
            cached = self.cache.lookup(workload.job_key)
            if cached is not None:
                job.cache_status = "hit"
                job.started = job.created
                job.finished = time.monotonic()
                job.result_text = cached
                job.result = json.loads(cached)
                job.state = "done"
                self.jobs_completed += 1
                self._publish(job, {"event": "queued", "job": job.job_id})
                self._publish(
                    job,
                    {
                        "event": "done",
                        "job": job.job_id,
                        "cache": "hit",
                        "best": job.result.get("best"),
                    },
                )
                return job

        if self._ensure_queue().qsize() >= self.max_queue:
            # The record stays queryable so clients can see the
            # rejection, but it never enters the queue.
            job.state = "failed"
            job.error = "queue full"
            self.jobs_failed += 1
            self._publish(
                job,
                {
                    "event": "failed",
                    "job": job.job_id,
                    "error": job.error,
                },
            )
            raise ServiceUnavailable(
                "job queue is full; retry later",
                retry_after=self._retry_hint(),
            )

        if self._journal is not None:
            # Journal before enqueueing: once a worker can see the
            # job, a crash must find it in the log.  Cache hits and
            # rejections above never touch the disk.
            self._journal.submit(job.job_id, spec_payload(spec))
            self._journaled.add(job.job_id)
        self._seq += 1
        self._ensure_queue().put_nowait((-spec.priority, self._seq, job))
        self._publish(job, {"event": "queued", "job": job.job_id})
        return job

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        """The job record of ``job_id`` (raises :class:`UnknownJob`)."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(f"no job named {job_id!r}") from None

    def subscribe(self, job_id: str) -> "asyncio.Queue":
        """An event queue replaying the job's history, then live.

        Terminal events are the stream's natural end; subscribers to
        already-terminal jobs get the full replay immediately.
        """
        job = self.get(job_id)
        queue: "asyncio.Queue" = asyncio.Queue()
        for event in job.events:
            queue.put_nowait(event)
        if job.state not in TERMINAL_STATES:
            self._subscribers.setdefault(job_id, []).append(queue)
        return queue

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` payload: queue, throughput, cache, limits."""
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        return {
            "uptime_seconds": round(uptime, 3),
            "draining": self.draining,
            "workers": self.workers,
            "jobs_tracked": len(self.jobs),
            "queue_depth": self._queue_depth(),
            "in_flight": self._in_flight,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_timed_out": self.jobs_timed_out,
            "jobs_shed": self.jobs_shed,
            "jobs_recovered": self.jobs_recovered,
            "persistent": self.state_dir is not None,
            "jobs_per_sec": round(self.jobs_completed / uptime, 6),
            "cache": self.cache.stats(),
            "frontier_high_water": self.frontier_high_water,
            "subtrees_evicted": self.subtrees_evicted,
            "max_open_nodes": self.max_open_nodes,
            "queue_deadline": self.queue_deadline,
        }

    def _retry_hint(self) -> float:
        """Seconds until the queue likely has room again.

        Queue depth × the completion-time EMA spread over the worker
        fleet, clamped to [1, 60] — rough, but it turns a thundering
        herd of instant resubmits into a paced one.
        """
        ema = self._job_seconds_ema
        if ema is None:
            return 1.0
        estimate = self._queue_depth() * ema / self.workers
        return min(60.0, max(1.0, estimate))

    # -- internals -----------------------------------------------------
    def _publish(self, job: JobRecord, event: Dict[str, object]) -> None:
        job.events.append(event)
        for queue in self._subscribers.get(job.job_id, ()):
            queue.put_nowait(event)
        if event.get("event") in TERMINAL_STATES:
            if self._journal is not None and job.job_id in self._journaled:
                self._journaled.discard(job.job_id)
                self._journal.end(job.job_id, job.state)
            self._subscribers.pop(job.job_id, None)
            self._retire(job)

    def _retire(self, job: JobRecord) -> None:
        """Bound the jobs table: evict the oldest terminal records.

        Every terminal transition publishes exactly one terminal
        event, so each job is retired once.  Only terminal jobs enter
        the eviction queue — queued/running records are bounded by
        ``max_queue`` + the worker count and never evicted.
        """
        self._retired.append(job.job_id)
        while len(self._retired) > self.max_jobs:
            evicted = self._retired.popleft()
            self.jobs.pop(evicted, None)
            self._subscribers.pop(evicted, None)

    async def _worker_loop(self) -> None:
        while True:
            _, _, job = await self._ensure_queue().get()
            self._in_flight += 1
            try:
                if self._should_shed(job):
                    self._shed(job)
                else:
                    await self._run_job(job)
            except Exception as exc:  # pragma: no cover - backstop
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                self.jobs_failed += 1
                self._publish(
                    job,
                    {
                        "event": "failed",
                        "job": job.job_id,
                        "error": job.error,
                    },
                )
                traceback.print_exc()
            finally:
                self._in_flight -= 1
                self._queue.task_done()

    def _seed_for(self, workload: Workload):
        """The warm-adjacent incumbent of this job's family, if sound."""
        spec = workload.spec
        if not (spec.warm_cache and spec.is_exact):
            return None
        seed = self.cache.warm_seed(workload.family_key)
        if seed is None:
            return None
        return mapping_from_payload(seed[1])

    def _should_shed(self, job: JobRecord) -> bool:
        """Whether admission control refuses to start this job now.

        Only with a configured ``queue_deadline``: a job that waited
        past it — or whose own ``time_budget`` fully elapsed before a
        worker freed up — would start already doomed, so it is shed
        instead of run late.
        """
        if self.queue_deadline is None:
            return False
        now = time.monotonic()
        if now - job.created > self.queue_deadline:
            return True
        budget = job.spec.time_budget
        return budget is not None and now >= job.created + budget

    def _shed(self, job: JobRecord) -> None:
        """Load-shed one queued job: distinct terminal state, no run."""
        now = time.monotonic()
        waited = now - job.created
        job.finished = now
        job.state = "shed"
        job.error = (
            f"shed after {waited:.3f}s in queue "
            f"(queue_deadline={self.queue_deadline}s)"
        )
        self.jobs_shed += 1
        self._publish(
            job,
            {
                "event": "shed",
                "job": job.job_id,
                "error": job.error,
                "waited_seconds": round(waited, 6),
                "retry_after": self._retry_hint(),
            },
        )

    def _lineage_explorer(self, job: JobRecord, deadline: Optional[float]):
        """A per-job explorer copy with deadline + daemon cap applied.

        Returns ``(explorer, engine_capped)``.  The job deadline is
        threaded as an absolute instant (every explorer polls it at
        256-node granularity, so the in-search overshoot is bounded by
        one poll interval, not one lineage).  ``engine_capped`` flags
        that the daemon-wide ``max_open_nodes`` tightened the
        explorer's frontier cap below what the job key asked for —
        the caller must keep such results out of the exact cache if
        the cap actually evicted, because the bytes then depend on
        daemon flags rather than the key alone.
        """
        explorer = job.workload.explorer
        cap = self.max_open_nodes
        can_cap = cap is not None and hasattr(explorer, "max_open")
        if deadline is None and not can_cap:
            return explorer, False
        clone = copy.copy(explorer)
        engine_capped = False
        if deadline is not None:
            clone.deadline = deadline
        if can_cap and (clone.max_open is None or clone.max_open > cap):
            clone.max_open = cap
            engine_capped = True
        return clone, engine_capped

    def _timeout_job(
        self, job: JobRecord, results, next_lineage: int
    ) -> None:
        """Flip a deadline-hit job to ``timeout`` with its partial.

        The completed selections become a *partial* result on the
        status view (but never ``result_text`` — ``/result`` stays
        409 and partial bytes never enter the exact cache).
        ``next_lineage`` is the first lineage a resubmission must
        redo: the one the deadline landed in (its finished tasks, if
        any, ride along in the partial but are re-proven on resume).
        """
        spec = job.spec
        workload = job.workload
        job.finished = time.monotonic()
        job.state = "timeout"
        job.error = (
            f"time budget {spec.time_budget}s exhausted after "
            f"{len(results)} of {workload.selection_count} selections"
        )
        partial = job_result_payload(results)
        partial["partial"] = {
            "completed_selections": len(results),
            "total_selections": workload.selection_count,
            "next_lineage": next_lineage,
            "resumable": True,
        }
        job.result = partial
        self.jobs_timed_out += 1
        self._publish(
            job,
            {
                "event": "timeout",
                "job": job.job_id,
                "error": job.error,
                "completed_selections": len(results),
                "partial": partial["partial"],
            },
        )

    async def _run_job(self, job: JobRecord) -> None:
        loop = asyncio.get_event_loop()
        spec = job.spec
        workload = job.workload
        job.state = "running"
        job.started = time.monotonic()
        deadline = (
            job.started + spec.time_budget
            if spec.time_budget is not None
            else None
        )
        seed = self._seed_for(workload)
        if seed is not None:
            job.cache_status = "warm"
        self._publish(
            job,
            {
                "event": "running",
                "job": job.job_id,
                "cache": job.cache_status,
                "selections": workload.selection_count,
            },
        )

        lineages = shard_lineages(workload.tasks, spec.lineage_size)
        incumbent = LocalIncumbent() if spec.share_incumbent else None
        results = []
        evicted = 0
        for lineage in lineages:
            if deadline is not None and time.monotonic() >= deadline:
                self._timeout_job(job, results, lineage.index)
                return
            explorer, engine_capped = self._lineage_explorer(
                job, deadline
            )
            explorer = attach_incumbent(explorer, incumbent)
            lineage_results = await loop.run_in_executor(
                self._executor,
                _run_lineage_guarded,
                workload.family,
                explorer,
                spec.warm_start,
                lineage,
                seed,
                deadline,
            )
            results.extend(lineage_results)
            for r in lineage_results:
                exploration = r.exploration
                if exploration.open_high_water > self.frontier_high_water:
                    self.frontier_high_water = exploration.open_high_water
                self.subtrees_evicted += exploration.evicted_subtrees
                if engine_capped:
                    evicted += exploration.evicted_subtrees
            if len(lineage_results) < len(lineage.tasks):
                # The deadline interrupted this lineage mid-flight:
                # run_lineage returned only the tasks it finished
                # cleanly, and this lineage must be redone on resume.
                self._timeout_job(job, results, lineage.index)
                return
            best = min(
                (
                    r.exploration.cost
                    for r in results
                    if r.exploration.feasible
                ),
                default=None,
            )
            self._publish(
                job,
                {
                    "event": "lineage",
                    "job": job.job_id,
                    "lineage": lineage.index,
                    "completed_selections": len(results),
                    "total_selections": workload.selection_count,
                    "best_cost": best,
                },
            )

        payload = job_result_payload(results)
        text = canonical_json(payload)
        job.result = payload
        job.result_text = text
        job.finished = time.monotonic()
        job.state = "done"
        self.jobs_completed += 1
        elapsed = job.finished - job.started
        self._job_seconds_ema = (
            elapsed
            if self._job_seconds_ema is None
            else 0.8 * self._job_seconds_ema + 0.2 * elapsed
        )
        # A daemon-imposed frontier cap that actually evicted makes
        # the bytes a function of daemon flags, not the job key alone;
        # a cap that never engaged leaves them byte-identical to the
        # uncapped run (gauges live outside the canonical payload).
        if spec.use_cache and evicted == 0 and result_is_cacheable(
            spec, payload, warm_seeded=seed is not None
        ):
            self.cache.store(workload.job_key, text)
            if self._journal is not None:
                self._journal.cache(workload.job_key, text)
        best = payload.get("best")
        if best is not None:
            improved = self.cache.offer_warm(
                workload.family_key, best["cost"], best["mapping"]
            )
            if improved and self._journal is not None:
                self._journal.warm(
                    workload.family_key, best["cost"], best["mapping"]
                )
        self._publish(
            job,
            {
                "event": "done",
                "job": job.job_id,
                "cache": job.cache_status,
                "elapsed_seconds": round(job.finished - job.started, 6),
                "best": best,
            },
        )
