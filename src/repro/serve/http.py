"""The HTTP edge of the exploration service (stdlib asyncio only).

A deliberately small hand-rolled HTTP/1.1 server over
:func:`asyncio.start_server` — one request per connection, explicit
``Content-Length`` framing, no keep-alive — because the stdlib has no
async HTTP server and the job API needs exactly five routes:

========================  =============================================
``POST /jobs``            submit a job payload; 202 with the job id
                          (200 immediately on an exact cache hit),
                          400 on validation errors, 503 with a
                          ``Retry-After`` header + ``retry_after``
                          field when draining or the queue is full
``GET /jobs/<id>``        job status view (state, cache, timings,
                          result once terminal)
``GET /jobs/<id>/result`` the canonical result **text** verbatim —
                          the byte-identity contract lives here —
                          409 while the job is not ``done``
``GET /jobs/<id>/events`` SSE stream (``text/event-stream``):
                          replays the job's event history, then live
                          events until a terminal one
``GET /healthz``          200 ``ok`` while serving, 503 while
                          draining
``GET /stats``            queue depth, jobs/sec, cache hit rate
========================  =============================================

The server owns a :class:`~repro.serve.engine.ServeEngine` and simply
translates; everything testable lives in the engine.  SIGINT/SIGTERM
trigger the graceful drain: in-flight jobs finish, new submissions see
503, then the loop stops.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
from typing import Dict, Optional, Tuple

from .engine import ServeEngine, ServiceUnavailable, UnknownJob
from .jobs import TERMINAL_STATES, JobValidationError

#: Upper bound on accepted request bodies; job specs are tiny, so
#: anything bigger is a client error (or abuse), not a real job.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    503: "Service Unavailable",
}


def _response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, payload: object) -> bytes:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    return _response_bytes(status, body)


def _sse_event(payload: Dict[str, object]) -> bytes:
    name = payload.get("event", "message")
    data = json.dumps(payload)
    return f"event: {name}\ndata: {data}\n\n".encode("utf-8")


class _BadRequest(Exception):
    """Malformed request framing, answered with a 400 (not a drop)."""


async def _read_request(
    reader: "asyncio.StreamReader",
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request: ``(method, path, headers, body)`` or None.

    Raises :class:`_BadRequest` for malformed-but-parseable framing
    (bad ``Content-Length``, over-limit request/header lines) so the
    client gets a 400 instead of a dropped connection; returns None
    when the peer disconnected mid-request.
    """
    try:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    except ValueError:
        # StreamReader.readline raises ValueError when a line exceeds
        # the stream's limit (LimitOverrunError folded in).
        raise _BadRequest("request or header line too long") from None
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _BadRequest("malformed Content-Length header") from None
    if length < 0:
        raise _BadRequest("malformed Content-Length header")
    if length > MAX_BODY_BYTES:
        return method, path, headers, b"\x00"  # sentinel: too large
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class ServeHTTP:
    """Bind a :class:`ServeEngine` to a host/port and serve the API."""

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: int = 8752,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional["asyncio.AbstractServer"] = None
        # Lazy: py3.9 asyncio.Event binds its loop at construction,
        # and the server object may be built off-loop (tests do).
        self._stop: Optional["asyncio.Event"] = None

    @property
    def bound_port(self) -> int:
        """The actual port (useful when constructed with port=0)."""
        if self._server is None:
            return self.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._stop is None:
            self._stop = asyncio.Event()
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def stop(self) -> None:
        """Graceful shutdown: drain the engine, then close the socket."""
        await self.engine.shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stop is not None:
            self._stop.set()

    def request_stop(self) -> None:
        """Signal-handler entry: trigger the async shutdown."""
        if self._stop is None or not self._stop.is_set():
            asyncio.ensure_future(self.stop())

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until SIGINT/SIGTERM (or :meth:`request_stop`)."""
        await self.start()
        if install_signals:
            loop = asyncio.get_event_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stop.wait()

    # -- request handling ------------------------------------------
    async def _handle(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                writer.write(_json_response(400, {"error": str(exc)}))
                return
            if request is None:
                return
            method, path, _, body = request
            if body == b"\x00":
                writer.write(
                    _json_response(413, {"error": "body too large"})
                )
                return
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: "asyncio.StreamWriter",
    ) -> None:
        engine = self.engine
        if path == "/healthz" and method == "GET":
            if engine.draining:
                writer.write(
                    _json_response(503, {"status": "draining"})
                )
            else:
                writer.write(_json_response(200, {"status": "ok"}))
            return
        if path == "/stats" and method == "GET":
            writer.write(_json_response(200, engine.stats()))
            return
        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                writer.write(
                    _json_response(400, {"error": "body is not JSON"})
                )
                return
            try:
                job = engine.submit(payload)
            except JobValidationError as exc:
                writer.write(_json_response(400, {"error": str(exc)}))
                return
            except ServiceUnavailable as exc:
                # Load-shedding 503: the Retry-After header (integer
                # seconds, ceiling) paces standards-aware clients, the
                # JSON field carries the precise hint for ours.
                retry_after = float(getattr(exc, "retry_after", 1.0))
                body_bytes = (
                    json.dumps(
                        {"error": str(exc), "retry_after": retry_after}
                    )
                    + "\n"
                ).encode("utf-8")
                writer.write(
                    _response_bytes(
                        503,
                        body_bytes,
                        extra=(
                            (
                                "Retry-After",
                                str(max(1, math.ceil(retry_after))),
                            ),
                        ),
                    )
                )
                return
            status = 200 if job.state in TERMINAL_STATES else 202
            writer.write(_json_response(status, job.describe()))
            return
        if path.startswith("/jobs/") and method == "GET":
            await self._route_job(path[len("/jobs/") :], writer)
            return
        writer.write(
            _json_response(
                405 if path in ("/jobs", "/healthz", "/stats") else 404,
                {"error": f"no route for {method} {path}"},
            )
        )

    async def _route_job(
        self, tail: str, writer: "asyncio.StreamWriter"
    ) -> None:
        engine = self.engine
        job_id, _, action = tail.partition("/")
        try:
            job = engine.get(job_id)
        except UnknownJob as exc:
            writer.write(_json_response(404, {"error": str(exc)}))
            return
        if action == "":
            writer.write(_json_response(200, job.describe()))
            return
        if action == "result":
            if job.state != "done" or job.result_text is None:
                writer.write(
                    _json_response(
                        409,
                        {
                            "error": f"job is {job.state}, not done",
                            "state": job.state,
                        },
                    )
                )
                return
            # The cached canonical text, byte-for-byte — never
            # re-serialized, so exact hits are byte-identical to the
            # cold run that produced them.
            writer.write(
                _response_bytes(
                    200, job.result_text.encode("utf-8") + b"\n"
                )
            )
            return
        if action == "events":
            queue = engine.subscribe(job_id)
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii"))
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write(_sse_event(event))
                await writer.drain()
                if event.get("event") in TERMINAL_STATES:
                    return
        writer.write(_json_response(404, {"error": f"no action {action!r}"}))


async def run_server(
    host: str,
    port: int,
    workers: int,
    cache_size: int,
    max_queue: int,
    max_jobs: int = 4096,
    state_dir: Optional[str] = None,
    max_open_nodes: Optional[int] = None,
    queue_deadline: Optional[float] = None,
) -> None:
    """Build engine + HTTP edge and serve until signalled."""
    engine = ServeEngine(
        workers=workers,
        cache_size=cache_size,
        max_queue=max_queue,
        max_jobs=max_jobs,
        state_dir=state_dir,
        max_open_nodes=max_open_nodes,
        queue_deadline=queue_deadline,
    )
    server = ServeHTTP(engine, host=host, port=port)
    await server.serve_forever()


def serve_main(
    host: str = "127.0.0.1",
    port: int = 8752,
    workers: int = 2,
    cache_size: int = 1024,
    max_queue: int = 256,
    max_jobs: int = 4096,
    state_dir: Optional[str] = None,
    max_open_nodes: Optional[int] = None,
    queue_deadline: Optional[float] = None,
) -> int:
    """Blocking entry point of ``python -m repro serve``."""
    durable = f", state {state_dir}" if state_dir else ""
    limits = ""
    if max_open_nodes is not None:
        limits += f", max-open {max_open_nodes}"
    if queue_deadline is not None:
        limits += f", queue-deadline {queue_deadline}s"
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"({workers} workers, cache {cache_size}, queue {max_queue}, "
        f"jobs {max_jobs}{durable}{limits})",
        flush=True,
    )
    try:
        asyncio.run(
            run_server(
                host,
                port,
                workers,
                cache_size,
                max_queue,
                max_jobs,
                state_dir,
                max_open_nodes,
                queue_deadline,
            )
        )
    except KeyboardInterrupt:
        pass
    print("repro serve: drained and stopped", flush=True)
    return 0
