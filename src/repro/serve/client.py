"""Blocking HTTP client of the exploration service.

A thin stdlib (:mod:`http.client`) wrapper used by the test suite and
the serve bench — one connection per call, matching the server's
one-request-per-connection framing.  Nothing here is async: the client
is what a plain consumer (a test, a load generator, a shell script via
``curl``) looks like from the daemon's point of view.

:meth:`ServeClient.result_text` deliberately returns the raw body
*text* rather than parsed JSON — the cache byte-identity contract is
about bytes on the wire, and tests compare exactly what this returns.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, Iterator, List, Optional, Tuple

#: Job states a poll/stream stops on, mirroring the server's
#: ``TERMINAL_STATES`` (``shed`` is admission control's refusal).
TERMINAL = ("done", "failed", "timeout", "shed")


class ServeClientError(RuntimeError):
    """An HTTP-level failure (unexpected status) from the service."""

    def __init__(self, status: int, body: str) -> None:
        super().__init__(f"HTTP {status}: {body.strip()}")
        self.status = status
        self.body = body


def _retry_after_hint(body: str) -> Optional[float]:
    """The server's ``retry_after`` field of one 503 body, if any."""
    try:
        payload = json.loads(body)
        hint = payload.get("retry_after")
        return float(hint) if hint is not None else None
    except (ValueError, AttributeError):
        return None


class ServeClient:
    """Blocking client bound to one ``host:port``.

    Connection-level failures (refused, reset, timed out sockets) are
    retried ``retries`` times with capped exponential backoff before
    surfacing — a daemon restarting under ``--state-dir`` looks like a
    brief connection blackout, and every request here is idempotent:
    jobs are content-addressed, so resubmitting one after an ambiguous
    failure lands on the exact cache or re-runs to identical bytes.

    503 load-shed answers (draining, queue full) retry the same way,
    honoring the server's ``retry_after`` hint when the body carries
    one (capped at ``retry_backoff_cap``, plus a small deterministic
    jitter so a rejected herd doesn't resubmit in lockstep).  Other
    HTTP-level errors (:class:`ServeClientError`) are real answers
    and are never retried.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8752,
        timeout: float = 30.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 2.0,
        jitter_seed: int = 0,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self._jitter = random.Random(jitter_seed)

    # -- plumbing --------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        ok: Tuple[int, ...] = (200, 202),
    ) -> Tuple[int, str]:
        attempt = 0
        while True:
            hint = None
            try:
                return self._request_once(method, path, payload, ok)
            except (OSError, http.client.HTTPException):
                if attempt >= self.retries:
                    raise
            except ServeClientError as exc:
                if exc.status != 503 or attempt >= self.retries:
                    raise
                hint = _retry_after_hint(exc.body)
            backoff = self.retry_backoff * (2.0 ** attempt)
            if hint is not None and hint > backoff:
                backoff = hint
            delay = min(self.retry_backoff_cap, backoff)
            delay += delay * 0.1 * self._jitter.random()
            attempt += 1
            time.sleep(delay)

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[object],
        ok: Tuple[int, ...],
    ) -> Tuple[int, str]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        if response.status not in ok:
            raise ServeClientError(response.status, text)
        return response.status, text

    # -- API -------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return json.loads(self._request("GET", "/healthz")[1])

    def stats(self) -> Dict[str, object]:
        return json.loads(self._request("GET", "/stats")[1])

    def submit(self, job: Dict[str, object]) -> Dict[str, object]:
        """POST a job payload; returns the job's status view."""
        return json.loads(self._request("POST", "/jobs", payload=job)[1])

    def job(self, job_id: str) -> Dict[str, object]:
        return json.loads(self._request("GET", f"/jobs/{job_id}")[1])

    def result_text(self, job_id: str) -> str:
        """The canonical result body, verbatim (trailing newline kept)."""
        return self._request("GET", f"/jobs/{job_id}/result")[1]

    def result(self, job_id: str) -> Dict[str, object]:
        return json.loads(self.result_text(job_id))

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.02
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in TERMINAL:
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {view['state']} after {timeout}s"
                )
            time.sleep(poll)

    def events(
        self, job_id: str, timeout: float = 60.0
    ) -> Iterator[Dict[str, object]]:
        """Stream the job's SSE events until the terminal one.

        Parses the ``event:``/``data:`` frames of one streaming
        response; yields each event's JSON payload.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServeClientError(
                    response.status,
                    response.read().decode("utf-8"),
                )
            name: Optional[str] = None
            data: List[str] = []
            while True:
                raw = response.fp.readline()
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("event:"):
                    name = line[len("event:") :].strip()
                elif line.startswith("data:"):
                    data.append(line[len("data:") :].strip())
                elif line == "" and data:
                    event = json.loads("\n".join(data))
                    yield event
                    data = []
                    if name in TERMINAL:
                        return
                    name = None
        finally:
            conn.close()

    def run(
        self, job: Dict[str, object], timeout: float = 60.0
    ) -> Dict[str, object]:
        """Submit and wait; returns the terminal status view."""
        view = self.submit(job)
        if view["state"] in TERMINAL:
            return view
        return self.wait(view["job_id"], timeout=timeout)
